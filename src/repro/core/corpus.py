"""Corpus-level processing: many documents, aggregate accounting.

The paper's operational setting is a data-entry shop processing entire
batches of balance sheets, so per-document sessions want rolling up:
recovery rate, operator effort, error counts.  :func:`run_corpus`
drives :class:`~repro.core.system.DartSystem` over a list of scenarios
(each carrying its own ground truth) and aggregates.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.acquisition.ocr import OcrChannel
from repro.core.scenarios import Scenario
from repro.core.system import AcquisitionSession, DartSystem

logger = logging.getLogger(__name__)


@dataclass
class CorpusResult:
    """Aggregated outcome of processing a corpus of documents."""

    sessions: List[AcquisitionSession]
    #: per-document flags: did the final instance equal the ground truth?
    recovered: List[bool]

    @property
    def n_documents(self) -> int:
        return len(self.sessions)

    @property
    def recovery_rate(self) -> float:
        if not self.recovered:
            return 1.0
        return sum(self.recovered) / len(self.recovered)

    @property
    def n_consistent_on_arrival(self) -> int:
        """Documents whose acquisition produced no violation at all."""
        return sum(1 for session in self.sessions if session.was_consistent)

    @property
    def total_injected_errors(self) -> int:
        return sum(len(s.acquisition.injected_errors) for s in self.sessions)

    @property
    def total_values_inspected(self) -> int:
        return sum(s.values_inspected for s in self.sessions)

    @property
    def total_values_acquired(self) -> int:
        return sum(s.acquired_database.total_tuples() for s in self.sessions)

    @property
    def mean_iterations(self) -> float:
        repaired = [s for s in self.sessions if not s.was_consistent]
        if not repaired:
            return 0.0
        return sum(s.iterations for s in repaired) / len(repaired)

    def summary(self) -> str:
        """A one-paragraph human-readable report."""
        return (
            f"{self.n_documents} document(s): "
            f"{self.n_consistent_on_arrival} consistent on arrival, "
            f"{self.total_injected_errors} acquisition error(s) injected, "
            f"recovery rate {self.recovery_rate:.0%}, "
            f"mean {self.mean_iterations:.2f} validation iteration(s) on "
            f"inconsistent documents, "
            f"{self.total_values_inspected}/{self.total_values_acquired} "
            f"values inspected by the operator"
        )


def _corpus_job(payload) -> AcquisitionSession:
    """Top-level (picklable) worker: run one document's full pipeline."""
    scenario, channel, interactive, system_options = payload
    system = DartSystem(scenario, ocr_channel=channel, **system_options)
    return system.process(interactive=interactive)


def run_corpus(
    scenarios: Sequence[Scenario],
    *,
    channel_factory: Optional[Callable[[int], OcrChannel]] = None,
    interactive: bool = True,
    workers: Optional[int] = None,
    chunksize: int = 1,
    **system_options,
) -> CorpusResult:
    """Process every scenario and aggregate the outcomes.

    ``channel_factory(index)`` builds the OCR channel per document (so
    each document gets independent noise); omit it for noiseless runs.
    With ``workers >= 1`` documents are processed on a process pool
    (the factory itself runs in the parent, so it need not be
    picklable -- the built channels must be); results and aggregates
    are identical to the sequential run, in the same order.  Extra
    keyword options go to :class:`DartSystem` (backend, t-norm,
    confidence weighting, ...).
    """
    noiseless = OcrChannel(numeric_error_rate=0.0, string_error_rate=0.0)
    channels = [
        channel_factory(index) if channel_factory else noiseless
        for index in range(len(scenarios))
    ]
    if workers and workers >= 1:
        from concurrent.futures import ProcessPoolExecutor

        payloads = [
            (scenario, channel, interactive, system_options)
            for scenario, channel in zip(scenarios, channels)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            sessions = list(pool.map(_corpus_job, payloads, chunksize=chunksize))
    else:
        sessions = [
            _corpus_job((scenario, channel, interactive, system_options))
            for scenario, channel in zip(scenarios, channels)
        ]
    recovered: List[bool] = []
    for index, (scenario, session) in enumerate(zip(scenarios, sessions)):
        recovered.append(session.final_database == scenario.ground_truth)
        logger.debug(
            "corpus document %d/%d: %s",
            index + 1,
            len(scenarios),
            "recovered" if recovered[-1] else "NOT recovered",
        )
    return CorpusResult(sessions=sessions, recovered=recovered)
