"""DART system orchestration: the architecture of Figures 2 and 5.

- :mod:`repro.core.scenarios` -- per-workload extraction metadata and
  document renderers (the acquisition designer's artefacts): the cash
  budget of the running example (domains and hierarchy of Figure 6,
  the row pattern of Figure 7a), hierarchical balance sheets, and
  product catalogs;
- :mod:`repro.core.system` -- :class:`DartSystem`, wiring acquisition
  -> wrapping -> database generation -> repairing -> supervised
  validation, and :class:`AcquisitionSession`, the full per-document
  result object.
"""

from repro.core.scenarios import (
    Scenario,
    balance_sheet_scenario,
    cash_budget_document,
    cash_budget_metadata,
    cash_budget_scenario,
    catalog_scenario,
)
from repro.core.system import AcquisitionSession, DartSystem
from repro.core.corpus import CorpusResult, run_corpus

__all__ = [
    "CorpusResult",
    "run_corpus",
    "Scenario",
    "cash_budget_metadata",
    "cash_budget_document",
    "cash_budget_scenario",
    "balance_sheet_scenario",
    "catalog_scenario",
    "DartSystem",
    "AcquisitionSession",
]
