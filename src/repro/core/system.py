"""DART: the end-to-end system (Figures 2 and 5).

:class:`DartSystem` wires the macro-modules together:

1. **Acquisition module** -- converts the input document to HTML; for
   paper documents the OCR channel injects recognition errors;
2. **Data extraction module** -- the wrapper matches table rows to row
   patterns (repairing misspelled strings via msi binding) and the
   database generator produces the instance ``D``;
3. **Repairing module** -- detects inconsistencies of ``D`` w.r.t. the
   steady aggregate constraints and computes a card-minimal repair via
   the MILP translation;
4. **Validation interface** -- the operator reviews suggested updates
   (simulated by an :class:`~repro.repair.interactive.OracleOperator`
   against the source document's ground truth), pins become new
   constraints, and the loop re-solves until acceptance.

:class:`AcquisitionSession` exposes every intermediate artefact, so
the benches can measure each stage in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.acquisition.conversion import AcquisitionModule, AcquisitionResult
from repro.acquisition.documents import Document
from repro.acquisition.ocr import OcrChannel
from repro.constraints.constraint import AggregateConstraint
from repro.constraints.grounding import Violation
from repro.core.scenarios import Scenario
from repro.milp.cache import SolveCache
from repro.milp.solver import DEFAULT_BACKEND, SolveStats
from repro.relational.database import Database
from repro.repair.engine import RepairEngine, RepairOutcome
from repro.repair.translation import RepairObjective
from repro.repair.interactive import (
    Operator,
    OracleOperator,
    ValidationLoop,
    ValidationSession,
)
from repro.repair.updates import Repair
from repro.wrapping.dbgen import DatabaseGenerator, GenerationReport
from repro.wrapping.matching import TNorm
from repro.wrapping.wrapper import Wrapper, WrapperReport


@dataclass
class AcquisitionSession:
    """Everything DART produced while processing one document."""

    #: stage 1: acquisition (HTML + OCR provenance)
    acquisition: AcquisitionResult
    #: stage 2a: wrapper output
    wrapping: WrapperReport
    #: stage 2b: the acquired database instance D
    generation: GenerationReport
    #: stage 3: violations detected in D
    violations: List[Violation]
    #: stage 3: the first proposed card-minimal repair (None if D |= AC)
    proposed_repair: Optional[Repair]
    #: stage 4: the supervised validation outcome (None if not run)
    validation: Optional[ValidationSession]
    #: the final database (validated repair applied when available,
    #: else the first proposal, else D itself)
    final_database: Database
    #: one record per MILP solve the repairing module issued
    solve_stats: List[SolveStats] = field(default_factory=list)

    @property
    def acquired_database(self) -> Database:
        return self.generation.database

    @property
    def was_consistent(self) -> bool:
        return not self.violations

    @property
    def iterations(self) -> int:
        return self.validation.iterations if self.validation else (
            0 if self.was_consistent else 1
        )

    @property
    def values_inspected(self) -> int:
        return self.validation.values_inspected if self.validation else 0

    def save(self, directory) -> None:
        """Persist the session's artefacts for audit.

        Writes into *directory*: ``acquired.html`` (what the OCR/
        converter produced), ``acquired/`` and ``final/`` (CSV dumps of
        the extracted and the validated instance), ``violations.txt``,
        ``repair.txt`` (the first proposal) and ``transcript.txt`` (the
        operator session), as applicable.
        """
        from pathlib import Path

        from repro.relational.csvio import dump_database

        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        (root / "acquired.html").write_text(self.acquisition.html, encoding="utf-8")
        dump_database(self.acquired_database, root / "acquired")
        dump_database(self.final_database, root / "final")
        (root / "violations.txt").write_text(
            "\n".join(str(v) for v in self.violations) + ("\n" if self.violations else ""),
            encoding="utf-8",
        )
        if self.proposed_repair is not None:
            (root / "repair.txt").write_text(
                str(self.proposed_repair) + "\n", encoding="utf-8"
            )
        if self.validation is not None:
            (root / "transcript.txt").write_text(
                self.validation.render_transcript() + "\n", encoding="utf-8"
            )


class DartSystem:
    """The assembled DART pipeline for one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        ocr_channel: Optional[OcrChannel] = None,
        t_norm: TNorm = TNorm.PRODUCT,
        backend: str = DEFAULT_BACKEND,
        use_confidence_weights: bool = False,
        solve_cache: Optional[SolveCache] = None,
    ) -> None:
        """With ``use_confidence_weights`` the repairing module runs the
        weighted-cardinality objective, weighting each measure cell by
        the wrapper's matching score for the cell it was extracted from
        -- a low-confidence acquisition is cheaper to repair.  This is
        an extension beyond the paper (which always uses plain
        card-minimality); the A4 ablation bench measures its effect."""
        self.scenario = scenario
        self.acquisition_module = AcquisitionModule(ocr_channel)
        self.wrapper = Wrapper(scenario.metadata, t_norm=t_norm)
        self.generator = DatabaseGenerator(scenario.metadata)
        self.backend = backend
        self.use_confidence_weights = use_confidence_weights
        self.solve_cache = solve_cache

    def _confidence_weights(self, wrapping, generation):
        """Per-cell repair weights from the wrapper's matching scores.

        The i-th *inserted* instance produced tuple id i (skipped rows
        insert nothing).  A measure attribute sourced from headline H
        inherits the matching score of the cell carrying H, floored at
        0.05 so weights stay positive.
        """
        metadata = self.scenario.metadata
        mapping = metadata.mapping
        relation = mapping.relation
        measure_names = set(metadata.schema.measures_of(relation))
        skipped = set(id(instance) for instance in generation.skipped)
        weights = {}
        tuple_id = 0
        for instance in wrapping.instances:
            if id(instance) in skipped:
                continue
            score_by_headline = {
                cell.headline: cell.score
                for cell in instance.cells
                if cell.headline
            }
            for attribute, source in mapping.sources.items():
                if attribute not in measure_names or source.headline is None:
                    continue
                score = score_by_headline.get(source.headline, 1.0)
                weights[(relation, tuple_id, attribute)] = max(score, 0.05)
            tuple_id += 1
        return weights

    def process(
        self,
        document: Optional[Document] = None,
        *,
        operator: Optional[Operator] = None,
        interactive: bool = True,
    ) -> AcquisitionSession:
        """Process *document* (default: the scenario's document).

        With ``interactive`` (and an *operator*, defaulting to an
        oracle over the scenario's ground truth) the full validation
        loop runs; otherwise the first card-minimal repair is applied
        unsupervised.
        """
        source = document if document is not None else self.scenario.document

        acquisition = self.acquisition_module.acquire(source)
        wrapping = self.wrapper.wrap_html(acquisition.html)
        generation = self.generator.generate(wrapping.instances, skip_failures=True)
        database = generation.database

        engine_options = {}
        if self.use_confidence_weights:
            engine_options["objective"] = RepairObjective.WEIGHTED_CARDINALITY
            engine_options["weights"] = self._confidence_weights(
                wrapping, generation
            )
        engine = RepairEngine(
            database,
            self.scenario.constraints,
            backend=self.backend,
            solve_cache=self.solve_cache,
            **engine_options,
        )
        violations = engine.violations()
        if not violations:
            return AcquisitionSession(
                acquisition=acquisition,
                wrapping=wrapping,
                generation=generation,
                violations=[],
                proposed_repair=None,
                validation=None,
                final_database=database,
                solve_stats=engine.solve_stats,
            )

        outcome = engine.find_card_minimal_repair()
        if not interactive:
            return AcquisitionSession(
                acquisition=acquisition,
                wrapping=wrapping,
                generation=generation,
                violations=violations,
                proposed_repair=outcome.repair,
                validation=None,
                final_database=engine.apply(outcome.repair),
                solve_stats=engine.solve_stats,
            )

        reviewer = operator or OracleOperator(
            self.scenario.ground_truth, acquired=database
        )
        loop = ValidationLoop(engine, reviewer)
        validation = loop.run()
        return AcquisitionSession(
            acquisition=acquisition,
            wrapping=wrapping,
            generation=generation,
            violations=violations,
            proposed_repair=outcome.repair,
            validation=validation,
            final_database=validation.repaired_database,
            solve_stats=engine.solve_stats,
        )

    def process_many(
        self,
        documents: Sequence[Document],
        *,
        interactive: bool = True,
        workers: Optional[int] = None,
        chunksize: int = 1,
    ) -> List[AcquisitionSession]:
        """Process a batch of documents of this scenario class.

        With ``workers >= 1`` the documents fan out over a process
        pool (the whole pipeline -- acquisition, wrapping, repair,
        validation -- runs in the worker); results always come back in
        document order.  ``workers=None`` processes sequentially.
        """
        if not workers or workers < 1:
            return [
                self.process(document, interactive=interactive)
                for document in documents
            ]
        from concurrent.futures import ProcessPoolExecutor

        payloads = [
            (self, document, interactive) for document in documents
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(_process_document_job, payloads, chunksize=chunksize)
            )


def _process_document_job(payload) -> AcquisitionSession:
    """Top-level (picklable) worker for :meth:`DartSystem.process_many`."""
    system, document, interactive = payload
    return system.process(document, interactive=interactive)
