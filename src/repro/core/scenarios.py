"""Scenario bundles: workload + document renderer + extraction metadata.

A :class:`Scenario` packages what the *acquisition designer* provides
for one document class (Section 2): the extraction metadata (domains,
hierarchy, classification, row patterns, relational mapping) and the
aggregate constraints, together with a renderer that lays a workload's
ground truth out as a document with the realistic "variable structure"
of the paper's Figure 1 (multi-row year and section cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.acquisition.documents import Cell, Document, Row, SourceFormat, Table
from repro.constraints.constraint import AggregateConstraint
from repro.datasets.balancesheet import (
    BalanceSheetWorkload,
    KIND_INTERNAL,
    KIND_LEAF,
    ROOT_PARENT,
)
from repro.datasets.cashbudget import (
    CLASSIFICATION,
    CashBudgetRow,
    CashBudgetWorkload,
    SECTION_OF,
    SUBSECTION_ORDER,
    cash_budget_constraints,
    cash_budget_schema,
)
from repro.datasets.catalog import (
    CatalogWorkload,
    KIND_PRODUCT,
    KIND_SUBTOTAL,
    KIND_TOTAL,
    TOTAL_CATEGORY,
)
from repro.relational.database import Database
from repro.wrapping.metadata import (
    AttributeSource,
    ClassificationInfo,
    DomainDescription,
    ExtractionMetadata,
    HierarchyGraph,
    RelationalMapping,
)
from repro.wrapping.patterns import LexicalCell, RowPattern, StandardCell, StandardDomain


@dataclass
class Scenario:
    """Everything DART needs to process one class of documents."""

    name: str
    metadata: ExtractionMetadata
    constraints: List[AggregateConstraint]
    ground_truth: Database
    document: Document


# ---------------------------------------------------------------------------
# Cash budget (the running example)
# ---------------------------------------------------------------------------


def cash_budget_metadata(
    extra_subsections: Sequence[str] = (), match_threshold: float = 0.5
) -> ExtractionMetadata:
    """The extraction metadata of the running example.

    Domains and hierarchy follow Figure 6; the row pattern is
    Figure 7(a): ``Integer [Year] | Section | Subsection (specialises
    the Section cell) | Integer [Value]``; the ``Type`` attribute is
    classification-sourced from ``Subsection`` (Section 6.2).
    """
    sections = sorted(set(SECTION_OF.values()))
    subsections = sorted(set(SUBSECTION_ORDER) | set(extra_subsections))
    domains = {
        "Section": DomainDescription("Section", sections),
        "Subsection": DomainDescription("Subsection", subsections),
    }
    hierarchy = HierarchyGraph(
        (subsection, SECTION_OF[subsection]) for subsection in SUBSECTION_ORDER
    )
    classification = ClassificationInfo("item_role", dict(CLASSIFICATION))
    pattern = RowPattern(
        "cash_budget_row",
        [
            StandardCell(StandardDomain.INTEGER, headline="Year"),
            LexicalCell("Section", headline="Section"),
            LexicalCell("Subsection", headline="Subsection", specialization_of=1),
            StandardCell(StandardDomain.INTEGER, headline="Value"),
        ],
    )
    mapping = RelationalMapping(
        "CashBudget",
        {
            "Year": AttributeSource(headline="Year"),
            "Section": AttributeSource(headline="Section"),
            "Subsection": AttributeSource(headline="Subsection"),
            "Type": AttributeSource(
                classify_attribute="Subsection", classification="item_role"
            ),
            "Value": AttributeSource(headline="Value"),
        },
    )
    return ExtractionMetadata(
        domains=domains,
        hierarchy=hierarchy,
        classifications={"item_role": classification},
        row_patterns=[pattern],
        mapping=mapping,
        schema=cash_budget_schema(),
        match_threshold=match_threshold,
    )


def cash_budget_document(
    rows: Sequence[CashBudgetRow],
    *,
    source_format: SourceFormat = SourceFormat.PAPER,
    title: str = "Cash budgets",
) -> Document:
    """Lay cash-budget rows out like the paper's Figure 1.

    One table per year; the year occupies a single cell spanning all
    ten rows, and each section name occupies a cell spanning its
    subsection rows -- the "variable structure" the wrapper must cope
    with.
    """
    by_year: Dict[int, List[CashBudgetRow]] = {}
    for row in rows:
        by_year.setdefault(row[0], []).append(row)

    tables: List[Table] = []
    for year in sorted(by_year):
        year_rows = by_year[year]
        # Count the consecutive run length of each section.
        runs: List[PyTuple[str, int]] = []
        for _, section, _, _, _ in year_rows:
            if runs and runs[-1][0] == section:
                runs[-1] = (section, runs[-1][1] + 1)
            else:
                runs.append((section, 1))
        physical_rows: List[Row] = []
        section_starts = set()
        start = 0
        for section, length in runs:
            section_starts.add(start)
            start += length
        run_iter = iter(runs)
        current_run: Optional[PyTuple[str, int]] = None
        for index, (_, section, subsection, _, value) in enumerate(year_rows):
            cells: List[Cell] = []
            if index == 0:
                cells.append(Cell(str(year), rowspan=len(year_rows)))
            if index in section_starts:
                current_run = next(run_iter)
                cells.append(Cell(current_run[0], rowspan=current_run[1]))
            cells.append(Cell(subsection))
            cells.append(Cell(str(value)))
            physical_rows.append(Row(cells))
        tables.append(Table(physical_rows, caption=f"Cash budget {year}"))
    return Document(title=title, tables=tables, source_format=source_format)


def cash_budget_scenario(
    workload: CashBudgetWorkload,
    *,
    source_format: SourceFormat = SourceFormat.PAPER,
) -> Scenario:
    """Bundle a generated cash-budget workload into a scenario."""
    return Scenario(
        name="cash_budget",
        metadata=cash_budget_metadata(),
        constraints=workload.constraints,
        ground_truth=workload.ground_truth,
        document=cash_budget_document(workload.rows, source_format=source_format),
    )


# ---------------------------------------------------------------------------
# Balance sheet
# ---------------------------------------------------------------------------


def balance_sheet_scenario(
    workload: BalanceSheetWorkload,
    *,
    source_format: SourceFormat = SourceFormat.PAPER,
) -> Scenario:
    """Scenario for the hierarchical balance-sheet workload.

    One table per (company, year) with the company and year in
    multi-row cells; items, parents and kinds are lexical domains built
    from the workload's tree.
    """
    items = sorted({"assets", "liabilities", "equity"} | set(workload.children)
                   | {c for cs in workload.children.values() for c in cs})
    parents = sorted(set(items) | {ROOT_PARENT})
    domains = {
        "Item": DomainDescription("Item", items),
        "Parent": DomainDescription("Parent", parents),
        "Kind": DomainDescription("Kind", [KIND_LEAF, KIND_INTERNAL]),
    }
    hierarchy = HierarchyGraph(
        (child, parent)
        for parent, children in workload.children.items()
        for child in children
    )
    pattern = RowPattern(
        "balance_sheet_row",
        [
            StandardCell(StandardDomain.STRING, headline="Company"),
            StandardCell(StandardDomain.INTEGER, headline="Year"),
            LexicalCell("Item", headline="Item"),
            LexicalCell("Parent", headline="Parent"),
            LexicalCell("Kind", headline="Kind"),
            StandardCell(StandardDomain.INTEGER, headline="Value"),
        ],
    )
    mapping = RelationalMapping(
        "BalanceSheet",
        {
            "Company": AttributeSource(headline="Company"),
            "Year": AttributeSource(headline="Year"),
            "Item": AttributeSource(headline="Item"),
            "Parent": AttributeSource(headline="Parent"),
            "Kind": AttributeSource(headline="Kind"),
            "Value": AttributeSource(headline="Value"),
        },
    )
    metadata = ExtractionMetadata(
        domains=domains,
        hierarchy=hierarchy,
        classifications={},
        row_patterns=[pattern],
        mapping=mapping,
        schema=workload.schema,
    )

    tables: List[Table] = []
    for company in workload.companies:
        for year in workload.years:
            rows = [
                t
                for t in workload.ground_truth.relation("BalanceSheet")
                if t["Company"] == company and t["Year"] == year
            ]
            physical: List[Row] = []
            for index, t in enumerate(rows):
                cells: List[Cell] = []
                if index == 0:
                    cells.append(Cell(company, rowspan=len(rows)))
                    cells.append(Cell(str(year), rowspan=len(rows)))
                cells.extend(
                    [
                        Cell(t["Item"]),
                        Cell(t["Parent"]),
                        Cell(t["Kind"]),
                        Cell(str(t["Value"])),
                    ]
                )
                physical.append(Row(cells))
            tables.append(
                Table(physical, caption=f"Balance sheet {company} {year}")
            )
    document = Document(
        title="Balance sheets", tables=tables, source_format=source_format
    )
    return Scenario(
        name="balance_sheet",
        metadata=metadata,
        constraints=workload.constraints,
        ground_truth=workload.ground_truth,
        document=document,
    )


# ---------------------------------------------------------------------------
# Product catalog
# ---------------------------------------------------------------------------


def catalog_scenario(
    workload: CatalogWorkload,
    *,
    source_format: SourceFormat = SourceFormat.HTML,
) -> Scenario:
    """Scenario for the product-catalog workload (a web-table case,
    so the default source format is HTML: no OCR noise, but the same
    wrapper and repair machinery)."""
    tuples = list(workload.ground_truth.relation("Catalog"))
    categories = sorted({t["Category"] for t in tuples})
    item_names = sorted({t["Item"] for t in tuples})
    domains = {
        "Category": DomainDescription("Category", categories),
        "Item": DomainDescription("Item", item_names),
        "Kind": DomainDescription("Kind", [KIND_PRODUCT, KIND_SUBTOTAL, KIND_TOTAL]),
    }
    hierarchy = HierarchyGraph(
        (t["Item"], t["Category"]) for t in tuples if t["Item"] not in categories
    )
    pattern = RowPattern(
        "catalog_row",
        [
            LexicalCell("Category", headline="Category"),
            LexicalCell("Item", headline="Item", specialization_of=0),
            LexicalCell("Kind", headline="Kind"),
            StandardCell(StandardDomain.INTEGER, headline="Price"),
        ],
    )
    mapping = RelationalMapping(
        "Catalog",
        {
            "Category": AttributeSource(headline="Category"),
            "Item": AttributeSource(headline="Item"),
            "Kind": AttributeSource(headline="Kind"),
            "Price": AttributeSource(headline="Price"),
        },
    )
    metadata = ExtractionMetadata(
        domains=domains,
        hierarchy=hierarchy,
        classifications={},
        row_patterns=[pattern],
        mapping=mapping,
        schema=workload.schema,
    )

    # One table; each category's rows share a multi-row category cell.
    physical: List[Row] = []
    by_category: Dict[str, List] = {}
    for t in tuples:
        by_category.setdefault(t["Category"], []).append(t)
    # Keep first-appearance order so the acquired instance lines up
    # with the ground truth row for row.
    for category in by_category:
        rows = by_category[category]
        for index, t in enumerate(rows):
            cells: List[Cell] = []
            if index == 0:
                cells.append(Cell(category, rowspan=len(rows)))
            cells.extend([Cell(t["Item"]), Cell(t["Kind"]), Cell(str(t["Price"]))])
            physical.append(Row(cells))
    document = Document(
        title="Product catalog",
        tables=[Table(physical, caption="Catalog")],
        source_format=source_format,
    )
    return Scenario(
        name="catalog",
        metadata=metadata,
        constraints=workload.constraints,
        ground_truth=workload.ground_truth,
        document=document,
    )
