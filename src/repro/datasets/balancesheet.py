"""Hierarchical balance-sheet workload.

The paper's motivating scenario is balance analysis: full balance
sheets have *nested* subtotal structure (assets split into current and
fixed assets, those split again, ...), which stresses the repair
machinery much harder than the flat cash budget of the running
example.  This generator builds a three-root hierarchy (assets,
liabilities, equity) of configurable depth and branching, with:

- one steady aggregate constraint family "every internal item equals
  the sum of its children", and
- the accounting equation ``assets = liabilities + equity``.

The relational scheme is::

    BalanceSheet(Company : S, Year : Z, Item : S, Parent : S,
                 Kind : S, Value : Z)

with ``M_D = {BalanceSheet.Value}``; ``Kind`` is ``leaf`` or
``internal`` and ``Parent`` is the item's parent name (the roots use
the reserved parent ``<root>``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.constraints.constraint import AggregateConstraint
from repro.constraints.parser import parse_constraints
from repro.relational.database import Database
from repro.relational.domains import Domain
from repro.relational.schema import DatabaseSchema, RelationSchema

KIND_LEAF = "leaf"
KIND_INTERNAL = "internal"
ROOT_PARENT = "<root>"

BALANCE_SHEET_CONSTRAINT_DSL = """
function child_sum(c, y, p) = sum(Value) from BalanceSheet
    where Company = $c and Year = $y and Parent = $p

function item_value(c, y, i) = sum(Value) from BalanceSheet
    where Company = $c and Year = $y and Item = $i

# Every internal item equals the sum of its children.
constraint internal_item_sum:
    BalanceSheet(c, y, p, _, 'internal', _) =>
        child_sum(c, y, p) - item_value(c, y, p) = 0

# The accounting equation: assets = liabilities + equity.
constraint accounting_equation:
    BalanceSheet(c, y, _, _, _, _) =>
        item_value(c, y, 'assets')
        - item_value(c, y, 'liabilities')
        - item_value(c, y, 'equity') = 0
"""


def balance_sheet_schema() -> DatabaseSchema:
    relation = RelationSchema.build(
        "BalanceSheet",
        [
            ("Company", Domain.STRING),
            ("Year", Domain.INTEGER),
            ("Item", Domain.STRING),
            ("Parent", Domain.STRING),
            ("Kind", Domain.STRING),
            ("Value", Domain.INTEGER),
        ],
        key=("Company", "Year", "Item"),
    )
    return DatabaseSchema([relation], measure_attributes=[("BalanceSheet", "Value")])


def balance_sheet_constraints() -> List[AggregateConstraint]:
    _, constraints = parse_constraints(BALANCE_SHEET_CONSTRAINT_DSL)
    return constraints


@dataclass
class BalanceSheetWorkload:
    """A generated balance sheet with known ground truth."""

    schema: DatabaseSchema
    ground_truth: Database
    constraints: List[AggregateConstraint]
    companies: List[str]
    years: List[int]
    #: item name -> list of child item names (per tree structure, shared
    #: by all (company, year) combinations)
    children: Dict[str, List[str]]

    def fresh_copy(self) -> Database:
        return self.ground_truth.copy()


#: Item-name vocabulary used to label generated nodes, so documents look
#: like real statements (and so the wrapper's dictionaries are non-trivial).
_ITEM_WORDS = [
    "cash", "securities", "receivables", "inventory", "prepaid expenses",
    "land", "buildings", "equipment", "goodwill", "patents",
    "accounts payable", "accrued wages", "notes payable", "bonds",
    "deferred taxes", "common stock", "preferred stock",
    "retained earnings", "treasury stock", "reserves",
]


def _tree_items(
    root: str, depth: int, branching: int, counter: List[int]
) -> PyTuple[Dict[str, List[str]], List[str]]:
    """Build one subtree; returns (children map, leaf names)."""
    children: Dict[str, List[str]] = {}
    leaves: List[str] = []

    def grow(parent: str, level: int) -> None:
        children[parent] = []
        for _ in range(branching):
            word = _ITEM_WORDS[counter[0] % len(_ITEM_WORDS)]
            name = f"{word} #{counter[0]}"
            counter[0] += 1
            children[parent].append(name)
            if level + 1 < depth:
                grow(name, level + 1)
            else:
                leaves.append(name)

    grow(root, 0)
    return children, leaves


def generate_balance_sheet(
    *,
    n_companies: int = 1,
    n_years: int = 1,
    depth: int = 2,
    branching: int = 3,
    first_year: int = 2003,
    seed: int = 0,
    value_scale: int = 1000,
) -> BalanceSheetWorkload:
    """Generate a consistent hierarchical balance sheet.

    ``depth`` is the number of levels *below* each of the three roots;
    leaf values are uniform in ``[0, value_scale]``, internal values
    are the sums of their children, and one equity leaf absorbs the
    difference so the accounting equation holds exactly.
    """
    if depth < 1 or branching < 1:
        raise ValueError("depth and branching must be >= 1")
    rng = random.Random(seed)

    counter = [0]
    children: Dict[str, List[str]] = {}
    assets_children, assets_leaves = _tree_items("assets", depth, branching, counter)
    liabilities_children, liabilities_leaves = _tree_items(
        "liabilities", depth, branching, counter
    )
    equity_children, equity_leaves = _tree_items("equity", depth, branching, counter)
    children.update(assets_children)
    children.update(liabilities_children)
    children.update(equity_children)

    schema = balance_sheet_schema()
    database = Database(schema)
    companies = [f"ACME-{index}" for index in range(n_companies)]
    years = [first_year + offset for offset in range(n_years)]

    def subtree_total(root: str, values: Dict[str, int]) -> int:
        if root not in children:
            return values[root]
        total = sum(subtree_total(child, values) for child in children[root])
        values[root] = total
        return total

    for company in companies:
        for year in years:
            values: Dict[str, int] = {}
            for leaf in assets_leaves + liabilities_leaves + equity_leaves:
                values[leaf] = rng.randrange(0, value_scale + 1)
            assets_total = subtree_total("assets", values)
            liabilities_total = subtree_total("liabilities", values)
            equity_total = subtree_total("equity", values)
            # Let the last equity leaf absorb the accounting-equation gap
            # (retained earnings may legitimately go negative).
            gap = assets_total - liabilities_total - equity_total
            values[equity_leaves[-1]] += gap
            subtree_total("equity", values)

            def emit(item: str, parent: str) -> None:
                kind = KIND_INTERNAL if item in children else KIND_LEAF
                database.insert(
                    "BalanceSheet",
                    [company, year, item, parent, kind, values[item]],
                )
                for child in children.get(item, ()):
                    emit(child, item)

            for root in ("assets", "liabilities", "equity"):
                emit(root, ROOT_PARENT)

    return BalanceSheetWorkload(
        schema=schema,
        ground_truth=database,
        constraints=balance_sheet_constraints(),
        companies=companies,
        years=years,
        children=children,
    )
