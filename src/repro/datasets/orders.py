"""Multi-relation workload: orders with line items.

Everything in the paper's running example lives in a single relation;
the constraint machinery, however, is defined for arbitrary database
schemes (Definition 1 allows conjunctive bodies over several atoms,
and the sets ``J(kappa)`` exist precisely to handle join variables).
This workload exercises that generality:

- ``Orders(OrderId : Z, Customer : S, Total : Z)``
- ``OrderLines(OrderId : Z, Item : S, Amount : Z)``
- ``Customers(Name : S, Region : S, CreditLimit : Z)``

Constraints:

1. per order, the sum of its line amounts equals the order total
   (cross-relation aggregation);
2. per customer *joined through the body* (``Orders(o, c, _),
   Customers(c, _, _)``): the customer's order totals stay within the
   declared credit limit -- a constraint whose body has a genuine join
   variable, giving a non-empty ``J(kappa)`` that is nevertheless
   steady (the joined attributes are not measures).

``M_D = {Orders.Total, OrderLines.Amount}`` -- two measure attributes
in two different relations, so repairs may fix either side of the
books.  ``Customers.CreditLimit`` is deliberately NOT a measure: the
limit is reference data, not an acquired value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple as PyTuple

from repro.constraints.constraint import AggregateConstraint
from repro.constraints.parser import parse_constraints
from repro.relational.database import Database
from repro.relational.domains import Domain
from repro.relational.schema import DatabaseSchema, RelationSchema

ORDERS_CONSTRAINT_DSL = """
function line_sum(o) = sum(Amount) from OrderLines
    where OrderId = $o

function order_total(o) = sum(Total) from Orders
    where OrderId = $o

function customer_orders(c) = sum(Total) from Orders
    where Customer = $c

function credit_of(c) = sum(CreditLimit) from Customers
    where Name = $c

# Per order: line amounts sum to the order total.
constraint lines_match_total:
    Orders(o, _, _) => line_sum(o) - order_total(o) = 0

# Per customer appearing in some order (a joined body!): total order
# volume within the credit limit.
constraint within_credit:
    Orders(o, c, _), Customers(c, _, _) =>
        customer_orders(c) - credit_of(c) <= 0
"""


def orders_schema() -> DatabaseSchema:
    orders = RelationSchema.build(
        "Orders",
        [
            ("OrderId", Domain.INTEGER),
            ("Customer", Domain.STRING),
            ("Total", Domain.INTEGER),
        ],
        key=("OrderId",),
    )
    lines = RelationSchema.build(
        "OrderLines",
        [
            ("OrderId", Domain.INTEGER),
            ("Item", Domain.STRING),
            ("Amount", Domain.INTEGER),
        ],
        key=("OrderId", "Item"),
    )
    customers = RelationSchema.build(
        "Customers",
        [
            ("Name", Domain.STRING),
            ("Region", Domain.STRING),
            ("CreditLimit", Domain.INTEGER),
        ],
        key=("Name",),
    )
    return DatabaseSchema(
        [orders, lines, customers],
        measure_attributes=[("Orders", "Total"), ("OrderLines", "Amount")],
    )


def orders_constraints() -> List[AggregateConstraint]:
    _, constraints = parse_constraints(ORDERS_CONSTRAINT_DSL)
    return constraints


@dataclass
class OrdersWorkload:
    """A generated orders/lines/customers instance with ground truth."""

    schema: DatabaseSchema
    ground_truth: Database
    constraints: List[AggregateConstraint]
    order_ids: List[int]
    customers: List[str]

    def fresh_copy(self) -> Database:
        return self.ground_truth.copy()


_ITEMS = ["widget", "gadget", "sprocket", "flange", "gear", "bolt", "washer"]
_REGIONS = ["north", "south", "east", "west"]


def generate_orders(
    *,
    n_customers: int = 3,
    n_orders: int = 5,
    lines_per_order: int = 3,
    seed: int = 0,
    amount_scale: int = 500,
) -> OrdersWorkload:
    """Generate a consistent orders instance.

    Line amounts are uniform in [1, amount_scale]; order totals are
    exact sums; credit limits are set comfortably above each customer's
    actual volume (so the inequality constraint is satisfied with slack
    and only gross acquisition errors violate it).
    """
    if n_customers < 1 or n_orders < 1 or lines_per_order < 1:
        raise ValueError("workload dimensions must be >= 1")
    rng = random.Random(seed)
    schema = orders_schema()
    database = Database(schema)
    customers = [f"customer-{i}" for i in range(n_customers)]

    volumes: Dict[str, int] = {name: 0 for name in customers}
    order_ids = list(range(1, n_orders + 1))
    order_rows: List[PyTuple[int, str, int]] = []
    for order_id in order_ids:
        customer = customers[(order_id - 1) % n_customers]
        total = 0
        for line_index in range(lines_per_order):
            item = _ITEMS[(order_id * lines_per_order + line_index) % len(_ITEMS)]
            amount = rng.randrange(1, amount_scale + 1)
            total += amount
            database.insert(
                "OrderLines", [order_id, f"{item} #{line_index}", amount]
            )
        order_rows.append((order_id, customer, total))
        volumes[customer] += total
    for order_id, customer, total in order_rows:
        database.insert("Orders", [order_id, customer, total])
    for index, customer in enumerate(customers):
        region = _REGIONS[index % len(_REGIONS)]
        limit = volumes[customer] + rng.randrange(amount_scale, 3 * amount_scale)
        database.insert("Customers", [customer, region, limit])

    return OrdersWorkload(
        schema=schema,
        ground_truth=database,
        constraints=orders_constraints(),
        order_ids=order_ids,
        customers=customers,
    )
