"""Workloads: the paper's running example plus seeded generators.

- :mod:`repro.datasets.cashbudget` -- the exact Figure 1/3 cash budget
  of the paper, its steady aggregate constraints, and a seeded
  generator of random multi-year cash budgets with known ground truth;
- :mod:`repro.datasets.balancesheet` -- a deeper hierarchical
  balance-sheet generator (assets / liabilities / equity with nested
  subtotal constraints), parameterised by depth and width;
- :mod:`repro.datasets.catalog` -- the "web product catalog" scenario
  the introduction motivates (per-category subtotals over prices).
"""

from repro.datasets.cashbudget import (
    CASH_BUDGET_CONSTRAINT_DSL,
    CashBudgetWorkload,
    cash_budget_constraints,
    cash_budget_schema,
    generate_cash_budget,
    paper_acquired_instance,
    paper_ground_truth,
    paper_rows,
)
from repro.datasets.balancesheet import (
    BalanceSheetWorkload,
    generate_balance_sheet,
)
from repro.datasets.catalog import CatalogWorkload, generate_catalog
from repro.datasets.orders import OrdersWorkload, generate_orders

__all__ = [
    "CASH_BUDGET_CONSTRAINT_DSL",
    "CashBudgetWorkload",
    "cash_budget_schema",
    "cash_budget_constraints",
    "paper_ground_truth",
    "paper_acquired_instance",
    "paper_rows",
    "generate_cash_budget",
    "BalanceSheetWorkload",
    "generate_balance_sheet",
    "CatalogWorkload",
    "generate_catalog",
    "OrdersWorkload",
    "generate_orders",
]
