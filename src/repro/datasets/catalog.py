"""Product-catalog workload (the "web site publishing product catalogs"
scenario of the paper's introduction).

A catalog page lists products grouped by category; each category
closes with a subtotal row and the page closes with a grand total.
Prices are kept in integer cents so the repair problem stays an ILP.

The relational scheme is::

    Catalog(Category : S, Item : S, Kind : S, Price : Z)

with ``M_D = {Catalog.Price}``; ``Kind`` is ``product``, ``subtotal``
or ``total``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple as PyTuple

from repro.constraints.constraint import AggregateConstraint
from repro.constraints.parser import parse_constraints
from repro.relational.database import Database
from repro.relational.domains import Domain
from repro.relational.schema import DatabaseSchema, RelationSchema

KIND_PRODUCT = "product"
KIND_SUBTOTAL = "subtotal"
KIND_TOTAL = "total"
TOTAL_CATEGORY = "ALL"

CATALOG_CONSTRAINT_DSL = """
function cat_sum(c, k) = sum(Price) from Catalog
    where Category = $c and Kind = $k

function kind_sum(k) = sum(Price) from Catalog
    where Kind = $k

# Per category: product prices sum to the category subtotal.
constraint category_subtotal:
    Catalog(c, _, _, _) =>
        cat_sum(c, 'product') - cat_sum(c, 'subtotal') = 0

# Page level: subtotals sum to the grand total.
constraint grand_total:
    Catalog(_, _, _, _) =>
        kind_sum('subtotal') - kind_sum('total') = 0
"""

#: Product-name vocabulary (doubles as the wrapper's Item dictionary).
PRODUCT_WORDS = [
    "laptop", "monitor", "keyboard", "mouse", "webcam", "headset",
    "printer", "scanner", "router", "switch", "tablet", "charger",
    "dock", "cable", "adapter", "speaker", "microphone", "stand",
]

CATEGORY_WORDS = [
    "computers", "peripherals", "networking", "audio", "accessories",
]


def catalog_schema() -> DatabaseSchema:
    relation = RelationSchema.build(
        "Catalog",
        [
            ("Category", Domain.STRING),
            ("Item", Domain.STRING),
            ("Kind", Domain.STRING),
            ("Price", Domain.INTEGER),
        ],
        key=("Category", "Item"),
    )
    return DatabaseSchema([relation], measure_attributes=[("Catalog", "Price")])


def catalog_constraints() -> List[AggregateConstraint]:
    _, constraints = parse_constraints(CATALOG_CONSTRAINT_DSL)
    return constraints


@dataclass
class CatalogWorkload:
    """A generated product catalog with known ground truth."""

    schema: DatabaseSchema
    ground_truth: Database
    constraints: List[AggregateConstraint]
    categories: List[str]

    def fresh_copy(self) -> Database:
        return self.ground_truth.copy()


def generate_catalog(
    *,
    n_categories: int = 3,
    products_per_category: int = 4,
    seed: int = 0,
    price_scale: int = 50000,
    with_price_bounds: bool = False,
) -> CatalogWorkload:
    """Generate a consistent catalog (prices in integer cents).

    With ``with_price_bounds`` the schema declares ``Price >= 0``:
    repairs may not propose negative prices, which typically collapses
    the card-minimal repair set for upward misreadings (only the
    corrupted product can absorb a large positive delta).
    """
    if n_categories < 1 or products_per_category < 1:
        raise ValueError("n_categories and products_per_category must be >= 1")
    rng = random.Random(seed)
    schema = catalog_schema()
    if with_price_bounds:
        schema.add_bound("Catalog", "Price", lower=0)
    database = Database(schema)
    categories: List[str] = []
    grand_total = 0
    for category_index in range(n_categories):
        word = CATEGORY_WORDS[category_index % len(CATEGORY_WORDS)]
        category = f"{word}-{category_index}"
        categories.append(category)
        subtotal = 0
        for product_index in range(products_per_category):
            product_word = PRODUCT_WORDS[
                (category_index * products_per_category + product_index)
                % len(PRODUCT_WORDS)
            ]
            item = f"{product_word} {category_index}.{product_index}"
            price = rng.randrange(99, price_scale)
            subtotal += price
            database.insert("Catalog", [category, item, KIND_PRODUCT, price])
        database.insert("Catalog", [category, f"{category} subtotal", KIND_SUBTOTAL, subtotal])
        grand_total += subtotal
    database.insert("Catalog", [TOTAL_CATEGORY, "grand total", KIND_TOTAL, grand_total])
    return CatalogWorkload(
        schema=schema,
        ground_truth=database,
        constraints=catalog_constraints(),
        categories=categories,
    )
