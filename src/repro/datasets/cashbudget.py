"""The paper's running example: cash budgets (Figures 1 and 3).

A cash budget summarises cash flows (receipts, disbursements, cash
balances) of a firm over a year.  The relational scheme is::

    CashBudget(Year : Z, Section : S, Subsection : S, Type : S, Value : Z)

with ``M_D = {CashBudget.Value}``; ``Type`` classifies each item as
``det`` (detail), ``aggr`` (aggregate of the details of its section)
or ``drv`` (derived from items of any section).

The constraints are the paper's Constraints 1-3 (Examples 3-4):

1. per section and year, sum of detail values = the aggregate value;
2. per year, net cash inflow = total cash receipts - total disbursements;
3. per year, ending cash balance = beginning cash + net cash inflow.

(The paper's Constraint 3 text contains the typo "net cash balance";
the intended subsection, consistent with Example 1(d) and Figure 3, is
"net cash inflow" and that is what we encode.)

This module provides the exact paper instances -- the consistent
ground truth of Figure 1 and the acquired instance of Figure 3 with
its single recognition error (total cash receipts 2003 read as 250
instead of 220) -- plus a seeded generator of random multi-year cash
budgets for the benchmark sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.constraints.constraint import AggregateConstraint
from repro.constraints.parser import parse_constraints
from repro.relational.database import Database
from repro.relational.domains import Domain
from repro.relational.schema import DatabaseSchema, RelationSchema

#: One logical row of a cash budget: (year, section, subsection, type, value).
CashBudgetRow = PyTuple[int, str, str, str, int]

SECTION_RECEIPTS = "Receipts"
SECTION_DISBURSEMENTS = "Disbursements"
SECTION_BALANCE = "Balance"

TYPE_DETAIL = "det"
TYPE_AGGREGATE = "aggr"
TYPE_DERIVED = "drv"

#: Subsection -> type classification of the running example (the
#: "classification information" of the extraction metadata, Section 6.2).
CLASSIFICATION: Dict[str, str] = {
    "beginning cash": TYPE_DERIVED,
    "cash sales": TYPE_DETAIL,
    "receivables": TYPE_DETAIL,
    "total cash receipts": TYPE_AGGREGATE,
    "payment of accounts": TYPE_DETAIL,
    "capital expenditure": TYPE_DETAIL,
    "long-term financing": TYPE_DETAIL,
    "total disbursements": TYPE_AGGREGATE,
    "net cash inflow": TYPE_DERIVED,
    "ending cash balance": TYPE_DERIVED,
}

#: Subsection -> section of the running example.
SECTION_OF: Dict[str, str] = {
    "beginning cash": SECTION_RECEIPTS,
    "cash sales": SECTION_RECEIPTS,
    "receivables": SECTION_RECEIPTS,
    "total cash receipts": SECTION_RECEIPTS,
    "payment of accounts": SECTION_DISBURSEMENTS,
    "capital expenditure": SECTION_DISBURSEMENTS,
    "long-term financing": SECTION_DISBURSEMENTS,
    "total disbursements": SECTION_DISBURSEMENTS,
    "net cash inflow": SECTION_BALANCE,
    "ending cash balance": SECTION_BALANCE,
}

#: Display order of the ten subsections of one cash budget.
SUBSECTION_ORDER: List[str] = [
    "beginning cash",
    "cash sales",
    "receivables",
    "total cash receipts",
    "payment of accounts",
    "capital expenditure",
    "long-term financing",
    "total disbursements",
    "net cash inflow",
    "ending cash balance",
]

CASH_BUDGET_CONSTRAINT_DSL = """
# Aggregation functions of Example 2.
function chi1(x, y, z) = sum(Value) from CashBudget
    where Section = $x and Year = $y and Type = $z

function chi2(x, y) = sum(Value) from CashBudget
    where Year = $x and Subsection = $y

# Constraint 1 (Example 3): per section and year, detail sum = aggregate.
constraint detail_vs_aggregate:
    CashBudget(y, x, _, _, _) =>
        chi1(x, y, 'det') - chi1(x, y, 'aggr') = 0

# Constraint 2 (Example 4): net cash inflow = receipts - disbursements.
constraint net_cash_inflow:
    CashBudget(x, _, _, _, _) =>
        chi2(x, 'net cash inflow')
        - chi2(x, 'total cash receipts')
        + chi2(x, 'total disbursements') = 0

# Constraint 3 (Example 4): ending balance = beginning cash + net inflow.
constraint ending_cash_balance:
    CashBudget(x, _, _, _, _) =>
        chi2(x, 'ending cash balance')
        - chi2(x, 'beginning cash')
        - chi2(x, 'net cash inflow') = 0
"""

#: Extension (not in the paper's constraint list, but implied by the data):
#: each year's beginning cash equals the previous year's ending balance.
#: Usable only when consecutive years are both present.
CROSS_YEAR_CONSTRAINT_DSL_TEMPLATE = """
constraint carry_over_{prev}_{next}:
    CashBudget({prev}, _, _, _, _), CashBudget({next}, _, _, _, _) =>
        chi2({next}, 'beginning cash') - chi2({prev}, 'ending cash balance') = 0
"""


def cash_budget_schema() -> DatabaseSchema:
    """The database scheme of Example 2 with ``M_D = {CashBudget.Value}``."""
    relation = RelationSchema.build(
        "CashBudget",
        [
            ("Year", Domain.INTEGER),
            ("Section", Domain.STRING),
            ("Subsection", Domain.STRING),
            ("Type", Domain.STRING),
            ("Value", Domain.INTEGER),
        ],
        key=("Year", "Subsection"),
    )
    return DatabaseSchema([relation], measure_attributes=[("CashBudget", "Value")])


def cash_budget_constraints(
    *, cross_year_pairs: Sequence[PyTuple[int, int]] = ()
) -> List[AggregateConstraint]:
    """Constraints 1-3, optionally extended with cross-year carry-over."""
    text = CASH_BUDGET_CONSTRAINT_DSL
    for previous_year, next_year in cross_year_pairs:
        text += CROSS_YEAR_CONSTRAINT_DSL_TEMPLATE.format(
            prev=previous_year, next=next_year
        )
    _, constraints = parse_constraints(text)
    return constraints


# ---------------------------------------------------------------------------
# The paper's exact instances
# ---------------------------------------------------------------------------

#: Figure 1, year 2003 (correct values).
_PAPER_2003: List[PyTuple[str, int]] = [
    ("beginning cash", 20),
    ("cash sales", 100),
    ("receivables", 120),
    ("total cash receipts", 220),
    ("payment of accounts", 120),
    ("capital expenditure", 0),
    ("long-term financing", 40),
    ("total disbursements", 160),
    ("net cash inflow", 60),
    ("ending cash balance", 80),
]

#: Figure 1, year 2004 (correct values).
_PAPER_2004: List[PyTuple[str, int]] = [
    ("beginning cash", 80),
    ("cash sales", 100),
    ("receivables", 100),
    ("total cash receipts", 200),
    ("payment of accounts", 130),
    ("capital expenditure", 40),
    ("long-term financing", 20),
    ("total disbursements", 190),
    ("net cash inflow", 10),
    ("ending cash balance", 90),
]


def paper_rows(*, acquired: bool = False) -> List[CashBudgetRow]:
    """The twenty rows of the running example, in Figure 3 order.

    With ``acquired=True`` the single symbol-recognition error of the
    paper is applied: *total cash receipts* for 2003 becomes 250.
    """
    rows: List[CashBudgetRow] = []
    for year, items in ((2003, _PAPER_2003), (2004, _PAPER_2004)):
        for subsection, value in items:
            if acquired and year == 2003 and subsection == "total cash receipts":
                value = 250
            rows.append(
                (year, SECTION_OF[subsection], subsection,
                 CLASSIFICATION[subsection], value)
            )
    return rows


def _database_from_rows(rows: Sequence[CashBudgetRow]) -> Database:
    database = Database(cash_budget_schema())
    for row in rows:
        database.insert("CashBudget", list(row))
    return database


def paper_ground_truth() -> Database:
    """The consistent instance of Figure 1 (both years, correct values)."""
    return _database_from_rows(paper_rows(acquired=False))


def paper_acquired_instance() -> Database:
    """The acquired instance of Figure 3 (250 instead of 220 for 2003)."""
    return _database_from_rows(paper_rows(acquired=True))


# ---------------------------------------------------------------------------
# Seeded generator
# ---------------------------------------------------------------------------


@dataclass
class CashBudgetWorkload:
    """A generated cash-budget workload with known ground truth."""

    schema: DatabaseSchema
    ground_truth: Database
    constraints: List[AggregateConstraint]
    rows: List[CashBudgetRow]
    years: List[int]

    def fresh_copy(self) -> Database:
        """A mutable copy of the ground truth (e.g. for error injection)."""
        return self.ground_truth.copy()


def generate_cash_budget(
    n_years: int = 2,
    *,
    first_year: int = 2003,
    seed: int = 0,
    value_scale: int = 100,
    with_cross_year: bool = False,
) -> CashBudgetWorkload:
    """Generate a consistent multi-year cash budget.

    Detail values are drawn uniformly from ``[0, 4 * value_scale]``;
    aggregates and derived items are computed so every constraint holds
    exactly, and consecutive years chain their balances (this year's
    beginning cash = last year's ending balance), matching the shape of
    the paper's Figure 1 data.
    """
    if n_years < 1:
        raise ValueError("n_years must be >= 1")
    rng = random.Random(seed)
    rows: List[CashBudgetRow] = []
    years = [first_year + offset for offset in range(n_years)]
    beginning_cash = rng.randrange(0, 2 * value_scale)
    for year in years:
        cash_sales = rng.randrange(0, 4 * value_scale)
        receivables = rng.randrange(0, 4 * value_scale)
        total_receipts = cash_sales + receivables
        payments = rng.randrange(0, 3 * value_scale)
        capital_expenditure = rng.randrange(0, 2 * value_scale)
        long_term = rng.randrange(0, 2 * value_scale)
        total_disbursements = payments + capital_expenditure + long_term
        net_inflow = total_receipts - total_disbursements
        ending = beginning_cash + net_inflow
        values = {
            "beginning cash": beginning_cash,
            "cash sales": cash_sales,
            "receivables": receivables,
            "total cash receipts": total_receipts,
            "payment of accounts": payments,
            "capital expenditure": capital_expenditure,
            "long-term financing": long_term,
            "total disbursements": total_disbursements,
            "net cash inflow": net_inflow,
            "ending cash balance": ending,
        }
        for subsection in SUBSECTION_ORDER:
            rows.append(
                (year, SECTION_OF[subsection], subsection,
                 CLASSIFICATION[subsection], values[subsection])
            )
        beginning_cash = ending

    cross_pairs: List[PyTuple[int, int]] = []
    if with_cross_year:
        cross_pairs = [(a, b) for a, b in zip(years, years[1:])]
    constraints = cash_budget_constraints(cross_year_pairs=cross_pairs)
    schema = cash_budget_schema()
    return CashBudgetWorkload(
        schema=schema,
        ground_truth=_database_from_rows(rows),
        constraints=constraints,
        rows=rows,
        years=years,
    )
