"""Command-line interface: ``python -m repro <command>``.

A DART *project directory* holds the acquisition designer's metadata
plus the acquired data:

- ``schema.txt``       -- relational schema + measure attributes
  (format of :mod:`repro.relational.schematext`);
- ``constraints.dsl``  -- aggregation functions + steady aggregate
  constraints (format of :mod:`repro.constraints.parser`);
- ``<Relation>.csv``   -- one CSV per relation (header = attributes).

Commands:

- ``check <dir>``   -- report D |= AC and list every violation;
- ``repair <dir>``  -- compute a card-minimal repair, print the
  suggested updates (in the validation interface's involvement order),
  optionally write the repaired instance with ``--output``; on an
  unrepairable instance ``--explain-infeasible`` extracts an IIS and
  names the exact conflicting constraints and pins, while
  ``--on-infeasible relax`` returns the least-wrong RELAXED repair
  together with its violation report (``--violation-report`` dumps it
  as JSON);
- ``batch <dir> [<dir> ...]`` -- repair many project directories as
  one batch: ``--workers`` fans them out over a process pool,
  ``--timeout`` budgets each solve (anytime: an expired budget yields
  an approximate repair with a certified gap, else a fallback to the
  alternate MILP backend), ``--cache`` sizes the LRU solve cache,
  ``--checkpoint`` journals completed tasks so an interrupted run
  resumes instead of restarting, ``--store`` backs every cache with a
  durable result store so duplicate documents are free across runs,
  and the run ends with the batch report (solves, cache hits, nodes,
  pivots, wall time);
- ``serve <dir> [<dir> ...]`` -- run the corpus through the repair
  *service* (:mod:`repro.repair.service`): durable store, per-backend
  circuit breakers, checkpoint-journal crash recovery
  (``require_certified`` replay), graceful drain on SIGTERM, and a
  health/integrity summary at the end;
- ``answers <dir> --function f --args a,b`` -- consistent query
  answering: the glb/lub of an aggregation function over all
  card-minimal repairs;
- ``demo``          -- run the paper's running example end to end;
- ``init <dir>``    -- scaffold a project directory with the running
  example's metadata and the (inconsistent) Figure 3 data.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.constraints.parser import parse_constraints
from repro.diagnostics import SolveTimeoutError
from repro.milp.cache import DEFAULT_CACHE_SIZE
from repro.milp.solver import DEFAULT_BACKEND, available_backends
from repro.relational.csvio import dump_database, load_database
from repro.relational.schematext import dump_schema, load_schema
from repro.milp.iis import IISError
from repro.repair.batch import RepairTask, repair_batch
from repro.repair.cqa import consistent_aggregate_answer
from repro.repair.engine import (
    HEURISTIC_BACKEND,
    ON_INFEASIBLE_MODES,
    STRATEGIES,
    RepairEngine,
    UnrepairableError,
)
from repro.repair.interactive import involvement_order
from repro.repair.translation import RepairObjective


class CliError(SystemExit):
    """Raised (as an exit) for user errors; carries exit code 2."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}", file=sys.stderr)
        super().__init__(2)


def _load_project(directory: str):
    root = Path(directory)
    schema_path = root / "schema.txt"
    constraints_path = root / "constraints.dsl"
    if not schema_path.exists():
        raise CliError(f"{schema_path} not found")
    if not constraints_path.exists():
        raise CliError(f"{constraints_path} not found")
    schema = load_schema(schema_path)
    functions, constraints = parse_constraints(
        constraints_path.read_text(encoding="utf-8")
    )
    database = load_database(schema, root)
    if database.total_tuples() == 0:
        raise CliError(f"no data rows found in {root} (expected <Relation>.csv)")
    return schema, functions, constraints, database


def cmd_check(args: argparse.Namespace) -> int:
    _, _, constraints, database = _load_project(args.directory)
    engine = RepairEngine(database, constraints)
    violations = engine.violations()
    print(f"{database.total_tuples()} tuples, "
          f"{len(engine.ground_system)} ground constraints")
    if not violations:
        print("CONSISTENT: the instance satisfies all constraints")
        return 0
    print(f"INCONSISTENT: {len(violations)} violated ground constraint(s)")
    for violation in violations:
        print(f"  {violation}")
    return 1


def _parse_pins(specs: Optional[Sequence[str]]) -> Dict:
    """Parse repeated ``--pin Relation:tuple_id:Attribute=value`` flags."""
    pins: Dict = {}
    for spec in specs or []:
        head, eq, raw_value = spec.partition("=")
        parts = head.split(":")
        if not eq or len(parts) != 3:
            raise CliError(
                f"bad --pin {spec!r} (expected Relation:tuple_id:Attribute=value)"
            )
        relation, raw_id, attribute = parts
        try:
            pins[(relation, int(raw_id), attribute)] = float(raw_value)
        except ValueError:
            raise CliError(f"bad --pin {spec!r}: tuple_id must be an integer "
                           f"and value a number")
    return pins


def cmd_repair(args: argparse.Namespace) -> int:
    _, _, constraints, database = _load_project(args.directory)
    objective = RepairObjective(args.objective)
    pins = _parse_pins(args.pin)
    engine = RepairEngine(
        database,
        constraints,
        objective=objective,
        backend=args.backend,
        presolve=not args.no_presolve,
        on_infeasible=args.on_infeasible,
        strategy=args.strategy,
        misrepair_budget=args.misrepair_budget,
        certify=args.certify,
    )
    if args.explain_infeasible:
        try:
            conflict = engine.explain_infeasible(
                pins=pins or None, time_limit=args.time_limit
            )
        except IISError as exc:
            print(f"repairable: {exc}")
            return 0
        print(f"INFEASIBLE: {conflict.summary()}")
        for line in conflict.describe().splitlines()[1:]:
            print(line)
        return 2
    if engine.is_consistent() and not pins:
        print("already consistent; nothing to repair")
        return 0
    try:
        outcome = engine.find_card_minimal_repair(
            pins=pins or None, time_limit=args.time_limit
        )
    except SolveTimeoutError as exc:
        raise CliError(f"time limit expired with no feasible repair: {exc}")
    except UnrepairableError as exc:
        conflict = getattr(exc, "conflict", None)
        if conflict is not None:
            print("infeasible system:", file=sys.stderr)
            for line in conflict.describe().splitlines():
                print(f"  {line}", file=sys.stderr)
        raise CliError(f"unrepairable: {exc}")
    print(f"{len(engine.violations())} violation(s); "
          f"suggested repair changes {outcome.cardinality} value(s):")
    if outcome.relaxed:
        print("  RELAXED: no exact repair exists; this one minimises the "
              "violations it leaves behind:")
        for line in outcome.violations.describe().splitlines():
            print(f"  {line}")
    if outcome.approximate:
        print(f"  (anytime result: budget expired; objective is within "
              f"{outcome.gap:g} of the exact optimum)")
    ordered = involvement_order(engine.ground_system, outcome.repair.updates)
    for update in ordered:
        print(f"  {update}")
    if outcome.certificate is not None:
        print(f"  certificate: {outcome.certificate}")
    if outcome.cascade is not None:
        report = outcome.cascade
        print(f"  cascade: {report.resolved_without_milp}/{report.n_violations} "
              f"violation(s) resolved without the MILP "
              f"({'exact residue solved' if report.milp_invoked else 'MILP never invoked'})")
        for tier_stats in report.tiers:
            print(f"    {tier_stats.tier}: {tier_stats.resolved}/"
                  f"{tier_stats.attempted} resolved, "
                  f"{tier_stats.fallthroughs} passed on")
    if args.show_milp:
        if outcome.translation is None:
            print("\n(no MILP instance: the cascade repaired every violation "
                  "without invoking the MILP)")
        else:
            print("\nMILP instance (Figure 4 layout):")
            print(outcome.translation.format_like_figure4())
    if args.export_mps:
        if outcome.translation is None:
            raise CliError(
                "--export-mps: no MILP instance was built (the cascade "
                "repaired every violation without it); rerun with "
                "--strategy exact to force a translation"
            )
        from repro.milp.mps import write_mps

        write_mps(outcome.translation.model, args.export_mps)
        print(f"MILP instance exported to {args.export_mps} (free-form MPS)")
    if args.violation_report:
        import json

        payload = (
            outcome.violations.as_dict()
            if outcome.violations is not None
            else {"n_violated": 0, "total_violation": 0.0, "violations": []}
        )
        payload["status"] = outcome.status
        Path(args.violation_report).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"violation report written to {args.violation_report}")
    if args.output:
        repaired = engine.apply(outcome.repair)
        written = dump_database(repaired, args.output)
        print(f"repaired instance written to {args.output} "
              f"({len(written)} file(s))")
    if args.stats:
        print("\nsolve statistics:")
        for record in engine.solve_stats:
            print(f"  {record}")
        certified = sum(1 for s in engine.solve_stats if s.certified is True)
        degraded = sum(1 for s in engine.solve_stats if s.degraded)
        rejected = sum(s.cuts_rejected for s in engine.solve_stats)
        print(f"  certification: {certified}/{len(engine.solve_stats)} "
              f"solve(s) certified, {degraded} ladder-degraded, "
              f"{rejected} cut(s) rejected")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    tasks = []
    for directory in args.directories:
        _, _, constraints, database = _load_project(directory)
        tasks.append(
            RepairTask(
                database=database,
                constraints=constraints,
                name=str(directory),
                objective=RepairObjective(args.objective),
            )
        )
    report = repair_batch(
        tasks,
        workers=args.workers,
        timeout=args.timeout,
        cache_size=args.cache,
        store=args.store,
        backend=args.backend,
        checkpoint=args.checkpoint,
        resume=not args.no_resume,
        max_task_retries=args.max_task_retries,
        on_infeasible=args.on_infeasible,
        strategy=args.strategy,
        misrepair_budget=args.misrepair_budget,
        certify=args.certify,
    )
    for result in report.results:
        line = f"{result.name}: {result.status}"
        if result.status == "repaired":
            line += f" ({result.cardinality} value(s) changed)"
        if result.status == "relaxed":
            line += (f" ({result.cardinality} value(s) changed, "
                     f"{len(result.violations or [])} constraint(s) "
                     f"left violated)")
        if result.approximate:
            line += f" [anytime: within {result.gap:g} of optimal]"
        if result.fallback_taken:
            line += f" [fell back to {result.backend_used}]"
        if result.certified is False or result.status == "uncertified":
            line += " [UNCERTIFIED]"
        if any(s.degraded for s in result.stats):
            line += " [ladder-degraded]"
        if result.resumed:
            line += " [resumed from checkpoint]"
        if result.error and not result.ok:
            line += f" -- {result.error}"
        print(line)
        if args.stats:
            for record in result.stats:
                print(f"    {record}")
    if args.output_dir:
        out_root = Path(args.output_dir)
        for task, result in zip(tasks, report.results):
            if result.repair is None:
                continue
            from repro.repair.updates import apply_repair

            target = out_root / Path(task.name).name
            dump_database(apply_repair(task.database, result.repair), target)
        print(f"repaired instances written under {out_root}")
    print(report.summary())
    return 0 if report.n_failed == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.repair.service import RepairService, ServiceConfig

    tasks = []
    for directory in args.directories:
        _, _, constraints, database = _load_project(directory)
        tasks.append(
            RepairTask(
                database=database,
                constraints=constraints,
                name=str(directory),
                objective=RepairObjective(args.objective),
            )
        )
    config = ServiceConfig(
        store=args.store,
        checkpoint=args.checkpoint,
        backend=args.backend,
        timeout=args.timeout,
        cache_size=args.cache,
        on_infeasible=args.on_infeasible,
        strategy=args.strategy,
        misrepair_budget=args.misrepair_budget,
        certify=args.certify,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        max_task_retries=args.max_task_retries,
    )
    with RepairService(config) as service:
        service.install_signal_handlers()
        report = service.run(tasks, resume=not args.no_resume)
        for result in report.results:
            line = f"{result.name}: {result.status}"
            if result.status == "repaired":
                line += f" ({result.cardinality} value(s) changed)"
            if result.fallback_taken:
                line += f" [rerouted to {result.backend_used}]"
            if result.resumed:
                line += " [replayed from journal]"
            if result.error and not result.ok:
                line += f" -- {result.error}"
            print(line)
        health = service.health()
        print(report.summary())
        breakers = health["breakers"] or {}
        if breakers:
            rendered = ", ".join(f"{b}={s}" for b, s in breakers.items())
            print(f"breakers: {rendered}")
        if health["store"] is not None:
            store_info = health["store"]
            print(
                f"store: {store_info['rows']} row(s), "
                f"{store_info['hits']} hit(s) / {store_info['misses']} miss(es), "
                f"{store_info['corrupt_evictions']} corrupt eviction(s), "
                f"{store_info['corrupt_recoveries']} rebuild(s)"
            )
        if args.integrity_scan:
            integrity = service.integrity_report()
            if integrity is None:
                print("integrity: no store configured")
            else:
                print(
                    f"integrity: {integrity.rows_checked} row(s) checked, "
                    f"{integrity.rows_evicted} evicted, "
                    f"sqlite={integrity.sqlite_verdict} "
                    f"({'OK' if integrity.ok else 'REPAIRED'})"
                )
        if service.draining:
            print("drained: stopped on request; pending manifest written")
    incomplete = report.n_tasks < len(tasks)
    return 0 if report.n_failed == 0 and not incomplete else 1


def cmd_answers(args: argparse.Namespace) -> int:
    _, functions, constraints, database = _load_project(args.directory)
    if args.function not in functions:
        raise CliError(
            f"unknown aggregation function {args.function!r}; "
            f"available: {', '.join(sorted(functions))}"
        )
    function = functions[args.function]
    raw_arguments = [a for a in (args.args or "").split(",") if a != ""]
    if len(raw_arguments) != function.arity:
        raise CliError(
            f"{args.function} expects {function.arity} argument(s), "
            f"got {len(raw_arguments)}"
        )
    arguments: List[Any] = []
    for raw in raw_arguments:
        try:
            arguments.append(int(raw))
        except ValueError:
            try:
                arguments.append(float(raw))
            except ValueError:
                arguments.append(raw)
    engine = RepairEngine(database, constraints)
    answer = consistent_aggregate_answer(engine, function, arguments)
    print(f"{args.function}({', '.join(map(str, arguments))})")
    print(f"  value on the acquired instance: {answer.acquired_value:g}")
    print(f"  over all card-minimal repairs:  {answer}")
    return 0 if answer.is_consistent else 1


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.datasets import (
        cash_budget_constraints,
        paper_acquired_instance,
        paper_ground_truth,
    )
    from repro.repair.interactive import OracleOperator, ValidationLoop

    database = paper_acquired_instance()
    engine = RepairEngine(database, cash_budget_constraints())
    print("the paper's running example (Figure 3, acquired with one error):")
    for violation in engine.violations():
        print(f"  violated: {violation}")
    outcome = engine.find_card_minimal_repair()
    print(f"card-minimal repair: {outcome.repair}")
    operator = OracleOperator(paper_ground_truth(), acquired=database)
    session = ValidationLoop(engine, operator).run()
    print(f"validation: accepted after {session.iterations} iteration(s), "
          f"{session.values_inspected} value(s) inspected")
    return 0


def cmd_init(args: argparse.Namespace) -> int:
    from repro.datasets import paper_acquired_instance
    from repro.datasets.cashbudget import CASH_BUDGET_CONSTRAINT_DSL

    root = Path(args.directory)
    root.mkdir(parents=True, exist_ok=True)
    database = paper_acquired_instance()
    (root / "schema.txt").write_text(dump_schema(database.schema), encoding="utf-8")
    (root / "constraints.dsl").write_text(
        CASH_BUDGET_CONSTRAINT_DSL.strip() + "\n", encoding="utf-8"
    )
    dump_database(database, root)
    print(f"initialised DART project in {root} with the running example")
    print("try:  python -m repro check " + str(root))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DART: data acquisition and repairing tool (EDBT 2006 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_check = subparsers.add_parser("check", help="check D |= AC")
    p_check.add_argument("directory")
    p_check.set_defaults(func=cmd_check)

    p_repair = subparsers.add_parser("repair", help="compute a minimal repair")
    p_repair.add_argument("directory")
    p_repair.add_argument(
        "--objective",
        choices=[o.value for o in RepairObjective],
        default=RepairObjective.CARDINALITY.value,
        help="minimality semantics (default: the paper's card-minimality)",
    )
    p_repair.add_argument(
        "--output", help="directory to write the repaired CSVs into"
    )
    p_repair.add_argument(
        "--show-milp", action="store_true",
        help="print the MILP instance in the paper's Figure 4 layout",
    )
    p_repair.add_argument(
        "--export-mps",
        help="write the MILP instance to this path as free-form MPS",
    )
    p_repair.add_argument(
        "--backend",
        choices=available_backends() + [HEURISTIC_BACKEND],
        default=DEFAULT_BACKEND,
        help="MILP backend, or 'heuristic' for the greedy approximate "
             "repair (verified but not necessarily minimal) "
             "(default: %(default)s)",
    )
    p_repair.add_argument(
        "--strategy",
        choices=list(STRATEGIES),
        default="exact",
        help="repair strategy: 'exact' always solves the MILP; 'cascade' "
             "tries confusion-matrix inversion, equality back-solving and "
             "a certified greedy tier first, invoking the MILP only on "
             "the residue (same card-minimality guarantee) "
             "(default: %(default)s)",
    )
    p_repair.add_argument(
        "--misrepair-budget", type=int, default=0, metavar="N",
        help="cascade only: accept up to N ambiguous closed-form fixes "
             "per tier instead of falling through to the next tier "
             "(default: %(default)s, i.e. any ambiguity falls through)",
    )
    p_repair.add_argument(
        "--certify", action=argparse.BooleanOptionalAction, default=True,
        help="verify the repair in exact rational arithmetic against the "
             "grounded constraints (and let the numerics governor "
             "re-solve down its degradation ladder on failure); "
             "--no-certify skips the check (default: on)",
    )
    p_repair.add_argument(
        "--no-presolve", action="store_true",
        help="disable the MILP presolve pass on the bnb backends "
             "(escape hatch; never changes the repair's optimality)",
    )
    p_repair.add_argument(
        "--stats", action="store_true",
        help="print per-solve statistics (wall time, nodes, pivots, "
             "presolve reductions, warm-start hits, heuristic seeding)",
    )
    p_repair.add_argument(
        "--time-limit", type=float, default=None,
        help="wall-clock solve budget in seconds; on expiry the best "
             "incumbent is returned as an approximate repair with a "
             "certified optimality gap (anytime solving)",
    )
    p_repair.add_argument(
        "--pin", action="append", metavar="REL:ID:ATTR=VALUE",
        help="operator pin: fix Relation[tuple_id].Attribute to VALUE "
             "(repeatable; pins are hard constraints and are never relaxed)",
    )
    p_repair.add_argument(
        "--on-infeasible",
        choices=list(ON_INFEASIBLE_MODES),
        default="raise",
        help="what to do when no repair exists: 'raise' fails with the "
             "historical message, 'explain' extracts an IIS and names the "
             "conflicting constraints/pins, 'relax' returns the RELAXED "
             "repair with the lexicographically smallest violations "
             "(default: %(default)s)",
    )
    p_repair.add_argument(
        "--explain-infeasible", action="store_true",
        help="do not repair; extract an irreducible infeasible subsystem "
             "and print the conflicting ground constraints, pins and "
             "cells (exit 2 when infeasible, 0 when repairable)",
    )
    p_repair.add_argument(
        "--violation-report", metavar="PATH",
        help="write the relaxation's violation report to PATH as JSON "
             "(empty report when the repair is exact)",
    )
    p_repair.set_defaults(func=cmd_repair)

    p_batch = subparsers.add_parser(
        "batch", help="repair many project directories as one parallel batch"
    )
    p_batch.add_argument("directories", nargs="+")
    p_batch.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: run sequentially in-process)",
    )
    p_batch.add_argument(
        "--timeout", type=float, default=None,
        help="per-task solve deadline in seconds; a timed-out task is "
             "retried once on the alternate MILP backend",
    )
    p_batch.add_argument(
        "--cache", type=int, default=DEFAULT_CACHE_SIZE,
        help="LRU solve-cache size per worker, 0 disables "
             "(default: %(default)s)",
    )
    p_batch.add_argument(
        "--backend",
        choices=available_backends(),
        default=DEFAULT_BACKEND,
        help="primary MILP backend (default: %(default)s)",
    )
    p_batch.add_argument(
        "--objective",
        choices=[o.value for o in RepairObjective],
        default=RepairObjective.CARDINALITY.value,
        help="minimality semantics (default: the paper's card-minimality)",
    )
    p_batch.add_argument(
        "--strategy",
        choices=list(STRATEGIES),
        default="exact",
        help="repair strategy for every task (a task's own strategy "
             "field overrides); 'cascade' resolves most violations "
             "without the MILP (default: %(default)s)",
    )
    p_batch.add_argument(
        "--misrepair-budget", type=int, default=0, metavar="N",
        help="cascade only: per-tier ambiguity budget "
             "(default: %(default)s)",
    )
    p_batch.add_argument(
        "--certify", action=argparse.BooleanOptionalAction, default=True,
        help="exact-arithmetic certification of every task's repair; "
             "uncertified or ladder-degraded results are never written "
             "to the checkpoint journal (default: on)",
    )
    p_batch.add_argument(
        "--stats", action="store_true",
        help="print per-solve statistics for every document",
    )
    p_batch.add_argument(
        "--output-dir",
        help="directory to write each repaired instance into "
             "(one subdirectory per project)",
    )
    p_batch.add_argument(
        "--checkpoint",
        help="journal completed tasks to this file (append + fsync); "
             "re-running against an existing journal resumes where the "
             "interrupted run stopped",
    )
    p_batch.add_argument(
        "--store",
        help="durable result store (SQLite) backing every solve cache; "
             "certified solutions persist across runs, so re-repairing "
             "an unchanged corpus does zero MILP solves",
    )
    p_batch.add_argument(
        "--no-resume", action="store_true",
        help="ignore an existing checkpoint journal and start over "
             "(the journal is truncated)",
    )
    p_batch.add_argument(
        "--max-task-retries", type=int, default=2,
        help="crash retries per task before it is quarantined "
             "(default: %(default)s)",
    )
    p_batch.add_argument(
        "--on-infeasible",
        choices=list(ON_INFEASIBLE_MODES),
        default="raise",
        help="per-task behaviour when no repair exists: 'relax' turns "
             "infeasible tasks into RELAXED results carrying their "
             "violation report (default: %(default)s)",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_serve = subparsers.add_parser(
        "serve",
        help="run a corpus through the durable repair service "
             "(store + breakers + journal recovery + graceful drain)",
    )
    p_serve.add_argument("directories", nargs="+")
    p_serve.add_argument(
        "--store",
        help="durable result store (SQLite); certified solutions "
             "persist across service restarts",
    )
    p_serve.add_argument(
        "--checkpoint",
        help="checkpoint journal; a restarted service replays certified "
             "results and re-solves only the uncertified tail",
    )
    p_serve.add_argument(
        "--backend",
        choices=available_backends(),
        default=DEFAULT_BACKEND,
        help="primary MILP backend; a sick backend's circuit breaker "
             "shifts traffic to the alternate (default: %(default)s)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-task solve deadline in seconds",
    )
    p_serve.add_argument(
        "--cache", type=int, default=DEFAULT_CACHE_SIZE,
        help="in-memory LRU tier size in front of the store "
             "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--objective",
        choices=[o.value for o in RepairObjective],
        default=RepairObjective.CARDINALITY.value,
        help="minimality semantics (default: the paper's card-minimality)",
    )
    p_serve.add_argument(
        "--strategy",
        choices=list(STRATEGIES),
        default="exact",
        help="repair strategy (default: %(default)s)",
    )
    p_serve.add_argument(
        "--misrepair-budget", type=int, default=0, metavar="N",
        help="cascade only: per-tier ambiguity budget (default: %(default)s)",
    )
    p_serve.add_argument(
        "--certify", action=argparse.BooleanOptionalAction, default=True,
        help="exact-arithmetic certification; only certified results "
             "enter the store or the journal (default: on)",
    )
    p_serve.add_argument(
        "--on-infeasible",
        choices=list(ON_INFEASIBLE_MODES),
        default="raise",
        help="per-task behaviour when no repair exists "
             "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive backend failures before its circuit breaker "
             "opens (default: %(default)s)",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open breaker waits before a half-open probe "
             "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--max-task-retries", type=int, default=2,
        help="crash retries per backend before it counts as a backend "
             "failure (default: %(default)s)",
    )
    p_serve.add_argument(
        "--no-resume", action="store_true",
        help="ignore an existing checkpoint journal and start over",
    )
    p_serve.add_argument(
        "--integrity-scan", action="store_true",
        help="run the store's row-by-row integrity scan after the corpus "
             "and print the verdict",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_answers = subparsers.add_parser(
        "answers", help="consistent query answering over card-minimal repairs"
    )
    p_answers.add_argument("directory")
    p_answers.add_argument("--function", required=True,
                           help="aggregation function name from constraints.dsl")
    p_answers.add_argument("--args", default="",
                           help="comma-separated ground arguments")
    p_answers.set_defaults(func=cmd_answers)

    p_demo = subparsers.add_parser("demo", help="run the paper's running example")
    p_demo.set_defaults(func=cmd_demo)

    p_init = subparsers.add_parser(
        "init", help="scaffold a project directory with the running example"
    )
    p_init.add_argument("directory")
    p_init.set_defaults(func=cmd_init)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
