"""String similarity, dictionary repair (msi) and t-norms.

The wrapper scores the match between a table cell and a row-pattern
cell.  For lexical-domain cells the score is the best similarity
between the cell text and any lexical item of the domain; the item
achieving it is the *most similar item* (msi), and binding the
instance to the msi instead of the raw text is the wrapper-level
"repair" of misspelled strings (Section 6.2).

Similarity is normalised Levenshtein::

    sim(a, b) = 1 - dist(a, b) / (len(a) + len(b))

This normalisation makes the paper's Example 13 concrete: with the
OCR misreading "bgnning cesh" of "beginning cash" the distance is 3
over combined length 26, giving a score of ~0.885 -- the "90%" cell
score of Figure 7(b) (an exact match scores 100%).

Row scores combine cell scores with a *t-norm* (the paper leaves the
choice open; the A3 ablation bench compares them):

- product: ``prod(s_i)``;
- minimum (Gödel): ``min(s_i)``;
- Łukasiewicz: ``max(0, sum(s_i) - (n - 1))``.
"""

from __future__ import annotations

import enum
import functools
import math
from typing import Iterable, List, Optional, Sequence, Tuple as PyTuple


def levenshtein(a: str, b: str, upper_bound: Optional[int] = None) -> int:
    """Classic edit distance (substitution, insertion, deletion = 1).

    With *upper_bound* the computation stops early once the distance
    provably exceeds it and returns ``upper_bound + 1`` -- the msi
    search uses this to skip hopeless dictionary items without
    changing any result.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    if upper_bound is not None and len(a) - len(b) > upper_bound:
        return upper_bound + 1
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        row_minimum = i
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            value = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
            current.append(value)
            if value < row_minimum:
                row_minimum = value
        if upper_bound is not None and row_minimum > upper_bound:
            return upper_bound + 1
        previous = current
    return previous[-1]


def similarity(a: str, b: str, *, case_sensitive: bool = False) -> float:
    """Normalised similarity in [0, 1]: ``1 - dist / (|a| + |b|)``."""
    if not case_sensitive:
        a, b = a.lower(), b.lower()
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / (len(a) + len(b))


def most_similar_item(
    text: str,
    items: Sequence[str],
    *,
    minimum_score: float = 0.0,
) -> PyTuple[Optional[str], float]:
    """The msi: the dictionary item most similar to *text* and its score.

    Returns ``(None, best_score)`` when nothing reaches
    ``minimum_score``.  Ties break toward the lexicographically first
    item for determinism.
    """
    normalized = text.lower()
    best_item: Optional[str] = None
    best_score = -1.0
    for item in sorted(items):
        candidate = item.lower()
        total_length = len(normalized) + len(candidate)
        if total_length == 0:
            score = 1.0
        else:
            if best_score > 0.0:
                # Prune: sim = 1 - d/total needs d < total*(1-best) to
                # beat the incumbent; the banded distance bails out as
                # soon as that becomes impossible.  Exact -- only the
                # work is skipped, never a better match.
                budget = int(total_length * (1.0 - best_score))
                distance = levenshtein(normalized, candidate, upper_bound=budget)
            else:
                distance = levenshtein(normalized, candidate)
            score = 1.0 - distance / total_length
        if score > best_score:
            best_item = item
            best_score = score
    if best_item is None or best_score < minimum_score:
        return None, max(best_score, 0.0)
    return best_item, best_score


class TNorm(enum.Enum):
    """T-norms available for combining cell scores into a row score."""

    PRODUCT = "product"
    MINIMUM = "minimum"
    LUKASIEWICZ = "lukasiewicz"

    def combine(self, scores: Iterable[float]) -> float:
        values = list(scores)
        if not values:
            return 1.0
        for value in values:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"t-norm input {value} outside [0, 1]")
        if self is TNorm.PRODUCT:
            return math.prod(values)
        if self is TNorm.MINIMUM:
            return min(values)
        return max(0.0, sum(values) - (len(values) - 1))
