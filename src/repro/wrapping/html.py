"""HTML table parsing (no third-party dependencies).

The wrapper consumes the HTML produced by the acquisition module, but
it must also cope with HTML from the wild (the paper points out the
extraction module doubles as a web-data extractor).  This parser is
therefore deliberately tolerant: unclosed ``<td>``/``<tr>`` tags,
mixed-case tags and attributes, whitespace noise and markup *inside*
cells (``<b>``, ``<span>``, ...) are all handled; only table structure
tags are interpreted, everything else inside a cell contributes its
text content.

The output is the same :class:`~repro.acquisition.documents.Table`
model the acquisition side uses, so round-tripping
``parse_html_tables(to_html(doc))`` preserves the logical grid -- a
property the test suite checks with hypothesis.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import List, Optional, Tuple as PyTuple

from repro.acquisition.documents import Cell, Row, Table


class HtmlTableParseError(ValueError):
    """Raised on irrecoverably malformed table markup."""


class _TableHtmlParser(HTMLParser):
    """Streaming parser collecting tables, rows and cells."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.tables: List[Table] = []
        self._rows: Optional[List[Row]] = None
        self._cells: Optional[List[Cell]] = None
        self._cell_text: Optional[List[str]] = None
        self._cell_spans: PyTuple[int, int] = (1, 1)
        self._caption: Optional[str] = None
        self._in_caption = False
        self._caption_text: List[str] = []

    # Tag handling -----------------------------------------------------

    def handle_starttag(self, tag: str, attrs) -> None:
        tag = tag.lower()
        if tag == "table":
            self._flush_table()  # nested/unclosed table: close previous
            self._rows = []
            self._caption = None
        elif tag == "caption" and self._rows is not None:
            self._in_caption = True
            self._caption_text = []
        elif tag == "tr" and self._rows is not None:
            self._flush_cell()
            self._flush_row()
            self._cells = []
        elif tag in ("td", "th") and self._rows is not None:
            if self._cells is None:
                self._cells = []  # tolerate a missing <tr>
            self._flush_cell()
            rowspan = _span_attr(attrs, "rowspan")
            colspan = _span_attr(attrs, "colspan")
            self._cell_spans = (rowspan, colspan)
            self._cell_text = []

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in ("td", "th"):
            self._flush_cell()
        elif tag == "tr":
            self._flush_cell()
            self._flush_row()
        elif tag == "caption":
            if self._in_caption:
                self._caption = "".join(self._caption_text).strip()
                self._in_caption = False
        elif tag == "table":
            self._flush_table()

    def handle_data(self, data: str) -> None:
        if self._in_caption:
            self._caption_text.append(data)
        elif self._cell_text is not None:
            self._cell_text.append(data)

    # Flush helpers -----------------------------------------------------

    def _flush_cell(self) -> None:
        if self._cell_text is None or self._cells is None:
            self._cell_text = None
            return
        text = " ".join("".join(self._cell_text).split())
        rowspan, colspan = self._cell_spans
        self._cells.append(Cell(text, rowspan=rowspan, colspan=colspan))
        self._cell_text = None
        self._cell_spans = (1, 1)

    def _flush_row(self) -> None:
        if self._cells is None or self._rows is None:
            self._cells = None
            return
        if self._cells:
            self._rows.append(Row(self._cells))
        self._cells = None

    def _flush_table(self) -> None:
        self._flush_cell()
        self._flush_row()
        if self._rows is not None and self._rows:
            self.tables.append(Table(self._rows, caption=self._caption))
        self._rows = None
        self._caption = None

    def close(self) -> None:
        super().close()
        self._flush_table()


def _span_attr(attrs, name: str) -> int:
    for attr_name, attr_value in attrs:
        if attr_name.lower() == name and attr_value:
            try:
                return max(1, int(attr_value.strip()))
            except ValueError:
                return 1
    return 1


def parse_html_tables(html_text: str) -> List[Table]:
    """All tables found in *html_text*, in document order."""
    parser = _TableHtmlParser()
    try:
        parser.feed(html_text)
        parser.close()
    except Exception as exc:  # html.parser raises rarely; normalise
        raise HtmlTableParseError(f"cannot parse HTML: {exc}") from exc
    return parser.tables
