"""The database generator (Section 6.2).

Takes the row-pattern instances the wrapper produced and builds the
database instance ``D`` the repairing module works on.  Each instance
becomes one tuple of the mapped relation:

- headline-sourced attributes take the bound value of the cell
  carrying that headline label, coerced into the attribute's domain;
- classification-sourced attributes apply a classification to the
  value extracted for another attribute (the ``Type`` column of the
  running example is implied by ``Subsection``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.relational.database import Database
from repro.relational.domains import Domain, DomainError, coerce_value
from repro.wrapping.metadata import AttributeSource, ExtractionMetadata, MetadataError
from repro.wrapping.wrapper import RowPatternInstance


class ExtractionError(ValueError):
    """Raised when an instance cannot be turned into a tuple."""


@dataclass
class GenerationReport:
    """The generated database plus per-row provenance."""

    database: Database
    inserted: int
    skipped: List[RowPatternInstance] = field(default_factory=list)


class DatabaseGenerator:
    """Row-pattern instances -> a database instance of the target scheme."""

    def __init__(self, metadata: ExtractionMetadata) -> None:
        self.metadata = metadata

    def generate(
        self,
        instances: Sequence[RowPatternInstance],
        *,
        skip_failures: bool = False,
    ) -> GenerationReport:
        """Build the database.  With ``skip_failures`` rows that cannot
        be coerced are collected instead of raising."""
        database = Database(self.metadata.schema)
        mapping = self.metadata.mapping
        relation_schema = self.metadata.schema.relation(mapping.relation)
        inserted = 0
        skipped: List[RowPatternInstance] = []
        for instance in instances:
            try:
                record = self._record_for(instance)
            except (ExtractionError, MetadataError, DomainError, KeyError) as exc:
                if skip_failures:
                    skipped.append(instance)
                    continue
                raise ExtractionError(
                    f"row {instance.row_index} of table {instance.table_index}: "
                    f"{exc}"
                ) from exc
            database.insert_dict(mapping.relation, record)
            inserted += 1
        return GenerationReport(database=database, inserted=inserted, skipped=skipped)

    def _record_for(self, instance: RowPatternInstance) -> Dict[str, Any]:
        mapping = self.metadata.mapping
        relation_schema = self.metadata.schema.relation(mapping.relation)
        record: Dict[str, Any] = {}
        # Headline-sourced attributes first...
        for attribute, source in mapping.sources.items():
            if source.headline is None:
                continue
            raw = instance.value(source.headline)
            domain = relation_schema.domain_of(attribute)
            record[attribute] = self._coerce(raw, domain, attribute)
        # ...then classification-sourced ones (they read other attributes).
        for attribute, source in mapping.sources.items():
            if source.headline is not None:
                continue
            assert source.classify_attribute is not None
            assert source.classification is not None
            if source.classify_attribute not in record:
                raise ExtractionError(
                    f"attribute {attribute!r} classifies "
                    f"{source.classify_attribute!r}, which is itself "
                    f"classification-sourced (unsupported chain)"
                )
            classification = self.metadata.classifications[source.classification]
            record[attribute] = classification.classify(
                str(record[source.classify_attribute])
            )
        return record

    @staticmethod
    def _coerce(raw: str, domain: Domain, attribute: str) -> Any:
        if domain is Domain.STRING:
            return raw
        text = raw.strip()
        try:
            return coerce_value(text, domain)
        except DomainError:
            # Last-resort digit extraction for OCR-damaged numerics; the
            # repairing module will judge the value against constraints.
            digits = "".join(ch for ch in text if ch.isdigit() or ch in "-.")
            if digits.lstrip("-").replace(".", "", 1).isdigit():
                return coerce_value(digits, domain)
            raise ExtractionError(
                f"cannot read {raw!r} as {domain} for attribute {attribute!r}"
            ) from None
