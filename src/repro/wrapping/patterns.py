"""Row patterns (Figure 7a).

A row pattern specifies the structure and content of one kind of table
row: an ordered set of cells, each requiring either a *standard
domain* (Integer, Real, String) or a *lexical domain* from the
extraction metadata.  Each cell may carry a *headline* label (the
semantic name used by the database generator) and a *hierarchy
requirement* pointing at another cell: the lexical item bound here
must be a specialisation of the item bound there (Figure 7a's arrow
from the Subsection cell to the Section cell).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.wrapping.metadata import MetadataError


class StandardDomain(enum.Enum):
    """The built-in cell content domains."""

    INTEGER = "Integer"
    REAL = "Real"
    STRING = "String"


@dataclass(frozen=True)
class StandardCell:
    """A cell requiring a standard domain value."""

    domain: StandardDomain
    headline: Optional[str] = None

    @property
    def is_lexical(self) -> bool:
        return False

    def __str__(self) -> str:
        label = f" [{self.headline}]" if self.headline else ""
        return f"{self.domain.value}{label}"


@dataclass(frozen=True)
class LexicalCell:
    """A cell requiring an item of a lexical domain.

    ``specialization_of`` optionally names the 0-based index of another
    (lexical) cell of the same pattern: the item bound here must be a
    specialisation of the item bound there.
    """

    domain_name: str
    headline: Optional[str] = None
    specialization_of: Optional[int] = None

    @property
    def is_lexical(self) -> bool:
        return True

    def __str__(self) -> str:
        label = f" [{self.headline}]" if self.headline else ""
        arrow = (
            f" (specialises cell {self.specialization_of})"
            if self.specialization_of is not None
            else ""
        )
        return f"{self.domain_name}{label}{arrow}"


CellPattern = object  # union alias for isinstance checks in the wrapper


@dataclass(frozen=True)
class RowPattern:
    """An ordered set of cell patterns with a name."""

    name: str
    cells: Sequence[object]  # StandardCell | LexicalCell

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        if not self.cells:
            raise MetadataError(f"row pattern {self.name!r} has no cells")
        seen_labels: Set[str] = set()
        for index, cell in enumerate(self.cells):
            if not isinstance(cell, (StandardCell, LexicalCell)):
                raise MetadataError(
                    f"row pattern {self.name!r}: cell {index} is not a "
                    f"StandardCell or LexicalCell"
                )
            if cell.headline:
                if cell.headline in seen_labels:
                    raise MetadataError(
                        f"row pattern {self.name!r}: duplicate headline "
                        f"label {cell.headline!r}"
                    )
                seen_labels.add(cell.headline)
            if isinstance(cell, LexicalCell) and cell.specialization_of is not None:
                target = cell.specialization_of
                if not 0 <= target < len(self.cells) or target == index:
                    raise MetadataError(
                        f"row pattern {self.name!r}: cell {index} references "
                        f"invalid cell {target}"
                    )
                if not isinstance(self.cells[target], LexicalCell):
                    raise MetadataError(
                        f"row pattern {self.name!r}: hierarchy requirement "
                        f"must point at a lexical cell"
                    )

    @property
    def arity(self) -> int:
        return len(self.cells)

    def headline_labels(self) -> List[str]:
        return [cell.headline for cell in self.cells if cell.headline]

    def __str__(self) -> str:
        cells = " | ".join(str(cell) for cell in self.cells)
        return f"RowPattern({self.name!r}: {cells})"
