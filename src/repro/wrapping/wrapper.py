"""The wrapper: table rows -> scored row-pattern instances.

For each logical row of each input table the wrapper (Section 6.2):

1. considers every row pattern with matching structure (same number of
   logical cells);
2. scores each candidate: every cell gets a *cell matching score*
   (standard-domain parse check, or best dictionary similarity for
   lexical cells, with hierarchy requirements enforced), combined by a
   t-norm into the row score;
3. picks the best-scoring pattern and builds its *row-pattern
   instance*, binding each lexical cell to its most similar valid item
   ``msi(r(i), rt(i))`` -- the wrapper-level repair of misspelled
   strings -- and each standard cell to the cell text;
4. rows that score below the metadata threshold against every pattern
   are reported as unmatched (headers, separator rows, noise).

Multi-row cells need no special pass: the logical grid replicates a
spanning cell's text into every grid position it covers, which is
exactly the paper's treatment of the year cell of Figure 1 ("the
wrapper considers this value associated to all the document rows which
are adjacent to the multi-row cell").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.acquisition.documents import Table
from repro.wrapping.html import parse_html_tables
from repro.wrapping.matching import TNorm, most_similar_item, similarity
from repro.wrapping.metadata import ExtractionMetadata
from repro.wrapping.patterns import LexicalCell, RowPattern, StandardCell, StandardDomain


@dataclass(frozen=True)
class CellMatch:
    """The match of one table cell against one pattern cell."""

    raw_text: str
    bound_value: str
    score: float
    headline: Optional[str]

    @property
    def was_repaired(self) -> bool:
        """Did msi binding change the text (a wrapper-level repair)?"""
        return self.raw_text != self.bound_value


@dataclass
class RowPatternInstance:
    """The result of matching one table row with its best pattern."""

    pattern: RowPattern
    cells: List[CellMatch]
    score: float
    table_index: int
    row_index: int

    def value(self, headline: str) -> str:
        for cell in self.cells:
            if cell.headline == headline:
                return cell.bound_value
        raise KeyError(
            f"pattern {self.pattern.name!r} has no headline {headline!r}"
        )

    def values(self) -> Dict[str, str]:
        return {c.headline: c.bound_value for c in self.cells if c.headline}


@dataclass
class UnmatchedRow:
    """A row no pattern matched above threshold."""

    table_index: int
    row_index: int
    texts: List[str]
    best_score: float


@dataclass
class WrapperReport:
    """Everything the wrapper produced for one document."""

    instances: List[RowPatternInstance]
    unmatched: List[UnmatchedRow]

    @property
    def n_repaired_strings(self) -> int:
        return sum(
            1
            for instance in self.instances
            for cell in instance.cells
            if cell.was_repaired
        )


class Wrapper:
    """Matches document tables against the metadata's row patterns."""

    def __init__(
        self, metadata: ExtractionMetadata, *, t_norm: TNorm = TNorm.PRODUCT
    ) -> None:
        self.metadata = metadata
        self.t_norm = t_norm

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def wrap_html(self, html_text: str) -> WrapperReport:
        """Parse *html_text* and wrap every table found in it."""
        return self.wrap_tables(parse_html_tables(html_text))

    def wrap_document(self, document) -> WrapperReport:
        """Wrap an in-memory document model directly (no HTML round
        trip); equivalent to ``wrap_html(to_html(document))`` because
        the parser preserves logical grids."""
        return self.wrap_tables(document.tables)

    def wrap_tables(self, tables: Sequence[Table]) -> WrapperReport:
        instances: List[RowPatternInstance] = []
        unmatched: List[UnmatchedRow] = []
        selector = self.metadata.table_selector
        for table_index, table in enumerate(tables):
            if selector is not None and not selector.selects(
                table_index, table.caption
            ):
                continue
            grid = table.logical_grid()
            for row_index, grid_row in enumerate(grid):
                texts = [text if text is not None else "" for text in grid_row]
                best: Optional[RowPatternInstance] = None
                best_score = 0.0
                for pattern in self.metadata.row_patterns:
                    if pattern.arity != len(texts):
                        continue
                    candidate = self._match_row(pattern, texts, table_index, row_index)
                    if candidate.score > best_score or best is None:
                        if best is None or candidate.score > best_score:
                            best = candidate
                            best_score = candidate.score
                if best is None or best_score < self.metadata.match_threshold:
                    unmatched.append(
                        UnmatchedRow(table_index, row_index, texts, best_score)
                    )
                    continue
                instances.append(best)
        return WrapperReport(instances=instances, unmatched=unmatched)

    # ------------------------------------------------------------------
    # Row matching
    # ------------------------------------------------------------------

    def _match_row(
        self,
        pattern: RowPattern,
        texts: Sequence[str],
        table_index: int,
        row_index: int,
    ) -> RowPatternInstance:
        # First pass: independent cell matches.
        matches: List[CellMatch] = []
        for cell_pattern, text in zip(pattern.cells, texts):
            matches.append(self._match_cell(cell_pattern, text))
        # Second pass: enforce hierarchy requirements (footnote 4: the
        # bound item must also satisfy the pattern's hierarchy edges).
        for index, cell_pattern in enumerate(pattern.cells):
            if not isinstance(cell_pattern, LexicalCell):
                continue
            target_index = cell_pattern.specialization_of
            if target_index is None:
                continue
            target_value = matches[target_index].bound_value
            bound = matches[index].bound_value
            if self.metadata.hierarchy.is_specialization(bound, target_value):
                continue
            matches[index] = self._constrained_lexical_match(
                cell_pattern, texts[index], target_value
            )
        score = self.t_norm.combine(m.score for m in matches)
        return RowPatternInstance(
            pattern=pattern,
            cells=matches,
            score=score,
            table_index=table_index,
            row_index=row_index,
        )

    def _match_cell(self, cell_pattern: object, text: str) -> CellMatch:
        if isinstance(cell_pattern, StandardCell):
            score, bound = self._match_standard(cell_pattern.domain, text)
            return CellMatch(text, bound, score, cell_pattern.headline)
        assert isinstance(cell_pattern, LexicalCell)
        domain = self.metadata.domain(cell_pattern.domain_name)
        item, score = most_similar_item(text, domain.sorted_items())
        bound = item if item is not None else text
        return CellMatch(text, bound, score, cell_pattern.headline)

    def _constrained_lexical_match(
        self, cell_pattern: LexicalCell, text: str, ancestor: str
    ) -> CellMatch:
        """msi restricted to items that specialise *ancestor*."""
        domain = self.metadata.domain(cell_pattern.domain_name)
        valid = [
            item
            for item in domain.sorted_items()
            if self.metadata.hierarchy.is_specialization(item, ancestor)
        ]
        if not valid:
            return CellMatch(text, text, 0.0, cell_pattern.headline)
        item, score = most_similar_item(text, valid)
        assert item is not None
        return CellMatch(text, item, score, cell_pattern.headline)

    @staticmethod
    def _match_standard(domain: StandardDomain, text: str) -> PyTuple[float, str]:
        stripped = text.strip()
        if domain is StandardDomain.STRING:
            return (1.0 if stripped else 0.0), stripped
        if domain is StandardDomain.INTEGER:
            candidate = stripped.lstrip("-")
            if candidate.isdigit():
                return 1.0, stripped
            digits = "".join(ch for ch in stripped if ch.isdigit())
            if digits:
                # Partially numeric (an OCR artefact like "2O3"): keep
                # the digits, flag with a reduced score.
                return 0.5, digits
            return 0.0, stripped
        # REAL
        try:
            float(stripped)
            return 1.0, stripped
        except ValueError:
            digits = "".join(ch for ch in stripped if ch.isdigit() or ch == ".")
            if digits and digits != ".":
                return 0.5, digits
            return 0.0, stripped
