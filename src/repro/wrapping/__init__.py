"""The data-extraction module: wrapper + database generator (Section 6.2).

- :mod:`repro.wrapping.html` -- an HTML table parser built on the
  standard library's ``html.parser``; reconstructs the physical table
  (rowspan/colspan cells) and its logical grid;
- :mod:`repro.wrapping.metadata` -- extraction metadata: domain
  descriptions, hierarchical relationships (Figure 6), classification
  information, the relational mapping, and the row-pattern set;
- :mod:`repro.wrapping.patterns` -- row patterns (Figure 7a): ordered
  cells whose content is a lexical domain or a standard domain, an
  optional headline, and hierarchy requirements between cells;
- :mod:`repro.wrapping.matching` -- edit-distance similarity, the
  most-similar-item (msi) dictionary repair, and the t-norms that
  combine cell scores into row scores;
- :mod:`repro.wrapping.wrapper` -- the wrapper: match every table row
  against the row patterns, pick the best, and emit scored row-pattern
  instances (Figure 7b);
- :mod:`repro.wrapping.dbgen` -- the database generator: row-pattern
  instances -> relational tuples, with classification-driven
  attributes (the ``Type`` column of the running example).
"""

from repro.wrapping.html import HtmlTableParseError, parse_html_tables
from repro.wrapping.matching import (
    TNorm,
    levenshtein,
    most_similar_item,
    similarity,
)
from repro.wrapping.metadata import (
    ClassificationInfo,
    DomainDescription,
    ExtractionMetadata,
    HierarchyGraph,
    RelationalMapping,
    TableSelector,
)
from repro.wrapping.patterns import (
    CellPattern,
    LexicalCell,
    RowPattern,
    StandardCell,
    StandardDomain,
)
from repro.wrapping.wrapper import (
    CellMatch,
    RowPatternInstance,
    Wrapper,
    WrapperReport,
)
from repro.wrapping.dbgen import DatabaseGenerator, ExtractionError

__all__ = [
    "parse_html_tables",
    "HtmlTableParseError",
    "levenshtein",
    "similarity",
    "most_similar_item",
    "TNorm",
    "DomainDescription",
    "HierarchyGraph",
    "ClassificationInfo",
    "RelationalMapping",
    "ExtractionMetadata",
    "TableSelector",
    "StandardDomain",
    "StandardCell",
    "LexicalCell",
    "CellPattern",
    "RowPattern",
    "Wrapper",
    "WrapperReport",
    "RowPatternInstance",
    "CellMatch",
    "DatabaseGenerator",
    "ExtractionError",
]
