"""Extraction metadata (Section 6.2).

The acquisition designer records, per application context:

- *domain descriptions*: named lexical domains (``Section``,
  ``Subsection``, ...) with their lexical items;
- *hierarchical relationships*: specialisation edges between lexical
  items of different domains (Figure 6: "beginning cash" -> "Receipts");
- *classification information*: the role of each lexical item in the
  aggregate constraints (``det`` / ``aggr`` / ``drv`` in the running
  example);
- the *relational mapping*: how row-pattern headline labels and
  classification outputs populate the attributes of the target
  relational scheme;
- the *row patterns* themselves (defined in
  :mod:`repro.wrapping.patterns`).

:class:`ExtractionMetadata` bundles it all and is the single object
the wrapper and the database generator consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple as PyTuple

from repro.relational.schema import DatabaseSchema


class MetadataError(ValueError):
    """Raised for inconsistent extraction metadata."""


@dataclass(frozen=True)
class DomainDescription:
    """A named lexical domain and its items."""

    name: str
    items: FrozenSet[str]

    def __init__(self, name: str, items: Iterable[str]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "items", frozenset(items))
        if not self.items:
            raise MetadataError(f"lexical domain {name!r} has no items")

    def __contains__(self, text: str) -> bool:
        return text in self.items

    def sorted_items(self) -> List[str]:
        return sorted(self.items)


class HierarchyGraph:
    """Specialisation edges between lexical items (Figure 6).

    ``add(child, parent)`` records "*child* is a specialisation of
    *parent*"; :meth:`is_specialization` answers reachability queries
    (transitively), which is what row-pattern hierarchy requirements
    check.
    """

    def __init__(self, edges: Iterable[PyTuple[str, str]] = ()) -> None:
        self._parents: Dict[str, Set[str]] = {}
        for child, parent in edges:
            self.add(child, parent)

    def add(self, child: str, parent: str) -> None:
        if child == parent:
            raise MetadataError(f"item {child!r} cannot specialise itself")
        self._parents.setdefault(child, set()).add(parent)

    def parents_of(self, item: str) -> Set[str]:
        return set(self._parents.get(item, ()))

    def is_specialization(self, child: str, ancestor: str) -> bool:
        """Transitive specialisation check (cycle-safe)."""
        frontier = [child]
        visited: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            for parent in self._parents.get(current, ()):
                if parent == ancestor:
                    return True
                frontier.append(parent)
        return False

    def items(self) -> Set[str]:
        all_items: Set[str] = set(self._parents)
        for parents in self._parents.values():
            all_items |= parents
        return all_items

    def __len__(self) -> int:
        return sum(len(parents) for parents in self._parents.values())


@dataclass(frozen=True)
class ClassificationInfo:
    """Lexical item -> class (e.g. subsection -> det/aggr/drv)."""

    name: str
    classes: Mapping[str, str]

    def __init__(self, name: str, classes: Mapping[str, str]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "classes", dict(classes))

    def classify(self, item: str) -> str:
        try:
            return self.classes[item]
        except KeyError:
            raise MetadataError(
                f"classification {self.name!r} has no class for item {item!r}"
            ) from None


@dataclass(frozen=True)
class TableSelector:
    """Selects which tables of a document the wrapper should process.

    ``indices`` whitelists 0-based table positions; ``caption_pattern``
    is a regular expression matched (search) against table captions.
    When both are given, a table qualifies if it matches *either* --
    positions cover caption-less tables, the pattern covers documents
    whose table count varies.
    """

    indices: Optional[FrozenSet[int]] = None
    caption_pattern: Optional[str] = None

    def __init__(
        self,
        indices: Optional[Iterable[int]] = None,
        caption_pattern: Optional[str] = None,
    ) -> None:
        object.__setattr__(
            self, "indices", frozenset(indices) if indices is not None else None
        )
        object.__setattr__(self, "caption_pattern", caption_pattern)
        if self.indices is None and self.caption_pattern is None:
            raise MetadataError(
                "TableSelector needs indices and/or a caption pattern"
            )
        if self.caption_pattern is not None:
            import re

            try:
                re.compile(self.caption_pattern)
            except re.error as exc:
                raise MetadataError(
                    f"invalid caption pattern {self.caption_pattern!r}: {exc}"
                ) from exc

    def selects(self, index: int, caption: Optional[str]) -> bool:
        if self.indices is not None and index in self.indices:
            return True
        if self.caption_pattern is not None and caption:
            import re

            return re.search(self.caption_pattern, caption) is not None
        return False


@dataclass(frozen=True)
class AttributeSource:
    """Where one attribute of the target relation comes from.

    Exactly one of:

    - ``headline``: the row-pattern cell carrying this headline label;
    - ``classify_attribute`` + ``classification``: apply a
      classification to the value extracted for another attribute.
    """

    headline: Optional[str] = None
    classify_attribute: Optional[str] = None
    classification: Optional[str] = None

    def __post_init__(self) -> None:
        from_headline = self.headline is not None
        from_classification = (
            self.classify_attribute is not None and self.classification is not None
        )
        if from_headline == from_classification:
            raise MetadataError(
                "attribute source must be either a headline label or a "
                "classification of another attribute"
            )


@dataclass(frozen=True)
class RelationalMapping:
    """Target relation + per-attribute sources."""

    relation: str
    sources: Mapping[str, AttributeSource]

    def __init__(self, relation: str, sources: Mapping[str, AttributeSource]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "sources", dict(sources))


@dataclass
class ExtractionMetadata:
    """Everything the extraction module needs for one document class."""

    domains: Dict[str, DomainDescription]
    hierarchy: HierarchyGraph
    classifications: Dict[str, ClassificationInfo]
    row_patterns: List["RowPattern"]  # noqa: F821 (import cycle; see patterns.py)
    mapping: RelationalMapping
    schema: DatabaseSchema
    #: rows scoring below this against every pattern are not extracted
    #: (headers, separators, noise rows)
    match_threshold: float = 0.5
    #: which tables of the document hold the data ("the position inside
    #: the document is specified inside the extraction metadata",
    #: Section 6.2).  ``None`` selects every table; otherwise a
    #: :class:`TableSelector` filters by index and/or caption pattern.
    table_selector: Optional["TableSelector"] = None

    def __post_init__(self) -> None:
        if not self.row_patterns:
            raise MetadataError("extraction metadata needs at least one row pattern")
        relation_schema = self.schema.relation(self.mapping.relation)
        headline_labels = {
            label
            for pattern in self.row_patterns
            for label in pattern.headline_labels()
        }
        for attribute, source in self.mapping.sources.items():
            relation_schema.attribute(attribute)  # raises if unknown
            if source.headline is not None and source.headline not in headline_labels:
                raise MetadataError(
                    f"attribute {attribute!r} maps to headline "
                    f"{source.headline!r}, which no row pattern provides"
                )
            if source.classification is not None:
                if source.classification not in self.classifications:
                    raise MetadataError(
                        f"attribute {attribute!r} uses unknown classification "
                        f"{source.classification!r}"
                    )
        missing = set(relation_schema.attribute_names) - set(self.mapping.sources)
        if missing:
            raise MetadataError(
                f"relational mapping leaves attributes {sorted(missing)} of "
                f"{self.mapping.relation!r} unpopulated"
            )

    def domain(self, name: str) -> DomainDescription:
        try:
            return self.domains[name]
        except KeyError:
            raise MetadataError(f"unknown lexical domain {name!r}") from None
