"""Reproduction of "DART: A Data Acquisition and Repairing Tool" (EDBT 2006).

DART acquires tabular data from heterogeneous documents and repairs
acquisition errors using *steady aggregate constraints*: a restricted
class of aggregate integrity constraints for which a **card-minimal
repair** -- one changing the fewest values, matching the assumption
that the fewest possible recognition errors occurred -- is computable
as a Mixed-Integer Linear Program.

Quick start::

    from repro.datasets import paper_acquired_instance, cash_budget_constraints
    from repro.repair import RepairEngine

    engine = RepairEngine(paper_acquired_instance(), cash_budget_constraints())
    outcome = engine.find_card_minimal_repair()
    print(outcome.repair)   # CashBudget[3].Value: 250 -> 220

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.relational` -- relational substrate (schemas, tuples,
  databases, selection predicates);
- :mod:`repro.constraints` -- aggregate constraints, steadiness,
  grounding, the constraint DSL;
- :mod:`repro.milp` -- MILP solvers (from-scratch simplex +
  branch-and-bound, and a scipy/HiGHS backend);
- :mod:`repro.repair` -- the card-minimal repair engine (the paper's
  core contribution) and the supervised validation loop;
- :mod:`repro.acquisition` -- document model, OCR error channel,
  HTML conversion;
- :mod:`repro.wrapping` -- HTML table parser, row patterns, similarity
  matching, database generation;
- :mod:`repro.core` -- the assembled DART system;
- :mod:`repro.datasets` -- the paper's running example and seeded
  workload generators;
- :mod:`repro.evalkit` -- metrics and sweep/reporting helpers for the
  benchmark harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
