"""A plain-text schema format for the command-line tool.

DART's metadata lives in files an acquisition designer edits by hand;
the schema part uses one declaration per line::

    # comments start with '#'
    relation CashBudget(Year: int, Section: str, Subsection: str,
                        Type: str, Value: int) key (Year, Subsection)
    measure CashBudget.Value
    bound CashBudget.Value >= -100000

Domains accept the same aliases as :meth:`repro.relational.domains.
Domain.parse` (``int``/``Z``, ``real``/``R``, ``str``/``S``).  The
``key (...)`` clause is optional; ``measure`` lines declare ``M_D``;
``bound`` lines declare value bounds the repair engine must respect
(``>=`` lower, ``<=`` upper; repeatable per attribute).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple, Union

from repro.relational.domains import Domain
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError

_RELATION_RE = re.compile(
    r"^relation\s+(?P<name>\w+)\s*\((?P<attrs>[^)]*)\)"
    r"(?:\s*key\s*\((?P<key>[^)]*)\))?\s*$",
    re.IGNORECASE,
)
_MEASURE_RE = re.compile(r"^measure\s+(?P<rel>\w+)\.(?P<attr>\w+)\s*$", re.IGNORECASE)
_BOUND_RE = re.compile(
    r"^bound\s+(?P<rel>\w+)\.(?P<attr>\w+)\s*(?P<op>>=|<=)\s*"
    r"(?P<value>-?\d+(?:\.\d+)?)\s*$",
    re.IGNORECASE,
)


class SchemaTextError(ValueError):
    """Raised on malformed schema text."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


def parse_schema(text: str) -> DatabaseSchema:
    """Parse the schema text format into a :class:`DatabaseSchema`."""
    relations: List[RelationSchema] = []
    measures: List[Tuple[str, str]] = []
    bounds: List[Tuple[int, str, str, str, float]] = []
    # Join continuation lines: a declaration may wrap; treat a line
    # starting with whitespace as a continuation of the previous one.
    logical_lines: List[Tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue
        if stripped[0].isspace() and logical_lines:
            last_number, last_text = logical_lines[-1]
            logical_lines[-1] = (last_number, last_text + " " + stripped.strip())
        else:
            logical_lines.append((number, stripped.strip()))

    for number, line in logical_lines:
        relation_match = _RELATION_RE.match(line)
        if relation_match:
            name = relation_match.group("name")
            attributes: List[Tuple[str, Domain]] = []
            attrs_text = relation_match.group("attrs").strip()
            if not attrs_text:
                raise SchemaTextError(f"relation {name!r} has no attributes", number)
            for part in attrs_text.split(","):
                if ":" not in part:
                    raise SchemaTextError(
                        f"attribute {part.strip()!r} needs 'name: domain'", number
                    )
                attr_name, domain_name = part.split(":", 1)
                try:
                    domain = Domain.parse(domain_name)
                except ValueError as exc:
                    raise SchemaTextError(str(exc), number) from exc
                attributes.append((attr_name.strip(), domain))
            key = None
            if relation_match.group("key"):
                key = [k.strip() for k in relation_match.group("key").split(",")]
            try:
                relations.append(RelationSchema.build(name, attributes, key=key))
            except SchemaError as exc:
                raise SchemaTextError(str(exc), number) from exc
            continue
        measure_match = _MEASURE_RE.match(line)
        if measure_match:
            measures.append((measure_match.group("rel"), measure_match.group("attr")))
            continue
        bound_match = _BOUND_RE.match(line)
        if bound_match:
            bounds.append(
                (
                    number,
                    bound_match.group("rel"),
                    bound_match.group("attr"),
                    bound_match.group("op"),
                    float(bound_match.group("value")),
                )
            )
            continue
        raise SchemaTextError(f"cannot parse declaration {line!r}", number)

    if not relations:
        raise SchemaTextError("no relation declarations found", 1)
    try:
        schema = DatabaseSchema(relations, measure_attributes=measures)
    except SchemaError as exc:
        raise SchemaTextError(str(exc), 1) from exc
    for number, relation_name, attribute, op, value in bounds:
        try:
            if op == ">=":
                schema.add_bound(relation_name, attribute, lower=value)
            else:
                schema.add_bound(relation_name, attribute, upper=value)
        except SchemaError as exc:
            raise SchemaTextError(str(exc), number) from exc
    return schema


def load_schema(path: Union[str, Path]) -> DatabaseSchema:
    """Load a schema from a text file."""
    return parse_schema(Path(path).read_text(encoding="utf-8"))


def dump_schema(schema: DatabaseSchema) -> str:
    """Render *schema* back into the text format (round-trippable)."""
    lines: List[str] = []
    for relation in schema:
        attrs = ", ".join(
            f"{a.name}: {a.domain.value}" for a in relation.attributes
        )
        key = ""
        if relation.key:
            key = " key (" + ", ".join(relation.key) + ")"
        lines.append(f"relation {relation.name}({attrs}){key}")
    for relation_name, attribute in sorted(schema.measure_attributes):
        lines.append(f"measure {relation_name}.{attribute}")
    for (relation_name, attribute), (lower, upper) in sorted(
        schema.declared_bounds.items()
    ):
        if lower is not None:
            lines.append(f"bound {relation_name}.{attribute} >= {lower:g}")
        if upper is not None:
            lines.append(f"bound {relation_name}.{attribute} <= {upper:g}")
    return "\n".join(lines) + "\n"
