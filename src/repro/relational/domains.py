"""Sorted domains of the relational model.

The paper restricts attribute domains to three sorts (Section 3):

- ``Z`` -- the infinite domain of integers,
- ``R`` -- the reals,
- ``S`` -- strings.

``Z`` and ``R`` are the *numerical domains*; attributes over them are
*numerical attributes* and only those may be declared *measure
attributes* (the values a repair is allowed to change).
"""

from __future__ import annotations

import enum
import math
from typing import Any, Union

#: The type of a database value once coerced into its domain.
Value = Union[int, float, str]


class Domain(enum.Enum):
    """One of the three sorted domains of the paper's data model."""

    INTEGER = "Z"
    REAL = "R"
    STRING = "S"

    @property
    def is_numerical(self) -> bool:
        """``True`` for the numerical domains Z and R."""
        return self in (Domain.INTEGER, Domain.REAL)

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, text: str) -> "Domain":
        """Parse a domain name from metadata text.

        Accepts the paper's one-letter sort names (``Z``, ``R``, ``S``)
        as well as common long forms (``integer``, ``int``, ``real``,
        ``float``, ``string``, ``str``), case-insensitively.
        """
        normalized = text.strip().lower()
        aliases = {
            "z": cls.INTEGER,
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "r": cls.REAL,
            "real": cls.REAL,
            "float": cls.REAL,
            "s": cls.STRING,
            "str": cls.STRING,
            "string": cls.STRING,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown domain name: {text!r}")
        return aliases[normalized]


class DomainError(ValueError):
    """Raised when a value cannot be interpreted in a domain."""


def value_in_domain(value: Any, domain: Domain) -> bool:
    """Return ``True`` iff *value* already is a member of *domain*.

    Booleans are rejected from the numerical domains even though
    ``bool`` subclasses ``int`` in Python: a balance-sheet cell is never
    a truth value.
    """
    if isinstance(value, bool):
        return False
    if domain is Domain.INTEGER:
        return isinstance(value, int)
    if domain is Domain.REAL:
        return isinstance(value, (int, float)) and math.isfinite(value)
    return isinstance(value, str)


def coerce_value(value: Any, domain: Domain) -> Value:
    """Coerce *value* into *domain*, raising :class:`DomainError` on failure.

    Coercion is intentionally conservative: strings are parsed into
    numbers only when the whole string is a number, and reals are
    accepted as integers only when they are integral (``3.0`` -> ``3``).
    This mirrors how the extraction pipeline hands numeric cell text to
    the repairing module.
    """
    if isinstance(value, bool):
        raise DomainError(f"boolean {value!r} is not a database value")

    if domain is Domain.STRING:
        if isinstance(value, str):
            return value
        raise DomainError(f"{value!r} is not a string")

    if isinstance(value, str):
        value = _parse_number(value)

    if not isinstance(value, (int, float)) or not math.isfinite(float(value)):
        raise DomainError(f"{value!r} is not a finite number")

    if domain is Domain.REAL:
        return float(value)

    # Domain.INTEGER
    if isinstance(value, int):
        return value
    if float(value).is_integer():
        return int(value)
    raise DomainError(f"{value!r} is not an integer")


def _parse_number(text: str) -> Union[int, float]:
    """Parse numeric cell text, tolerating surrounding blanks and signs."""
    stripped = text.strip()
    if not stripped:
        raise DomainError("empty string is not a number")
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError as exc:
        raise DomainError(f"{text!r} is not a number") from exc


def format_value(value: Value) -> str:
    """Render a database value the way the benches and CSV writer print it.

    Integers print bare; reals keep a decimal point; strings pass
    through unchanged.
    """
    if isinstance(value, bool):
        raise DomainError(f"boolean {value!r} is not a database value")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value.is_integer():
            return f"{value:.1f}"
        return repr(value)
    return value
