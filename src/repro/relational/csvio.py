"""CSV import/export for relations and databases.

The DART pipeline stores acquired data in a relational database; this
module provides the plain-text serialisation used by the examples and
benches to persist instances and by tests to round-trip them.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.relational.database import Database, Relation
from repro.relational.domains import Domain, coerce_value
from repro.relational.schema import DatabaseSchema, RelationSchema

PathLike = Union[str, Path]


def dump_relation_csv(relation: Relation, destination: Optional[PathLike] = None) -> str:
    """Serialise *relation* to CSV (header row = attribute names).

    Returns the CSV text; also writes it to *destination* when given.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(relation.schema.attribute_names)
    for row in relation:
        writer.writerow(list(row.values))
    text = buffer.getvalue()
    if destination is not None:
        Path(destination).write_text(text, encoding="utf-8")
    return text


def load_relation_csv(
    schema: RelationSchema,
    source: Union[PathLike, str],
    *,
    is_text: bool = False,
) -> Relation:
    """Load a relation from CSV text or a CSV file.

    The header row must name exactly the schema's attributes (any
    order); values are coerced into the attribute domains.
    """
    if is_text:
        text = source if isinstance(source, str) else Path(source).read_text()
    else:
        text = Path(source).read_text(encoding="utf-8")
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise ValueError("CSV input is empty (missing header row)")
    header = [name.strip() for name in rows[0]]
    expected = set(schema.attribute_names)
    if set(header) != expected:
        raise ValueError(
            f"CSV header {header} does not match schema attributes "
            f"{sorted(expected)}"
        )
    relation = Relation(schema)
    for line_number, raw in enumerate(rows[1:], start=2):
        if not raw or all(not cell.strip() for cell in raw):
            continue
        if len(raw) != len(header):
            raise ValueError(
                f"line {line_number}: expected {len(header)} cells, got {len(raw)}"
            )
        record = {}
        for name, cell in zip(header, raw):
            domain = schema.domain_of(name)
            if domain is Domain.STRING:
                record[name] = cell
            else:
                record[name] = coerce_value(cell, domain)
        relation.insert_dict(record)
    return relation


def dump_database(database: Database, directory: PathLike) -> Dict[str, Path]:
    """Write each relation of *database* to ``<directory>/<name>.csv``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    for relation_name in database.schema.relation_names:
        path = target / f"{relation_name}.csv"
        dump_relation_csv(database.relation(relation_name), path)
        written[relation_name] = path
    return written


def load_database(schema: DatabaseSchema, directory: PathLike) -> Database:
    """Load a database instance from per-relation CSV files."""
    source = Path(directory)
    database = Database(schema)
    for relation_schema in schema:
        path = source / f"{relation_schema.name}.csv"
        if not path.exists():
            continue
        loaded = load_relation_csv(relation_schema, path)
        target_relation = database.relation(relation_schema.name)
        for row in loaded:
            target_relation.insert(list(row.values))
    return database
