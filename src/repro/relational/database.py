"""Relation and database instances.

A :class:`Relation` is a bag of tuples over one relational scheme; a
:class:`Database` is an instance of a :class:`~repro.relational.schema.
DatabaseSchema`.  Tuples receive stable integer ids on insertion so
that atomic updates (``<t, A, v'>``) can address "the same row" across
repairs.

Databases support the operations the DART pipeline needs:

- insertion (used by the database generator of the extraction module),
- selection with :class:`~repro.relational.predicates.Condition`
  predicates (used when grounding constraints),
- sum-aggregation over a selected set of tuples (the aggregation
  functions of Section 3.1),
- applying attribute-level updates, producing a *new* database (the
  repair primitives of Section 3.2 never mutate in place).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple as PyTuple,
)

from repro.relational.predicates import Binding, Condition, TRUE
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError
from repro.relational.tuples import Tuple


class Relation:
    """An instance of one relational scheme."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._tuples: Dict[int, Tuple] = {}
        self._next_id = 0

    @property
    def name(self) -> str:
        return self.schema.name

    def insert(self, values: Sequence[Any]) -> Tuple:
        """Insert a new tuple built from positional *values*; return it."""
        row = Tuple(self.schema, values, tuple_id=self._next_id)
        self._tuples[self._next_id] = row
        self._next_id += 1
        return row

    def insert_dict(self, record: Mapping[str, Any]) -> Tuple:
        """Insert a tuple from an attribute-name -> value mapping."""
        missing = [n for n in self.schema.attribute_names if n not in record]
        if missing:
            raise SchemaError(
                f"record for {self.name!r} is missing attributes {missing}"
            )
        values = [record[name] for name in self.schema.attribute_names]
        return self.insert(values)

    def get(self, tuple_id: int) -> Tuple:
        try:
            return self._tuples[tuple_id]
        except KeyError:
            raise KeyError(
                f"relation {self.name!r} has no tuple with id {tuple_id}"
            ) from None

    def replace(self, tuple_id: int, new_tuple: Tuple) -> None:
        """Replace the stored tuple with *new_tuple* (same id required)."""
        if tuple_id not in self._tuples:
            raise KeyError(
                f"relation {self.name!r} has no tuple with id {tuple_id}"
            )
        if new_tuple.tuple_id != tuple_id:
            raise ValueError(
                f"replacement tuple id {new_tuple.tuple_id} != {tuple_id}"
            )
        self._tuples[tuple_id] = new_tuple

    def select(
        self, condition: Condition = TRUE, binding: Binding = {}
    ) -> List[Tuple]:
        """All tuples satisfying *condition* under *binding*, in id order."""
        return [
            row
            for _, row in sorted(self._tuples.items())
            if condition.holds(row, binding)
        ]

    def sum(
        self,
        expression: Callable[[Tuple], float],
        condition: Condition = TRUE,
        binding: Binding = {},
    ) -> float:
        """``SELECT sum(expression) FROM self WHERE condition``.

        Following SQL semantics an empty selection sums to 0 (the
        paper's aggregation functions are total in the same way: an
        empty T_chi contributes an empty linear sum).
        """
        return sum(expression(row) for row in self.select(condition, binding))

    def __iter__(self) -> Iterator[Tuple]:
        for _, row in sorted(self._tuples.items()):
            yield row

    def __len__(self) -> int:
        return len(self._tuples)

    def copy(self) -> "Relation":
        clone = Relation(self.schema)
        clone._tuples = dict(self._tuples)
        clone._next_id = self._next_id
        return clone

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self)} tuples)"


class Database:
    """An instance of a database scheme."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._relations: Dict[str, Relation] = {
            rs.name: Relation(rs) for rs in schema
        }

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def insert(self, relation_name: str, values: Sequence[Any]) -> Tuple:
        return self.relation(relation_name).insert(values)

    def insert_dict(self, relation_name: str, record: Mapping[str, Any]) -> Tuple:
        return self.relation(relation_name).insert_dict(record)

    def tuples(self, relation_name: Optional[str] = None) -> Iterator[Tuple]:
        """Iterate tuples of one relation, or of every relation in order."""
        if relation_name is not None:
            yield from self.relation(relation_name)
            return
        for name in self.schema.relation_names:
            yield from self._relations[name]

    def total_tuples(self) -> int:
        return sum(len(r) for r in self._relations.values())

    def copy(self) -> "Database":
        """A value-level copy sharing schemas but not tuple stores."""
        clone = Database(self.schema)
        clone._relations = {
            name: relation.copy() for name, relation in self._relations.items()
        }
        return clone

    def set_value(self, relation_name: str, tuple_id: int, attribute: str, value: Any) -> Tuple:
        """Apply one attribute-level update in place; return the new tuple.

        Callers that need repair semantics (immutability of the
        original instance) should ``copy()`` first -- the repair engine
        does.
        """
        relation = self.relation(relation_name)
        old = relation.get(tuple_id)
        new = old.replacing(attribute, value)
        relation.replace(tuple_id, new)
        return new

    def get_value(self, relation_name: str, tuple_id: int, attribute: str) -> Any:
        return self.relation(relation_name).get(tuple_id)[attribute]

    def measure_cells(self) -> List[PyTuple[str, int, str]]:
        """Every ``(relation, tuple_id, attribute)`` holding a measure value.

        These are the database items a repair is allowed to touch; the
        MILP translation creates one ``z`` variable per cell.
        """
        cells: List[PyTuple[str, int, str]] = []
        for relation_name in self.schema.relation_names:
            measure_names = self.schema.measures_of(relation_name)
            if not measure_names:
                continue
            for row in self._relations[relation_name]:
                assert row.tuple_id is not None
                for attribute in measure_names:
                    cells.append((relation_name, row.tuple_id, attribute))
        return cells

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if self.schema.relation_names != other.schema.relation_names:
            return False
        for name in self.schema.relation_names:
            if list(self.relation(name)) != list(other.relation(name)):
                return False
        return True

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rel)}" for name, rel in self._relations.items()
        )
        return f"Database({parts})"


def diff_databases(original: Database, repaired: Database) -> List[PyTuple[str, int, str, Any, Any]]:
    """Cells whose values differ between two instances of the same scheme.

    Returns ``(relation, tuple_id, attribute, old, new)`` records; used
    by tests and by the metrics kit to compare a repair against ground
    truth.
    """
    differences: List[PyTuple[str, int, str, Any, Any]] = []
    for relation_name in original.schema.relation_names:
        original_relation = original.relation(relation_name)
        repaired_relation = repaired.relation(relation_name)
        for row in original_relation:
            assert row.tuple_id is not None
            other = repaired_relation.get(row.tuple_id)
            for attribute in row.schema.attribute_names:
                if row[attribute] != other[attribute]:
                    differences.append(
                        (relation_name, row.tuple_id, attribute,
                         row[attribute], other[attribute])
                    )
    return differences
