"""Relation and database schemas.

A relational scheme is a sorted predicate ``R(A1 : D1, ..., An : Dn)``
(paper, Section 3).  A database scheme is a named collection of
relational schemes together with the set of *measure attributes*
``M_D`` -- the numerical attributes that hold measure data (weights,
lengths, prices, balance-sheet values, ...).  Repairs are only allowed
to change measure values, so the schema is where that policy lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.relational.domains import Domain


class SchemaError(ValueError):
    """Raised for malformed schemas or schema lookups that fail."""


@dataclass(frozen=True)
class Attribute:
    """A named, sorted attribute of a relational scheme."""

    name: str
    domain: Domain

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SchemaError("attribute name must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}:{self.domain}"


class RelationSchema:
    """A relational scheme ``R(A1 : D1, ..., An : Dn)``.

    Attribute order is significant (tuples are ground atoms, so
    positional construction must be stable) and attribute names must be
    unique within the scheme.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        key: Optional[Sequence[str]] = None,
    ) -> None:
        if not name or not name.strip():
            raise SchemaError("relation name must be non-empty")
        if not attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._index: Dict[str, int] = {}
        for position, attribute in enumerate(self.attributes):
            if attribute.name in self._index:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} in relation {name!r}"
                )
            self._index[attribute.name] = position
        self.key: Optional[Tuple[str, ...]] = None
        if key is not None:
            for attr_name in key:
                if attr_name not in self._index:
                    raise SchemaError(
                        f"key attribute {attr_name!r} not in relation {name!r}"
                    )
            self.key = tuple(key)

    @classmethod
    def build(
        cls,
        name: str,
        specs: Sequence[Tuple[str, Domain]],
        key: Optional[Sequence[str]] = None,
    ) -> "RelationSchema":
        """Build a scheme from ``(attribute name, domain)`` pairs."""
        return cls(name, [Attribute(n, d) for n, d in specs], key=key)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def has_attribute(self, name: str) -> bool:
        return name in self._index

    def position_of(self, name: str) -> int:
        """Return the 0-based position of attribute *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.position_of(name)]

    def domain_of(self, name: str) -> Domain:
        return self.attribute(name).domain

    def numerical_attributes(self) -> List[str]:
        """Names of the attributes over the numerical domains Z and R."""
        return [a.name for a in self.attributes if a.domain.is_numerical]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        attrs = ", ".join(str(a) for a in self.attributes)
        return f"{self.name}({attrs})"


class DatabaseSchema:
    """A database scheme: relational schemes plus the measure set ``M_D``."""

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        measure_attributes: Iterable[Tuple[str, str]] = (),
    ) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for schema in relations:
            if schema.name in self._relations:
                raise SchemaError(f"duplicate relation name {schema.name!r}")
            self._relations[schema.name] = schema

        self._measures: Set[Tuple[str, str]] = set()
        for relation_name, attribute_name in measure_attributes:
            self.add_measure(relation_name, attribute_name)
        #: declared value bounds per (relation, attribute):
        #: (lower-or-None, upper-or-None)
        self._bounds: Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]] = {}

    def add_measure(self, relation_name: str, attribute_name: str) -> None:
        """Declare ``relation.attribute`` to be a measure attribute.

        Only numerical attributes may be measures (the repair
        primitives of Definition 2 act on numerical values only).
        """
        schema = self.relation(relation_name)
        attribute = schema.attribute(attribute_name)
        if not attribute.domain.is_numerical:
            raise SchemaError(
                f"measure attribute {relation_name}.{attribute_name} must be "
                f"numerical, found domain {attribute.domain}"
            )
        self._measures.add((relation_name, attribute_name))

    def add_bound(
        self,
        relation_name: str,
        attribute_name: str,
        *,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> None:
        """Declare a value bound for a numerical attribute.

        Bounds are *domain knowledge* about valid values (prices are
        non-negative, percentages stay in [0, 100], ...).  The repair
        engine intersects them with its Big-M box, so no proposed
        repair can step outside them -- which both prunes nonsensical
        candidate repairs and often collapses otherwise-ambiguous
        card-minimal repair sets.
        """
        schema = self.relation(relation_name)
        attribute = schema.attribute(attribute_name)
        if not attribute.domain.is_numerical:
            raise SchemaError(
                f"bound on {relation_name}.{attribute_name}: attribute is "
                f"not numerical"
            )
        existing = self._bounds.get((relation_name, attribute_name), (None, None))
        new_lower = existing[0] if lower is None else float(lower)
        new_upper = existing[1] if upper is None else float(upper)
        if new_lower is not None and new_upper is not None and new_lower > new_upper:
            raise SchemaError(
                f"bound on {relation_name}.{attribute_name}: lower "
                f"{new_lower} exceeds upper {new_upper}"
            )
        self._bounds[(relation_name, attribute_name)] = (new_lower, new_upper)

    def bounds_of(
        self, relation_name: str, attribute_name: str
    ) -> Tuple[Optional[float], Optional[float]]:
        """The declared ``(lower, upper)`` bound (``None`` = unbounded)."""
        return self._bounds.get((relation_name, attribute_name), (None, None))

    @property
    def declared_bounds(self) -> Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]]:
        return dict(self._bounds)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r} in schema") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    @property
    def measure_attributes(self) -> Set[Tuple[str, str]]:
        """The set ``M_D`` as ``(relation, attribute)`` pairs."""
        return set(self._measures)

    def is_measure(self, relation_name: str, attribute_name: str) -> bool:
        return (relation_name, attribute_name) in self._measures

    def measures_of(self, relation_name: str) -> List[str]:
        """The set ``M_R``: measure attributes of one relation, in scheme order."""
        schema = self.relation(relation_name)
        return [
            a.name
            for a in schema.attributes
            if (relation_name, a.name) in self._measures
        ]

    def __repr__(self) -> str:
        parts = [repr(r) for r in self._relations.values()]
        return "DatabaseSchema(" + "; ".join(parts) + f"; M_D={sorted(self._measures)})"


@dataclass
class SchemaMismatch:
    """One way a tuple fails to conform to a schema (used in validation)."""

    relation: str
    attribute: str
    value: object
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.relation}.{self.attribute}={self.value!r}: {self.reason}"
        )
