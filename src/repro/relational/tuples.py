"""Tuples as ground atoms.

A tuple is a ground atom ``R(v1, ..., vn)`` over a relational scheme;
``t[A]`` denotes the value of attribute ``A`` in ``t`` (paper,
Section 3).  Tuples are immutable: the repairing framework never
mutates a tuple in place, it builds updated copies (Definition 2).
Each tuple carries a stable ``tuple_id`` assigned by the relation that
owns it, so that updates can refer to tuples even after their values
changed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Sequence, Tuple as PyTuple

from repro.relational.domains import coerce_value, format_value
from repro.relational.schema import RelationSchema, SchemaError


class Tuple:
    """An immutable ground atom over a relational scheme."""

    __slots__ = ("schema", "values", "tuple_id")

    def __init__(
        self,
        schema: RelationSchema,
        values: Sequence[Any],
        tuple_id: Optional[int] = None,
    ) -> None:
        if len(values) != schema.arity:
            raise SchemaError(
                f"relation {schema.name!r} has arity {schema.arity}, "
                f"got {len(values)} values"
            )
        coerced = tuple(
            coerce_value(value, attribute.domain)
            for value, attribute in zip(values, schema.attributes)
        )
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "values", coerced)
        object.__setattr__(self, "tuple_id", tuple_id)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Tuple is immutable")

    def __reduce__(self):
        # Immutable + __slots__ defeats pickle's default setattr-based
        # state restore; rebuild through the constructor instead (the
        # batch engine ships databases to worker processes).
        return (Tuple, (self.schema, list(self.values), self.tuple_id))

    def __getitem__(self, attribute: str) -> Any:
        """``t[A]``: the value of attribute *attribute* in this tuple."""
        return self.values[self.schema.position_of(attribute)]

    def get(self, attribute: str, default: Any = None) -> Any:
        if self.schema.has_attribute(attribute):
            return self[attribute]
        return default

    @property
    def relation_name(self) -> str:
        return self.schema.name

    def replacing(self, attribute: str, value: Any) -> "Tuple":
        """Return a copy of this tuple with *attribute* set to *value*.

        This is the effect ``u(t)`` of an atomic update
        ``u = <t, A, v'>`` (Definition 2); the copy keeps the same
        ``tuple_id`` so the repaired tuple is still "the same row".
        """
        position = self.schema.position_of(attribute)
        new_values = list(self.values)
        new_values[position] = value
        return Tuple(self.schema, new_values, tuple_id=self.tuple_id)

    def as_dict(self) -> Dict[str, Any]:
        return dict(zip(self.schema.attribute_names, self.values))

    def key_values(self) -> Optional[PyTuple[Any, ...]]:
        """Values of the key attributes, or ``None`` if no key declared."""
        if self.schema.key is None:
            return None
        return tuple(self[name] for name in self.schema.key)

    def identity(self) -> PyTuple[Any, ...]:
        """A hashable identity for the tuple.

        Prefers the stable ``tuple_id`` (survives value updates), else
        the declared key, else the full value vector.
        """
        if self.tuple_id is not None:
            return (self.relation_name, "#", self.tuple_id)
        key = self.key_values()
        if key is not None:
            return (self.relation_name, "k", key)
        return (self.relation_name, "v", self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.values == other.values
            and self.tuple_id == other.tuple_id
        )

    def __hash__(self) -> int:
        return hash((self.schema.name, self.values, self.tuple_id))

    def __repr__(self) -> str:
        rendered = ", ".join(
            format_value(v) if not isinstance(v, str) else repr(v)
            for v in self.values
        )
        suffix = "" if self.tuple_id is None else f"  [id={self.tuple_id}]"
        return f"{self.relation_name}({rendered}){suffix}"
