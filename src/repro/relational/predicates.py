"""The boolean condition language of WHERE clauses.

Aggregation functions in the paper are parameterised SQL sum-queries::

    chi(x1, ..., xk) = SELECT sum(e) FROM R WHERE alpha(x1, ..., xk)

where ``alpha`` is a boolean formula over the parameters ``x1..xk``,
constants, and attributes of ``R``.  This module implements that
formula language: terms (constants, attribute references, variables),
comparisons, and boolean connectives.  Conditions are also reused by
the relational layer as plain selection predicates.

A condition is evaluated against a tuple together with a *binding*
mapping variable names to constants (the ground substitution theta of
Section 5).  Evaluating a condition that still contains unbound
variables raises :class:`UnboundVariableError` -- grounding must happen
first.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional, Sequence, Set

from repro.relational.tuples import Tuple

Binding = Mapping[str, Any]

_EMPTY_BINDING: Dict[str, Any] = {}


class UnboundVariableError(LookupError):
    """A condition was evaluated with a free variable left unbound."""


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """A term of the condition language: constant, attribute, or variable."""

    def evaluate(self, row: Tuple, binding: Binding) -> Any:
        raise NotImplementedError

    def attributes(self) -> Set[str]:
        """Attribute names referenced by this term."""
        return set()

    def variables(self) -> Set[str]:
        """Variable names referenced by this term."""
        return set()

    def substitute(self, binding: Binding) -> "Term":
        """Replace bound variables by constants; other terms unchanged."""
        return self


@dataclass(frozen=True)
class Const(Term):
    """A constant value."""

    value: Any

    def evaluate(self, row: Tuple, binding: Binding) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class AttrRef(Term):
    """A reference to an attribute of the tuple being tested."""

    name: str

    def evaluate(self, row: Tuple, binding: Binding) -> Any:
        return row[self.name]

    def attributes(self) -> Set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Var(Term):
    """A parameter variable, bound by a ground substitution."""

    name: str

    def evaluate(self, row: Tuple, binding: Binding) -> Any:
        try:
            return binding[self.name]
        except KeyError:
            raise UnboundVariableError(
                f"variable {self.name!r} is unbound"
            ) from None

    def variables(self) -> Set[str]:
        return {self.name}

    def substitute(self, binding: Binding) -> Term:
        if self.name in binding:
            return Const(binding[self.name])
        return self

    def __str__(self) -> str:
        return f"${self.name}"


def const(value: Any) -> Const:
    """Shorthand constructor for a constant term."""
    return Const(value)


def attr(name: str) -> AttrRef:
    """Shorthand constructor for an attribute reference."""
    return AttrRef(name)


def var(name: str) -> Var:
    """Shorthand constructor for a parameter variable."""
    return Var(name)


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Condition:
    """A boolean formula over terms."""

    def holds(self, row: Tuple, binding: Binding = _EMPTY_BINDING) -> bool:
        raise NotImplementedError

    def attributes(self) -> Set[str]:
        """All attribute names mentioned anywhere in the formula."""
        return set()

    def variables(self) -> Set[str]:
        """All free variable names mentioned anywhere in the formula."""
        return set()

    def substitute(self, binding: Binding) -> "Condition":
        """Replace bound variables by constants throughout the formula."""
        return self

    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True)
class Boolean(Condition):
    """A constant truth value (``TRUE`` / ``FALSE``)."""

    value: bool

    def holds(self, row: Tuple, binding: Binding = _EMPTY_BINDING) -> bool:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Boolean(True)
FALSE = Boolean(False)


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Comparison(Condition):
    """``left op right`` where op is one of =, !=, <, <=, >, >=."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def holds(self, row: Tuple, binding: Binding = _EMPTY_BINDING) -> bool:
        left_value = self.left.evaluate(row, binding)
        right_value = self.right.evaluate(row, binding)
        return _COMPARATORS[self.op](left_value, right_value)

    def attributes(self) -> Set[str]:
        return self.left.attributes() | self.right.attributes()

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def substitute(self, binding: Binding) -> Condition:
        return Comparison(
            self.left.substitute(binding), self.op, self.right.substitute(binding)
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of sub-conditions (empty conjunction is true)."""

    parts: Sequence[Condition]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def holds(self, row: Tuple, binding: Binding = _EMPTY_BINDING) -> bool:
        return all(part.holds(row, binding) for part in self.parts)

    def attributes(self) -> Set[str]:
        return set().union(*(p.attributes() for p in self.parts)) if self.parts else set()

    def variables(self) -> Set[str]:
        return set().union(*(p.variables() for p in self.parts)) if self.parts else set()

    def substitute(self, binding: Binding) -> Condition:
        return And(tuple(p.substitute(binding) for p in self.parts))

    def __str__(self) -> str:
        return " AND ".join(f"({p})" if isinstance(p, Or) else str(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of sub-conditions (empty disjunction is false)."""

    parts: Sequence[Condition]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def holds(self, row: Tuple, binding: Binding = _EMPTY_BINDING) -> bool:
        return any(part.holds(row, binding) for part in self.parts)

    def attributes(self) -> Set[str]:
        return set().union(*(p.attributes() for p in self.parts)) if self.parts else set()

    def variables(self) -> Set[str]:
        return set().union(*(p.variables() for p in self.parts)) if self.parts else set()

    def substitute(self, binding: Binding) -> Condition:
        return Or(tuple(p.substitute(binding) for p in self.parts))

    def __str__(self) -> str:
        return " OR ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Not(Condition):
    """Negation of a sub-condition."""

    part: Condition

    def holds(self, row: Tuple, binding: Binding = _EMPTY_BINDING) -> bool:
        return not self.part.holds(row, binding)

    def attributes(self) -> Set[str]:
        return self.part.attributes()

    def variables(self) -> Set[str]:
        return self.part.variables()

    def substitute(self, binding: Binding) -> Condition:
        return Not(self.part.substitute(binding))

    def __str__(self) -> str:
        return f"NOT ({self.part})"


def conjunction(parts: Sequence[Condition]) -> Condition:
    """Build a flat conjunction, simplifying the 0- and 1-element cases."""
    flattened: list = []

    def collect(part: Condition) -> None:
        if isinstance(part, And):
            for inner in part.parts:
                collect(inner)
        elif part is TRUE or part == TRUE:
            return
        else:
            flattened.append(part)

    for part in parts:
        collect(part)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return And(tuple(flattened))


def equals(attribute: str, value_or_term: Any) -> Comparison:
    """Shorthand for the ubiquitous ``Attribute = constant-or-term``."""
    if isinstance(value_or_term, Term):
        right = value_or_term
    else:
        right = Const(value_or_term)
    return Comparison(AttrRef(attribute), "=", right)
