"""Relational database substrate used by the DART reproduction.

The paper (Section 3) assumes classical notions of database scheme,
relational scheme and relations, with sorted predicates
``R(A1 : D1, ..., An : Dn)`` whose domains are the integers (Z), the
reals (R) or strings (S).  This package provides those notions from
scratch:

- :mod:`repro.relational.domains` -- the three sorted domains and value
  coercion/validation,
- :mod:`repro.relational.schema` -- attribute, relation and database
  schemas, including the set of *measure attributes* ``M_D``,
- :mod:`repro.relational.tuples` -- tuples as ground atoms with
  ``t[A]`` attribute access,
- :mod:`repro.relational.predicates` -- the boolean condition language
  used in WHERE clauses of aggregation functions,
- :mod:`repro.relational.database` -- relation and database instances,
- :mod:`repro.relational.csvio` -- plain-text import/export.
"""

from repro.relational.domains import Domain, coerce_value, value_in_domain
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    SchemaError,
)
from repro.relational.tuples import Tuple
from repro.relational.predicates import (
    And,
    Comparison,
    Condition,
    FALSE,
    Not,
    Or,
    TRUE,
    attr,
    const,
    var,
)
from repro.relational.database import Database, Relation
from repro.relational.csvio import (
    load_database,
    load_relation_csv,
    dump_relation_csv,
)

__all__ = [
    "Domain",
    "coerce_value",
    "value_in_domain",
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "SchemaError",
    "Tuple",
    "Condition",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "attr",
    "const",
    "var",
    "Relation",
    "Database",
    "load_database",
    "load_relation_csv",
    "dump_relation_csv",
]
