"""Seeded chaos layer for exercising the fault-tolerant batch pipeline.

Real deployments of a repair shop see three families of trouble that
unit tests rarely reproduce: corrupt numeric cells arriving from the
acquisition stage (NaN from a failed OCR parse, ``inf`` from a
division during normalisation, absurd magnitudes from a shifted
decimal point), worker processes dying under them (OOM killer,
segfaulting native code), and workers simply hanging.  This module
injects all three *deterministically* so the chaos test suite is
reproducible byte-for-byte from a seed.

Every injection decision is a pure function of
``(seed, event, task index, attempt)`` through SHA-256 -- no global
RNG, no ordering sensitivity, and crucially **attempt-dependent**: a
task killed on attempt 0 may survive attempt 1, which is exactly the
transient-crash shape the retry machinery exists for.  Setting a rate
to ``1.0`` makes the fault permanent, which is how the quarantine
path is driven.

Two deployment modes, mirroring :func:`repro.repair.batch.repair_batch`:

- **pool mode** (``in_pool=True``): a "kill" is a real
  ``SIGKILL`` to the worker's own pid -- the parent observes a genuine
  ``BrokenProcessPool``, not a simulation; a "hang" is a plain
  ``time.sleep`` for the watchdog to catch.
- **sequential mode** (``in_pool=False``): there is no process to
  kill, so a "kill" raises
  :class:`~repro.diagnostics.WorkerCrashError` for the in-process
  retry loop, and a "hang" sleeps cooperatively.

Input corruption is separate from worker chaos: callers build a
corrupted corpus up front with :func:`corrupt_database` /
:func:`corrupt_tasks` so the *same* corrupted inputs flow through both
an interrupted and an uninterrupted run.

A fourth fault family drives the infeasibility-forensics machinery:
:func:`inject_contradiction` plants operator pins that contradict one
deterministically-chosen ground constraint, so the task is provably
unrepairable *and the injector knows the exact conflict* -- the IIS
and relaxation tests verify the explanation against the injection
record rather than against themselves.

A sixth family drives the durable-service machinery
(:mod:`repro.repair.service` / :mod:`repro.repair.store`):
``sick_backend``/``sick_rate`` make dispatches to one named MILP
backend die (:func:`chaos_backend_dispatch` raises
:class:`~repro.diagnostics.WorkerCrashError`, the same shape a
segfaulting HiGHS produces), which is what opens a circuit breaker;
and :func:`corrupt_store_row` / :func:`torn_write` damage the
content-addressed result store on disk -- a payload overwritten under
a stale checksum, and a torn trailing write -- so the integrity-scan
and self-healing paths are exercised against *real* corruption, not
mocks.

A fifth family drives the certification machinery
(:mod:`repro.milp.certify`): :func:`inject_numeric_noise` perturbs a
MILP with numerically hostile transformations that **provably preserve
the answer** -- power-of-two row scaling (exact in binary floating
point), a ``1 + 2^-40`` relative nudge on a big-M-sized coefficient
(far below the feasibility tolerance), and an RHS shift that straddles
the solver's tolerance band.  A certified solver must still return the
same repairs; a drifting one trips the exact-arithmetic check and the
numerics governor's degradation ladder.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constraints.grounding import Cell, GroundConstraint, ground_constraints
from repro.diagnostics import OVERFLOW_LIMIT, WorkerCrashError
from repro.relational.database import Database


@dataclass(frozen=True)
class FaultConfig:
    """What to break, how often, keyed off one seed.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    ``(event, index, attempt)``; ``0.0`` disables an injection point
    and ``1.0`` makes it fire every time.
    """

    seed: int = 0
    #: Corrupt a measure cell to NaN with this per-cell probability.
    nan_rate: float = 0.0
    #: Corrupt a measure cell to +inf with this per-cell probability.
    inf_rate: float = 0.0
    #: Corrupt a measure cell to an overflow magnitude.
    overflow_rate: float = 0.0
    #: SIGKILL the worker (pool) / raise WorkerCrashError (sequential)
    #: at task start.
    kill_rate: float = 0.0
    #: Hang the worker at task start for ``hang_seconds``.
    hang_rate: float = 0.0
    hang_seconds: float = 30.0
    #: Optional scoping: when set, kill/hang only fire for these task
    #: indices / dispatch attempts.  ``kill_rate=1.0,
    #: kill_tasks={3}, kill_attempts={0}`` kills exactly one dispatch
    #: -- the surgical strike the recovery tests are built on.
    kill_tasks: Optional[frozenset] = None
    kill_attempts: Optional[frozenset] = None
    hang_tasks: Optional[frozenset] = None
    hang_attempts: Optional[frozenset] = None
    #: Plant contradictory operator pins (an unrepairable task with a
    #: known exact conflict) with this per-task probability.
    contradiction_rate: float = 0.0
    contradiction_tasks: Optional[frozenset] = None
    #: Perturb a task's MILP with numerically hostile (but
    #: answer-preserving) noise with this per-task probability -- see
    #: :func:`inject_numeric_noise`.
    numeric_noise_rate: float = 0.0
    #: Sick-backend fault: dispatches routed to this MILP backend die
    #: with this probability (a worker-crash shape, like segfaulting
    #: native code inside one solver only).  ``None`` disables the
    #: family regardless of the rate.
    sick_backend: Optional[str] = None
    sick_rate: float = 0.0
    sick_tasks: Optional[frozenset] = None
    sick_attempts: Optional[frozenset] = None

    def chance(self, event: str, index: int, attempt: int = 0) -> float:
        """The deterministic uniform draw for one injection decision."""
        payload = f"{self.seed}:{event}:{index}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def should(self, event: str, rate: float, index: int, attempt: int = 0) -> bool:
        return rate > 0.0 and self.chance(event, index, attempt) < rate


def chaos_before_task(
    config: Optional[FaultConfig],
    index: int,
    attempt: int,
    *,
    in_pool: bool,
) -> None:
    """Run the worker-chaos injection points for one task dispatch.

    Called at the top of each task execution, before any solver work.
    Kill is checked before hang so a ``kill_rate=1.0`` configuration
    never burns wall time sleeping first.
    """
    if config is None:
        return
    if (
        (config.kill_tasks is None or index in config.kill_tasks)
        and (config.kill_attempts is None or attempt in config.kill_attempts)
        and config.should("kill", config.kill_rate, index, attempt)
    ):
        if in_pool:
            # A real, unhandleable death: the parent must recover via
            # BrokenProcessPool + sentinel files, exactly as it would
            # from the OOM killer.
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerCrashError(
            f"injected worker crash (task {index}, attempt {attempt})",
            index=index,
            attempt=attempt,
        )
    if (
        (config.hang_tasks is None or index in config.hang_tasks)
        and (config.hang_attempts is None or attempt in config.hang_attempts)
        and config.should("hang", config.hang_rate, index, attempt)
    ):
        time.sleep(config.hang_seconds)


def chaos_backend_dispatch(
    config: Optional[FaultConfig],
    backend: str,
    index: int,
    attempt: int,
) -> None:
    """Kill this dispatch iff the sick-backend fault fires for it.

    Called by the repair service just before handing a task to a
    chosen MILP backend.  A strike raises
    :class:`~repro.diagnostics.WorkerCrashError` -- the same failure
    shape a segfault in that backend's native code produces -- so the
    caller's circuit breaker sees a genuine backend death, while every
    *other* backend keeps working (that asymmetry is the whole point:
    traffic must shift, not stop).
    """
    if config is None or config.sick_backend is None:
        return
    if backend != config.sick_backend:
        return
    if config.sick_tasks is not None and index not in config.sick_tasks:
        return
    if config.sick_attempts is not None and attempt not in config.sick_attempts:
        return
    if config.should("sick", config.sick_rate, index, attempt):
        raise WorkerCrashError(
            f"injected sick backend {backend!r} (task {index}, "
            f"attempt {attempt})",
            backend=backend,
            index=index,
            attempt=attempt,
        )


def corrupt_store_row(
    store_path: "os.PathLike",
    *,
    seed: int = 0,
    index: int = 0,
) -> Optional[str]:
    """Flip one result-store row's payload under its stale checksum.

    Opens the SQLite store file directly (no :class:`ResultStore`
    mediation -- real bit rot does not use the API either), picks one
    row deterministically from ``(seed, index)`` and overwrites its
    payload with garbage while leaving the recorded checksum alone.
    Returns the damaged row's key, or ``None`` when the store is
    empty.  A correct store must *evict and re-solve* this row, never
    serve it.
    """
    import sqlite3

    config = FaultConfig(seed=seed)
    with sqlite3.connect(store_path) as connection:
        keys = [
            row[0]
            for row in connection.execute(
                "SELECT key FROM results ORDER BY key"
            ).fetchall()
        ]
        if not keys:
            return None
        victim = keys[int(config.chance("store-corrupt", index) * len(keys)) % len(keys)]
        connection.execute(
            "UPDATE results SET payload=? WHERE key=?",
            ('{"bitrot": ' + str(seed) + "}", victim),
        )
    return victim


def torn_write(path: "os.PathLike", *, seed: int = 0, n_bytes: int = 64) -> int:
    """Append deterministic garbage to *path*, simulating a torn write.

    The shape of a crash mid-append: the file ends in bytes that are
    not a complete record.  Applied to a checkpoint journal this is
    the torn tail the loader must discard; applied to a result store's
    WAL sidecar it is an unfinished frame SQLite's recovery must roll
    back.  Returns the number of bytes appended.
    """
    config = FaultConfig(seed=seed)
    garbage = bytes(
        int(config.chance("torn-byte", position) * 256) % 256
        for position in range(n_bytes)
    )
    with open(path, "ab") as handle:
        handle.write(garbage)
    return len(garbage)


def _poison_cell(
    database: Database, relation: str, tuple_id: int, attribute: str, value: float
) -> None:
    """Plant *value* in a cell, bypassing domain coercion.

    ``Database.set_value`` coerces through the schema's domains, which
    (correctly) reject NaN/inf -- but real corruption does not ask the
    schema for permission: a buggy normaliser or a raw in-memory
    overwrite hands the repair stage a non-number that never crossed
    the validated ingestion path.  This helper reproduces that shape,
    which is precisely what the acquisition -> repair boundary check
    (:func:`repro.diagnostics.ensure_finite_cell`) exists to catch.
    """
    from repro.relational.tuples import Tuple

    store = database.relation(relation)
    old = store.get(tuple_id)
    position = old.schema.position_of(attribute)
    values = list(old.values)
    values[position] = value
    poisoned = object.__new__(Tuple)
    object.__setattr__(poisoned, "schema", old.schema)
    object.__setattr__(poisoned, "values", tuple(values))
    object.__setattr__(poisoned, "tuple_id", tuple_id)
    store.replace(tuple_id, poisoned)


def corrupt_database(database: Database, config: FaultConfig, index: int = 0) -> Database:
    """A copy of *database* with seeded NaN/inf/overflow cells.

    Each measure cell independently draws one corruption event; NaN
    wins over inf wins over overflow when several rates are set.  The
    cell ordering comes from ``database.measure_cells()`` so the same
    ``(seed, index)`` always corrupts the same cells.

    Note: poisoned tuples deliberately bypass domain validation (see
    :func:`_poison_cell`) and therefore cannot survive pickling (the
    rebuild re-coerces); corrupt the corpus *before* batching and run
    corruption scenarios sequentially, or the pool transport itself
    rejects them first.
    """
    corrupted = database.copy()
    for cell_position, cell in enumerate(corrupted.measure_cells()):
        relation, tuple_id, attribute = cell
        key = index * 1_000_003 + cell_position
        if config.should("nan", config.nan_rate, key):
            _poison_cell(corrupted, relation, tuple_id, attribute, float("nan"))
        elif config.should("inf", config.inf_rate, key):
            _poison_cell(corrupted, relation, tuple_id, attribute, float("inf"))
        elif config.should("overflow", config.overflow_rate, key):
            _poison_cell(
                corrupted, relation, tuple_id, attribute, OVERFLOW_LIMIT * 10.0
            )
    return corrupted


def corrupt_tasks(tasks: Sequence["RepairTask"], config: FaultConfig) -> List["RepairTask"]:  # noqa: F821
    """Corrupted copies of batch tasks (task ``i`` uses stream ``i``)."""
    from repro.repair.batch import RepairTask

    return [
        RepairTask(
            database=corrupt_database(task.database, config, index),
            constraints=task.constraints,
            name=task.name,
            backend=task.backend,
            objective=task.objective,
            weights=task.weights,
            pins=task.pins,
        )
        for index, task in enumerate(tasks)
    ]


@dataclass(frozen=True)
class ContradictionInjection:
    """The exact conflict :func:`inject_contradiction` planted.

    The pins fix every cell of ``ground`` to values that violate it, so
    the system ``{ground} + pins`` is infeasible and -- because freeing
    any single pinned cell lets the solver satisfy the constraint again
    -- it is also irreducible.  An IIS extractor that works must name
    exactly this set; a relaxation must violate exactly ``ground``.
    """

    ground: GroundConstraint
    pins: Dict[Cell, float] = field(default_factory=dict)
    #: The one cell whose pinned value was pushed off its current value.
    bumped: Cell = ("", 0, "")
    #: How far the pins leave ``ground`` violated.
    amount: float = 0.0

    def conflict_cells(self) -> List[Cell]:
        return sorted(self.pins)


def inject_contradiction(
    database: Database,
    constraints: Sequence["AggregateConstraint"],  # noqa: F821
    *,
    seed: int = 0,
    index: int = 0,
) -> ContradictionInjection:
    """Build pins that contradict one ground constraint of *database*.

    Grounds the constraint system, deterministically picks one ground
    row (pure function of ``(seed, index)``), pins all of its cells to
    their current values, then bumps the pin on one cell just far
    enough that the constraint cannot hold -- ``>`` for LE, ``<`` for
    GE, ``!=`` for EQ.  The returned record is the ground truth the
    forensics tests compare the extractor's answer against.
    """
    system = [
        ground
        for ground in ground_constraints(constraints, database, require_steady=True)
        if ground.coefficients
    ]
    if not system:
        raise ValueError("no ground constraint with measure cells to contradict")
    config = FaultConfig(seed=seed)
    ground = system[int(config.chance("contradict-row", index) * len(system)) % len(system)]
    cells = sorted(ground.coefficients)
    bumped = cells[int(config.chance("contradict-cell", index) * len(cells)) % len(cells)]

    values = {
        cell: float(database.get_value(*cell)) for cell in cells
    }
    lhs = ground.constant + sum(
        coefficient * values[cell] for cell, coefficient in ground.coefficients.items()
    )
    margin = max(1.0, abs(ground.rhs))
    # Target LHS strictly outside the feasible side of the relop.
    target = ground.rhs - margin if ground.relop == ">=" else ground.rhs + margin
    coefficient = ground.coefficients[bumped]
    pins = dict(values)
    pins[bumped] = values[bumped] + (target - lhs) / coefficient
    return ContradictionInjection(
        ground=ground, pins=pins, bumped=bumped, amount=margin
    )


#: Row-scale factor for injected ill-conditioning.  A power of two, so
#: multiplying every coefficient and the RHS is *exact* in binary
#: floating point: the scaled row has the identical feasible set, only
#: worse conditioning.
NOISE_ROW_SCALE = 2.0 ** 20

#: Relative nudge applied to one large coefficient: ``1 + 2^-40`` is a
#: ~1e-12 relative perturbation -- orders of magnitude below the 1e-6
#: feasibility tolerance, so the answer is unchanged, but the row
#: becomes near-degenerate against its unperturbed twin constraints.
NOISE_NEAR_DEGENERATE = 1.0 + 2.0 ** -40

#: RHS shift that lands inside the solver's tolerance band (just under
#: the 1e-6 feasibility tolerance), exercising exactly the straddle
#: region where naive float comparisons flip.
NOISE_RHS_STRADDLE = 5e-7


@dataclass(frozen=True)
class NumericNoiseInjection:
    """One perturbation planted by :func:`inject_numeric_noise`."""

    #: "row-scale" | "near-degenerate" | "rhs-straddle"
    kind: str
    #: Index of the perturbed constraint row in the model.
    row: int
    #: Name of the perturbed constraint ("" when unnamed).
    constraint: str
    #: The factor (row-scale / near-degenerate) or shift (rhs-straddle).
    amount: float


def inject_numeric_noise(
    model: "MILPModel",  # noqa: F821
    *,
    seed: int = 0,
    index: int = 0,
) -> Tuple["MILPModel", List[NumericNoiseInjection]]:  # noqa: F821
    """A noisy copy of *model* whose exact answer is unchanged.

    Applies all three noise families to deterministically-chosen rows
    (pure function of ``(seed, index)``): scales one row by
    :data:`NOISE_ROW_SCALE` (power of two -- bit-exact, so the feasible
    set is untouched), multiplies the largest-magnitude coefficient of
    another row by :data:`NOISE_NEAR_DEGENERATE` (~1e-12 relative), and
    shifts a third row's RHS by :data:`NOISE_RHS_STRADDLE` *into* the
    feasible side (LE up, GE down; EQ rows are skipped, a shifted EQ
    would genuinely change the answer).  The original model is never
    mutated.  Returns the noisy model plus the injection record the
    chaos tests verify certification against.
    """
    from repro.milp.model import Constraint, MILPModel, Sense

    noisy = MILPModel(model.name)
    for variable in model.variables:
        noisy.add_variable(
            variable.name, variable.var_type, variable.lower, variable.upper
        )
    for constraint in model.constraints:
        noisy.add_constraint(
            Constraint(
                constraint.expr.copy(),
                constraint.sense,
                constraint.rhs,
                constraint.name,
            )
        )
    noisy.set_objective(model.objective)

    injections: List[NumericNoiseInjection] = []
    rows = noisy.constraints
    if not rows:
        return noisy, injections
    config = FaultConfig(seed=seed)

    def pick(event: str, candidates: List[int]) -> int:
        draw = config.chance(event, index)
        return candidates[int(draw * len(candidates)) % len(candidates)]

    all_rows = list(range(len(rows)))

    # Family 1: ill-conditioned row scaling (exact).
    row = pick("noise-row-scale", all_rows)
    target = rows[row]
    for var_index in list(target.expr.coefficients):
        target.expr.coefficients[var_index] *= NOISE_ROW_SCALE
    target.rhs *= NOISE_ROW_SCALE
    injections.append(
        NumericNoiseInjection("row-scale", row, target.name, NOISE_ROW_SCALE)
    )

    # Family 2: near-degenerate nudge on the row's big-M-sized
    # coefficient (the largest magnitude present).
    row = pick("noise-near-degenerate", all_rows)
    target = rows[row]
    if target.expr.coefficients:
        var_index = max(
            target.expr.coefficients,
            key=lambda i: (abs(target.expr.coefficients[i]), -i),
        )
        target.expr.coefficients[var_index] *= NOISE_NEAR_DEGENERATE
        injections.append(
            NumericNoiseInjection(
                "near-degenerate", row, target.name, NOISE_NEAR_DEGENERATE
            )
        )

    # Family 3: tolerance-straddling RHS shift, always loosening (into
    # the feasible side) so the optimal repairs are preserved.
    inequality_rows = [
        i for i in all_rows if rows[i].sense is not Sense.EQ
    ]
    if inequality_rows:
        row = pick("noise-rhs-straddle", inequality_rows)
        target = rows[row]
        shift = (
            NOISE_RHS_STRADDLE
            if target.sense is Sense.LE
            else -NOISE_RHS_STRADDLE
        )
        target.rhs += shift
        injections.append(
            NumericNoiseInjection("rhs-straddle", row, target.name, shift)
        )
    return noisy, injections


def contradict_tasks(
    tasks: Sequence["RepairTask"], config: FaultConfig  # noqa: F821
) -> Tuple[List["RepairTask"], Dict[int, ContradictionInjection]]:  # noqa: F821
    """Tasks with seeded contradictory pins, plus the injection record.

    Task ``i`` is hit when ``contradiction_rate`` fires for
    ``(seed, "contradict", i)`` (scoped by ``contradiction_tasks``);
    its pins gain the contradiction's pins, and entry ``i`` of the
    returned mapping records the planted conflict for verification.
    Unhit tasks pass through unchanged.
    """
    from repro.repair.batch import RepairTask

    injected: List[RepairTask] = []
    record: Dict[int, ContradictionInjection] = {}
    for index, task in enumerate(tasks):
        hit = (
            config.contradiction_tasks is None
            or index in config.contradiction_tasks
        ) and config.should("contradict", config.contradiction_rate, index)
        if not hit:
            injected.append(task)
            continue
        injection = inject_contradiction(
            task.database, task.constraints, seed=config.seed, index=index
        )
        pins = dict(task.pins or {})
        pins.update(injection.pins)
        injected.append(
            RepairTask(
                database=task.database,
                constraints=task.constraints,
                name=task.name,
                backend=task.backend,
                objective=task.objective,
                weights=task.weights,
                pins=pins,
            )
        )
        record[index] = injection
    return injected, record
