"""Fixed-width ASCII tables (the benches' output format)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Render a float compactly (integers lose the trailing ``.0``)."""
    if value != value:  # NaN
        return "nan"
    if float(value).is_integer() and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.{digits}f}"


def _render_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format_float(value)
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """A boxed fixed-width table::

        +------+-------+
        | k    | value |
        +------+-------+
        | 1    | 0.500 |
        +------+-------+
    """
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row} has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(fill: str = "-", joint: str = "+") -> str:
        return joint + joint.join(fill * (w + 2) for w in widths) + joint

    def format_row(cells: Sequence[str]) -> str:
        padded = [f" {cell.ljust(widths[i])} " for i, cell in enumerate(cells)]
        return "|" + "|".join(padded) + "|"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line())
    parts.append(format_row(list(headers)))
    parts.append(line())
    for row in rendered:
        parts.append(format_row(row))
    parts.append(line())
    return "\n".join(parts)
