"""Repair-quality and human-intervention metrics.

The paper's implicit quality criterion is "did the suggested repair
match the source document" (the operator's acceptance test) and its
efficiency criterion is "how much human intervention was needed".
These are made precise here:

- **cell precision** -- of the cells a repair changed, how many were
  actually corrupted;
- **cell recall** -- of the corrupted cells, how many the repair
  changed;
- **value accuracy** -- of the corrupted cells, how many the repair
  restored to the exact source value;
- **exact** -- the repaired instance equals the ground truth;
- **intervention cost** -- values a human had to look at, compared
  against the "check everything" baseline (every value of the
  document) and the "check violated constraints" baseline (every value
  involved in a violated ground constraint -- the pre-repair state of
  the art the introduction describes);
- **mis-repair rate** -- of the repair cascade's *closed-form* fixes
  (tiers T1/T2, which claim to reconstruct the source value of a
  specific cell), how many silently diverged from the OCR channel's
  injected ground truth.  T3/T4 fixes are excluded by design: they
  promise card-minimality, not source fidelity, and a card-minimal
  repair may legitimately differ from the source document (the paper's
  first-proposal-exact rate is below 1 for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.constraints.grounding import Cell, Violation
from repro.relational.database import Database, diff_databases
from repro.repair.updates import Repair

#: One injected error, as produced by ``inject_value_errors``.
InjectedError = PyTuple[Cell, float, float]


@dataclass(frozen=True)
class RepairQuality:
    """Quality of one repair against known injected errors."""

    n_injected: int
    n_changed: int
    true_positive_cells: int
    exact_values: int
    exact: bool

    @property
    def cell_precision(self) -> float:
        if self.n_changed == 0:
            return 1.0 if self.n_injected == 0 else 0.0
        return self.true_positive_cells / self.n_changed

    @property
    def cell_recall(self) -> float:
        if self.n_injected == 0:
            return 1.0
        return self.true_positive_cells / self.n_injected

    @property
    def cell_f1(self) -> float:
        precision = self.cell_precision
        recall = self.cell_recall
        if precision + recall == 0.0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    @property
    def value_accuracy(self) -> float:
        """Fraction of corrupted cells restored to the exact source value."""
        if self.n_injected == 0:
            return 1.0
        return self.exact_values / self.n_injected


def repair_quality(
    repair: Repair,
    injected: Sequence[InjectedError],
    *,
    corrupted: Database,
    ground_truth: Database,
) -> RepairQuality:
    """Score *repair* (computed on *corrupted*) against the truth."""
    truth_of: Dict[Cell, float] = {cell: old for cell, old, _ in injected}
    changed_cells = set(repair.cells())
    true_positives = len(changed_cells & set(truth_of))
    exact_values = 0
    for cell, true_value in truth_of.items():
        update = repair.update_for(cell)
        if update is not None and float(update.new_value) == float(true_value):
            exact_values += 1
    from repro.repair.updates import apply_repair

    repaired = apply_repair(corrupted, repair)
    return RepairQuality(
        n_injected=len(injected),
        n_changed=repair.cardinality,
        true_positive_cells=true_positives,
        exact_values=exact_values,
        exact=repaired == ground_truth,
    )


@dataclass(frozen=True)
class InterventionCost:
    """Human effort of one acquisition, in values-inspected units."""

    #: values the DART validation loop asked the operator to review
    dart_inspections: int
    #: the "verify every acquired value" baseline
    check_everything: int
    #: the "inspect all values involved in violated constraints" baseline
    check_violated: int

    @property
    def saving_vs_everything(self) -> float:
        if self.check_everything == 0:
            return 0.0
        return 1.0 - self.dart_inspections / self.check_everything

    @property
    def saving_vs_violated(self) -> float:
        if self.check_violated == 0:
            return 0.0
        return 1.0 - self.dart_inspections / self.check_violated


def intervention_cost(
    dart_inspections: int,
    database: Database,
    violations: Sequence[Violation],
) -> InterventionCost:
    """Build the cost comparison for one processed document."""
    violated_cells: Set[Cell] = set()
    for violation in violations:
        violated_cells.update(violation.ground.coefficients)
    return InterventionCost(
        dart_inspections=dart_inspections,
        check_everything=len(database.measure_cells()),
        check_violated=len(violated_cells),
    )


# ---------------------------------------------------------------------------
# Mis-repair rate (cascade honesty metric)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MisrepairReport:
    """Closed-form cascade fixes audited against injected ground truth.

    A closed-form fix (tier T1 confusion inversion or T2 back-solve)
    claims to have reconstructed *the source value* of one specific
    cell.  That claim is falsifiable when the corruption was injected:
    the fix is a **mis-repair** when it touched a cell that was never
    corrupted, or wrote a value different from the cell's source value.

    Higher tiers are deliberately out of scope -- T3/T4 certify
    cardinality-minimality, not source fidelity, so disagreeing with
    the source there is not a lie (see :data:`misrepair_rate`).
    """

    #: closed-form (T1/T2) fixes the cascade emitted
    n_closed_form: int
    #: of those, fixes contradicting the injected ground truth
    n_misrepairs: int
    #: the offending cells, for diagnostics
    misrepaired_cells: PyTuple[Cell, ...] = ()

    @property
    def misrepair_rate(self) -> float:
        """Fraction of closed-form fixes that were wrong (0.0 if none)."""
        if self.n_closed_form == 0:
            return 0.0
        return self.n_misrepairs / self.n_closed_form


def misrepair_report(
    report: "CascadeReport",  # noqa: F821 -- repro.repair.cascade
    injected: Sequence[InjectedError],
) -> MisrepairReport:
    """Audit a cascade's closed-form fixes against *injected* errors.

    *report* is the :class:`~repro.repair.cascade.CascadeReport` from
    ``run_cascade`` (or ``RepairOutcome.cascade``); *injected* is the
    ``(cell, old, new)`` list from
    :func:`~repro.acquisition.ocr.inject_value_errors` -- ``old`` being
    the source value a truthful closed-form fix must restore.
    """
    truth_of: Dict[Cell, float] = {cell: old for cell, old, _ in injected}
    n_closed_form = 0
    offenders: List[Cell] = []
    for fix in report.closed_form_fixes():
        n_closed_form += 1
        truth = truth_of.get(fix.cell)
        if truth is None or float(fix.new_value) != float(truth):
            offenders.append(fix.cell)
    return MisrepairReport(
        n_closed_form=n_closed_form,
        n_misrepairs=len(offenders),
        misrepaired_cells=tuple(offenders),
    )


def misrepair_rate(
    report: "CascadeReport",  # noqa: F821
    injected: Sequence[InjectedError],
) -> float:
    """Shorthand for ``misrepair_report(report, injected).misrepair_rate``."""
    return misrepair_report(report, injected).misrepair_rate
