"""Evaluation kit: metrics, sweeps and ASCII reporting for the benches.

- :mod:`repro.evalkit.metrics` -- repair quality (cell precision /
  recall / value accuracy / exactness) against known injected errors,
  and human-intervention accounting;
- :mod:`repro.evalkit.runner` -- seeded parameter sweeps with
  mean/stddev aggregation;
- :mod:`repro.evalkit.tables` -- fixed-width ASCII tables, the output
  format every bench prints its series in.
"""

from repro.evalkit.metrics import (
    InterventionCost,
    MisrepairReport,
    RepairQuality,
    intervention_cost,
    misrepair_rate,
    misrepair_report,
    repair_quality,
)
from repro.evalkit.runner import SweepCell, aggregate, sweep
from repro.evalkit.tables import ascii_table, format_float

__all__ = [
    "RepairQuality",
    "repair_quality",
    "InterventionCost",
    "intervention_cost",
    "MisrepairReport",
    "misrepair_report",
    "misrepair_rate",
    "sweep",
    "aggregate",
    "SweepCell",
    "ascii_table",
    "format_float",
]
