"""Seeded parameter sweeps with simple aggregation.

Every bench follows the same shape: for each parameter value, run the
experiment over many seeds, aggregate each measured quantity, print a
row.  :func:`sweep` runs the grid; :func:`aggregate` folds the per-seed
measurement dictionaries into mean / standard deviation pairs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple as PyTuple

#: One experiment run returns a flat mapping of measurement name -> number.
Measurements = Mapping[str, float]


@dataclass
class SweepCell:
    """All runs for one parameter value."""

    parameter: Any
    runs: List[Dict[str, float]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: ``(seed, error message)`` for runs skipped under ``on_error="skip"``.
    failures: List[PyTuple[int, str]] = field(default_factory=list)

    def mean(self, name: str) -> float:
        values = [run[name] for run in self.runs if name in run]
        return sum(values) / len(values) if values else math.nan

    def std(self, name: str) -> float:
        values = [run[name] for run in self.runs if name in run]
        if len(values) < 2:
            return 0.0
        mu = sum(values) / len(values)
        return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))

    def rate(self, name: str) -> float:
        """Mean of a 0/1 measurement = success rate."""
        return self.mean(name)


#: Marker for a grid point skipped under ``on_error="skip"``: a run
#: dict with only this key, so aggregation (which keys by measurement
#: name) never mixes a failed run into a mean.
_FAILURE_KEY = "__sweep_error__"


def _sweep_job(payload) -> Dict[str, Any]:
    run, parameter, seed, on_error = payload
    try:
        return {k: float(v) for k, v in dict(run(parameter, seed)).items()}
    except Exception as exc:
        if on_error != "skip":
            raise
        return {_FAILURE_KEY: f"seed {seed}: {type(exc).__name__}: {exc}"}


def _fold(cell: SweepCell, seed: int, result: Dict[str, Any]) -> None:
    if _FAILURE_KEY in result:
        cell.failures.append((seed, result[_FAILURE_KEY]))
    else:
        cell.runs.append(result)


def sweep(
    parameters: Sequence[Any],
    seeds: Iterable[int],
    run: Callable[[Any, int], Measurements],
    *,
    workers: Optional[int] = None,
    chunksize: int = 1,
    on_error: str = "raise",
) -> List[SweepCell]:
    """Run ``run(parameter, seed)`` over the full grid.

    With ``workers >= 1`` the grid points fan out over a process pool
    -- *run* must then be a picklable top-level function.  Results are
    folded back into cells in grid order, so aggregates are identical
    to the sequential run; per-cell ``elapsed_seconds`` then reports
    the cell's share of the parallel wall clock, not solver time.

    ``on_error`` controls per-run fault tolerance: ``"raise"`` (the
    default) propagates the first failure; ``"skip"`` records the
    failure on the cell's :attr:`~SweepCell.failures` and keeps
    sweeping -- a long benchmark survives one degenerate grid point.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    seed_list = list(seeds)
    cells: List[SweepCell] = []
    if workers and workers >= 1:
        from concurrent.futures import ProcessPoolExecutor

        payloads = [
            (run, parameter, seed, on_error)
            for parameter in parameters
            for seed in seed_list
        ]
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_sweep_job, payloads, chunksize=chunksize))
        elapsed = time.perf_counter() - started
        per_cell = elapsed / len(parameters) if parameters else 0.0
        for i, parameter in enumerate(parameters):
            cell = SweepCell(parameter=parameter)
            for j, seed in enumerate(seed_list):
                _fold(cell, seed, results[i * len(seed_list) + j])
            cell.elapsed_seconds = per_cell
            cells.append(cell)
        return cells
    for parameter in parameters:
        cell = SweepCell(parameter=parameter)
        started = time.perf_counter()
        for seed in seed_list:
            _fold(cell, seed, _sweep_job((run, parameter, seed, on_error)))
        cell.elapsed_seconds = time.perf_counter() - started
        cells.append(cell)
    return cells


def aggregate(
    cells: Sequence[SweepCell], names: Sequence[str]
) -> List[PyTuple[Any, Dict[str, PyTuple[float, float]]]]:
    """``[(parameter, {name: (mean, std)})]`` for the named measurements."""
    summary: List[PyTuple[Any, Dict[str, PyTuple[float, float]]]] = []
    for cell in cells:
        summary.append(
            (cell.parameter, {name: (cell.mean(name), cell.std(name)) for name in names})
        )
    return summary
