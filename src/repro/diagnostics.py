"""Typed failure taxonomy for the acquisition -> constraints -> repair path.

The pipeline used to surface failures as whatever exception happened to
escape (``ValueError`` from a float conversion, ``RuntimeError`` from a
solver, a bare ``AssertionError`` from numpy).  For an operator tool
that is useless: the batch engine cannot decide whether to retry, fall
back, or quarantine without knowing *what kind* of failure it saw, and
the CLI cannot render an actionable message from a stack trace.

Every diagnostic below carries

- a stable machine-readable ``code`` (the batch report and the
  checkpoint journal store it verbatim),
- a ``details`` mapping of structured context (cell coordinates, the
  offending value, the solver status, ...),
- the standard message for humans.

The taxonomy:

``InvalidValueError``
    A numeric cell is NaN, +/-inf, or overflows the magnitude the MILP
    lowering can represent.  Raised at the acquisition -> repair
    boundary with the exact ``(relation, tuple_id, attribute)``
    coordinates, *before* the value can poison a solve.
``DegenerateTableError``
    The instance has no measure cells to repair (empty tables, or
    constraints that ground to nothing).
``MalformedConstraintError``
    A constraint failed validation (non-steady, unknown attribute,
    parse error) -- the designer's metadata is wrong, not the data.
``InfeasibleSystemError``
    No repair exists: the ground system is infeasible even after Big-M
    escalation.  ``repro.repair.engine.UnrepairableError`` subclasses
    this for backwards compatibility.
``UnboundedObjectiveError``
    The MILP relaxation is unbounded -- a modelling bug (a measure
    variable escaped its Big-M box), never a data problem.
``SolveTimeoutError``
    A wall-clock or node budget expired before any feasible incumbent
    was found.  (With an incumbent the solver returns a
    ``feasible_gap`` solution instead of raising -- see
    :mod:`repro.milp.branch_and_bound`.)
``WorkerCrashError``
    A batch worker process died (crash, OOM kill) while running a
    task; raised in-process by the sequential path when fault
    injection simulates the same event.
``NumericInstabilityError``
    Every rung of the numerics degradation ladder produced an answer
    that failed exact-arithmetic certification (see
    :mod:`repro.milp.certify`).  The details carry the per-rung
    certificate failures; retrying on the alternate backend is allowed
    (a genuinely different code path may still certify).
``StoreCorruptError``
    The durable result store (:mod:`repro.repair.store`) detected
    damage it could not transparently self-heal -- a bad row is
    normally just evicted and re-solved, so this surfaces only when
    the store *file* itself is unusable.  Always retryable: the store
    rebuilds itself and the solve proceeds cacheless.
``OverloadedError``
    The repair service's intake queue is above its admission watermark
    (:mod:`repro.repair.service`).  Carries ``retry_after`` seconds in
    its details -- the caller should back off and resubmit, never
    block: bounded backpressure instead of unbounded memory.
``BreakerOpenError``
    Every backend that could run the task currently has an open
    circuit breaker (:mod:`repro.repair.service`): recent dispatches
    to it failed, and the cooldown has not elapsed.  Transient by
    construction -- a half-open probe re-closes the breaker as soon as
    the backend recovers.

Retry policy lives with the taxonomy: :func:`is_retryable_on_fallback`
says whether retrying a failure on the alternate MILP backend can
possibly change the outcome.  Input errors (invalid values, degenerate
tables, malformed constraints) are deterministic properties of the
task -- retrying them is pure waste.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

#: Magnitude above which a cell value is declared an overflow: the
#: practical Big-M machinery squares such values into ``inf`` and the
#: dense lowering loses all precision long before.
OVERFLOW_LIMIT = 1e100


class DiagnosticError(Exception):
    """Base of the typed failure taxonomy.

    ``code`` is the stable identifier stored in batch reports and
    checkpoint journals; ``details`` holds structured context.
    """

    code = "error"

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.details: Dict[str, Any] = details

    def as_dict(self) -> Dict[str, Any]:
        return {"code": self.code, "message": str(self), "details": self.details}


class InvalidValueError(DiagnosticError):
    """A NaN/inf/overflow numeric cell at the acquisition boundary."""

    code = "invalid_value"

    def __init__(
        self,
        message: str,
        *,
        relation: Optional[str] = None,
        tuple_id: Optional[int] = None,
        attribute: Optional[str] = None,
        value: Optional[float] = None,
    ) -> None:
        super().__init__(
            message,
            relation=relation,
            tuple_id=tuple_id,
            attribute=attribute,
            value=None if value is None else repr(value),
        )
        self.cell: Tuple[Optional[str], Optional[int], Optional[str]] = (
            relation, tuple_id, attribute,
        )
        self.value = value


class DegenerateTableError(DiagnosticError):
    """No measure cells: nothing the repair machinery could change."""

    code = "degenerate_table"


class MalformedConstraintError(DiagnosticError):
    """A constraint is unusable (non-steady, bad reference, parse error)."""

    code = "malformed_constraint"


class InfeasibleSystemError(DiagnosticError):
    """No repair exists within the escalated Big-M bounds."""

    code = "infeasible_system"


class UnboundedObjectiveError(DiagnosticError):
    """The MILP is unbounded -- a modelling invariant was violated."""

    code = "unbounded_objective"


class SolveTimeoutError(DiagnosticError):
    """A time/node budget expired with no feasible incumbent to return."""

    code = "timeout"


class WorkerCrashError(DiagnosticError):
    """A batch worker process died mid-task (or fault injection said so)."""

    code = "worker_crash"


class NumericInstabilityError(DiagnosticError):
    """The whole degradation ladder failed exact certification.

    Raised by :func:`repro.milp.solver.solve_with_stats` under
    ``certify=True`` only after every rung — down to the independent
    scipy backend — returned an answer the exact-arithmetic certifier
    rejected.  ``details["ladder"]`` records the per-rung failures.
    """

    code = "numeric_instability"


class StoreCorruptError(DiagnosticError):
    """The durable result store is damaged beyond row-level self-healing."""

    code = "store_corrupt"


class OverloadedError(DiagnosticError):
    """The service intake queue is above its admission watermark.

    ``retry_after`` (seconds) tells the caller when resubmission is
    likely to be admitted; it is also stored in ``details``.
    """

    code = "overloaded"

    def __init__(self, message: str, *, retry_after: float = 1.0, **details: Any) -> None:
        super().__init__(message, retry_after=retry_after, **details)
        self.retry_after = float(retry_after)


class BreakerOpenError(DiagnosticError):
    """Every eligible backend's circuit breaker is currently open."""

    code = "breaker_open"

    def __init__(self, message: str, *, retry_after: float = 1.0, **details: Any) -> None:
        super().__init__(message, retry_after=retry_after, **details)
        self.retry_after = float(retry_after)


#: Codes whose failures are deterministic properties of the *input*:
#: retrying them on the alternate MILP backend cannot succeed.
_INPUT_ERROR_CODES = frozenset(
    {
        InvalidValueError.code,
        DegenerateTableError.code,
        MalformedConstraintError.code,
    }
)


def is_retryable_on_fallback(error: BaseException) -> bool:
    """Can retrying *error* on the alternate backend change the outcome?"""
    if isinstance(error, DiagnosticError):
        return error.code not in _INPUT_ERROR_CODES
    return True


def classify_failure(error: BaseException) -> str:
    """The batch-report status string for a raised failure."""
    if isinstance(error, SolveTimeoutError):
        return "timeout"
    if isinstance(error, InfeasibleSystemError):
        return "unrepairable"
    if isinstance(error, InvalidValueError):
        return "invalid_input"
    if isinstance(error, DegenerateTableError):
        return "degenerate"
    if isinstance(error, MalformedConstraintError):
        return "malformed"
    if isinstance(error, UnboundedObjectiveError):
        return "unbounded"
    if isinstance(error, WorkerCrashError):
        return "crashed"
    if isinstance(error, NumericInstabilityError):
        return "uncertified"
    if isinstance(error, StoreCorruptError):
        return "store_corrupt"
    if isinstance(error, OverloadedError):
        return "overloaded"
    if isinstance(error, BreakerOpenError):
        return "breaker_open"
    return "error"


def ensure_finite_cell(
    value: float, relation: str, tuple_id: int, attribute: str
) -> float:
    """Validate one numeric cell; returns the value as ``float``.

    Raises :class:`InvalidValueError` with the cell's coordinates when
    the value is NaN, infinite, or beyond :data:`OVERFLOW_LIMIT` --
    the typed replacement for letting such values reach the MILP
    lowering, where they surface as inscrutable solver errors.
    """
    number = float(value)
    where = f"{relation}[{tuple_id}].{attribute}"
    if math.isnan(number):
        raise InvalidValueError(
            f"cell {where} is NaN; the acquisition produced a non-number",
            relation=relation, tuple_id=tuple_id, attribute=attribute,
            value=number,
        )
    if math.isinf(number):
        raise InvalidValueError(
            f"cell {where} is {'+' if number > 0 else '-'}inf; no finite "
            f"repair can involve it",
            relation=relation, tuple_id=tuple_id, attribute=attribute,
            value=number,
        )
    if abs(number) > OVERFLOW_LIMIT:
        raise InvalidValueError(
            f"cell {where} has magnitude {abs(number):.3e}, beyond the "
            f"representable limit {OVERFLOW_LIMIT:.0e} of the MILP lowering",
            relation=relation, tuple_id=tuple_id, attribute=attribute,
            value=number,
        )
    return number
