"""Long-running repair service: the batch engine, made into a daemon.

``repair_batch`` is a one-shot tool: it runs a corpus to completion and
exits, paying full MILP cost for anything the previous invocation
already solved.  A data-entry shop does not work in one shot -- it is a
*service*: documents arrive continuously, duplicates are common across
days, backends get sick and recover, deploys send SIGTERM mid-batch,
and machines die without warning.  :class:`RepairService` wraps the
existing engine in the machinery that setting needs:

- **durable result store** -- every service owns a
  :class:`~repro.repair.store.ResultStore` threaded into its solve
  cache as a second tier, so a document repaired *yesterday* is a disk
  hit today (re-certified on read, per the store's admission contract);
- **async intake with admission control** -- :meth:`RepairService.submit`
  enqueues work and returns a ticket; above the queue's high watermark
  it refuses with :class:`~repro.diagnostics.OverloadedError` carrying
  ``retry_after``.  Bounded backpressure: the caller resubmits later,
  the service never grows an unbounded queue and falls over at the
  worst moment;
- **per-backend circuit breakers** -- a backend whose dispatches keep
  dying (segfaulting native code, a broken install) trips its
  :class:`CircuitBreaker` open; traffic shifts to the alternate backend
  (:data:`~repro.milp.solver.FALLBACK_BACKEND`) immediately instead of
  paying the failure repeatedly.  After a cooldown the breaker goes
  *half-open* and admits one probe: success re-closes it, failure
  re-opens.  This layers on (never replaces) the per-task crash
  retries with decorrelated-jitter backoff;
- **health and readiness probes** -- :meth:`RepairService.health` /
  :meth:`RepairService.ready` expose queue depth, breaker states and
  store counters as plain dicts for an operator or an orchestrator's
  probe endpoint;
- **graceful drain** -- SIGTERM (see
  :meth:`RepairService.install_signal_handlers`) finishes the task in
  flight, journals it, writes the still-pending ticket indices to a
  ``<journal>.pending`` manifest, and stops.  Nothing is lost, nothing
  is half-done;
- **crash recovery** -- a service restarted after ``kill -9`` replays
  its checkpoint journal against the resubmitted corpus
  (``require_certified=True``: an uncertified tail is re-solved, never
  inherited) and the store makes the re-solves disk hits, so the
  restarted run completes identically to an uninterrupted one.

The service is deliberately single-threaded between :meth:`submit` and
:meth:`process_pending`: parallelism lives inside ``repair_batch``'s
worker pool and below.  What this class adds is *lifecycle*, which is
exactly the part a pool cannot own.
"""

from __future__ import annotations

import dataclasses
import json
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence

from collections import deque

from repro.diagnostics import OverloadedError
from repro.faultinject import FaultConfig, chaos_backend_dispatch
from repro.milp.cache import DEFAULT_CACHE_SIZE, SolveCache
from repro.milp.solver import DEFAULT_BACKEND, FALLBACK_BACKEND
from repro.repair.batch import (
    BatchItemResult,
    BatchReport,
    RepairTask,
    execute_task,
    respawn_delay,
)
from repro.repair.checkpoint import CheckpointJournal, task_fingerprint
from repro.repair.store import ResultStore, StoreIntegrityReport

#: Result statuses that count as the *backend's* fault for breaker
#: accounting.  Input errors (invalid value, degenerate, malformed) and
#: honest verdicts (unrepairable) say nothing about backend health and
#: must not open a breaker.
BACKEND_FAULT_STATUSES = frozenset({"crashed", "timeout", "error", "uncertified"})

#: Default intake queue high watermark.
DEFAULT_MAX_PENDING = 256

#: Default consecutive failures before a breaker opens.
DEFAULT_BREAKER_THRESHOLD = 3

#: Default seconds an open breaker waits before a half-open probe.
DEFAULT_BREAKER_COOLDOWN = 30.0


class CircuitBreaker:
    """Closed / open / half-open dispatch gate for one backend.

    Closed is the healthy state: every dispatch is allowed and a
    success resets the consecutive-failure counter.  After
    ``failure_threshold`` consecutive failures the breaker opens:
    dispatches are refused outright (no work wasted on a sick backend)
    until ``cooldown`` seconds have passed on the monotonic clock.
    Then one **probe** is admitted (half-open): its success re-closes
    the breaker, its failure re-opens it for another full cooldown.
    Only one probe is ever in flight -- a second ``allow`` during a
    probe is refused, so a recovering backend is not stampeded.

    *clock* is injectable so tests drive time explicitly.
    """

    def __init__(
        self,
        failure_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown = float(cooldown)
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half-open"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a dispatch proceed right now?  (May start a probe.)"""
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe at a time
        if self._clock() - self._opened_at >= self.cooldown:
            self._probing = True
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next dispatch could be admitted."""
        if self._opened_at is None:
            return 0.0
        remaining = self.cooldown - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        if self._probing or self._failures >= self.failure_threshold:
            # A failed probe re-opens for a fresh cooldown; enough
            # consecutive failures open a closed breaker.
            self._opened_at = self._clock()
            self._probing = False
            self._failures = 0


@dataclass
class ServiceConfig:
    """Everything a :class:`RepairService` needs to run.

    ``store`` and ``checkpoint`` are both optional but a durable
    service wants both: the store makes re-solves free, the journal
    makes restarts lossless.
    """

    store: Optional[str] = None
    checkpoint: Optional[str] = None
    backend: str = DEFAULT_BACKEND
    timeout: Optional[float] = None
    cache_size: int = DEFAULT_CACHE_SIZE
    on_infeasible: str = "raise"
    strategy: str = "exact"
    misrepair_budget: int = 0
    certify: bool = True
    #: Intake queue high watermark; ``submit`` above it is refused.
    max_pending: int = DEFAULT_MAX_PENDING
    #: Suggested resubmission delay carried by ``OverloadedError``.
    retry_after: float = 1.0
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN
    #: Crash retries per backend candidate before it counts as a
    #: backend failure.
    max_task_retries: int = 2
    #: Base of the decorrelated-jitter crash-retry backoff, seconds.
    retry_backoff: float = 0.0
    #: Chaos configuration (testing only).
    fault_config: Optional[FaultConfig] = None


@dataclass
class _Ticket:
    index: int
    task: RepairTask
    submitted_at: float


class RepairService:
    """A long-running repair daemon over the batch engine.

    Lifecycle: construct, optionally ``install_signal_handlers``, then
    either feed it with ``submit`` + ``process_pending`` (service
    style) or hand it a whole corpus with ``run`` (batch style with
    service semantics: store, breakers, journal replay).  ``close``
    when done; the instance is also a context manager.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store: Optional[ResultStore] = (
            ResultStore(config.store) if config.store is not None else None
        )
        self.cache = SolveCache(config.cache_size, store=self.store)
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._queue: Deque[_Ticket] = deque()
        self._next_index = 0
        self._results: Dict[int, BatchItemResult] = {}
        self._intake_latencies: List[float] = []
        self._draining = False
        self._started = time.perf_counter()
        self._journal: Optional[CheckpointJournal] = (
            CheckpointJournal(config.checkpoint)
            if config.checkpoint is not None
            else None
        )
        self._fingerprints: Dict[int, str] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "RepairService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def install_signal_handlers(self) -> None:
        """SIGTERM / SIGINT request a graceful drain, not an abort.

        The handler only flips a flag; the processing loop notices it
        *between* tasks, so the task in flight always finishes and is
        journalled before the service stops.  Call from the main
        thread only (a CPython ``signal`` restriction).
        """

        def _request_drain(signum: int, frame: object) -> None:  # noqa: ARG001
            self._draining = True

        signal.signal(signal.SIGTERM, _request_drain)
        signal.signal(signal.SIGINT, _request_drain)

    def request_drain(self) -> None:
        """Programmatic equivalent of receiving SIGTERM."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    # -- intake ------------------------------------------------------------

    def submit(self, task: RepairTask) -> int:
        """Enqueue one task; returns its ticket index.

        Refuses with :class:`~repro.diagnostics.OverloadedError` when
        the queue is at its high watermark or the service is draining
        -- the caller backs off ``retry_after`` seconds and resubmits.
        Admission is the *only* unbounded input path, so bounding it
        here bounds the whole service's memory.
        """
        if self._draining:
            raise OverloadedError(
                "service is draining; resubmit to the next instance",
                retry_after=self.config.retry_after,
                pending=len(self._queue),
            )
        if len(self._queue) >= self.config.max_pending:
            raise OverloadedError(
                f"intake queue is full ({len(self._queue)} >= "
                f"{self.config.max_pending} pending)",
                retry_after=self.config.retry_after,
                pending=len(self._queue),
            )
        index = self._next_index
        self._next_index += 1
        self._queue.append(_Ticket(index, task, time.perf_counter()))
        return index

    def result(self, index: int) -> Optional[BatchItemResult]:
        """The completed result for a ticket, or ``None`` if pending."""
        return self._results.get(index)

    def process_pending(self, max_tasks: Optional[int] = None) -> int:
        """Work the queue (up to *max_tasks*); returns tasks completed.

        Stops early when a drain has been requested; the remaining
        tickets stay queued and are recorded by :meth:`drain`.
        """
        completed = 0
        while self._queue and (max_tasks is None or completed < max_tasks):
            if self._draining and completed > 0:
                break
            ticket = self._queue.popleft()
            self._intake_latencies.append(
                time.perf_counter() - ticket.submitted_at
            )
            result = self._execute(ticket.task, ticket.index)
            self._deliver(result, ticket.task)
            completed += 1
        return completed

    def drain(self) -> List[int]:
        """Finish nothing more; persist the queue; return its indices.

        Writes the pending ticket indices to ``<checkpoint>.pending``
        (when a journal is configured) so the operator -- or the
        restarted service -- knows exactly what was admitted but never
        run.  Idempotent.
        """
        self._draining = True
        pending = [ticket.index for ticket in self._queue]
        if self._journal is not None:
            manifest = Path(str(self._journal.path) + ".pending")
            manifest.write_text(
                json.dumps({"pending": pending}, separators=(",", ":"))
            )
        return pending

    # -- execution ---------------------------------------------------------

    def _breaker(self, backend: str) -> CircuitBreaker:
        if backend not in self.breakers:
            self.breakers[backend] = CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_cooldown
            )
        return self.breakers[backend]

    def _candidates(self, task: RepairTask) -> List[str]:
        primary = task.backend or self.config.backend
        candidates = [primary]
        fallback = FALLBACK_BACKEND.get(primary)
        if fallback is not None and fallback != primary:
            candidates.append(fallback)
        return candidates

    def _execute(self, task: RepairTask, index: int) -> BatchItemResult:
        """One task through breakers, crash retries and the fallback.

        The service owns backend choice: each candidate backend (the
        task's primary, then its fallback) is tried only if its breaker
        admits the dispatch, with ``execute_task(retry_fallback=False)``
        so the engine does not second-guess the routing.  A candidate
        whose result is a backend fault (crash, timeout, error,
        uncertified) trips its breaker and yields to the next; a
        candidate that answers -- even "this task is unrepairable" --
        records a success.  When every candidate's breaker is open the
        task is refused as ``status="breaker_open"`` with the earliest
        retry time, mirroring admission control: better an honest
        refusal now than a guaranteed failure slowly.
        """
        cfg = self.config
        # The task's own backend pin is consumed here, not inside
        # execute_task, so breaker rerouting cannot be defeated by it.
        routed = dataclasses.replace(task, backend=None)
        skipped_open = []
        last_result: Optional[BatchItemResult] = None
        for candidate in self._candidates(task):
            breaker = self._breaker(candidate)
            if not breaker.allow():
                skipped_open.append((candidate, breaker.retry_after()))
                continue
            crashes = 0
            delay = cfg.retry_backoff
            result: Optional[BatchItemResult] = None
            while True:
                try:
                    chaos_backend_dispatch(
                        cfg.fault_config, candidate, index, crashes
                    )
                    result = execute_task(
                        routed,
                        index,
                        default_backend=candidate,
                        timeout=cfg.timeout,
                        retry_fallback=False,
                        cache=self.cache,
                        on_infeasible=cfg.on_infeasible,
                        strategy=cfg.strategy,
                        misrepair_budget=cfg.misrepair_budget,
                        certify=cfg.certify,
                    )
                    result.attempts = crashes + 1
                    break
                except Exception as crash:
                    crashes += 1
                    if crashes > cfg.max_task_retries:
                        result = BatchItemResult(
                            index=index,
                            name=task.name,
                            status="crashed",
                            backend_used=candidate,
                            attempts=crashes,
                            error=str(crash),
                        )
                        break
                    delay = respawn_delay(cfg.retry_backoff, delay)
                    if delay > 0:
                        time.sleep(delay)
            if result.status in BACKEND_FAULT_STATUSES:
                breaker.record_failure()
                last_result = result
                continue
            breaker.record_success()
            if last_result is not None and last_result.status in BACKEND_FAULT_STATUSES:
                result.fallback_taken = True
            return result
        if last_result is not None:
            # Every admitted candidate failed; report the last failure.
            return last_result
        retry_after = min(
            (after for _, after in skipped_open), default=cfg.breaker_cooldown
        )
        names = ", ".join(name for name, _ in skipped_open)
        return BatchItemResult(
            index=index,
            name=task.name,
            status="breaker_open",
            error=(
                f"all eligible backends have open breakers ({names}); "
                f"retry in {retry_after:.1f}s"
            ),
        )

    def _config_header_meta(self) -> Dict[str, object]:
        return {
            "backend": self.config.backend,
            "timeout": self.config.timeout,
            "on_infeasible": self.config.on_infeasible,
            "strategy": self.config.strategy,
            "misrepair_budget": self.config.misrepair_budget,
            "certify": self.config.certify,
        }

    def _deliver(self, result: BatchItemResult, task: RepairTask) -> None:
        # Same certification hygiene as repair_batch: uncertified or
        # ladder-degraded answers are never journalled, so a restart
        # re-solves them instead of inheriting them.
        journal_worthy = not (
            self.config.certify
            and (
                result.status == "uncertified"
                or result.certified is False
                or any(s.degraded for s in result.stats)
            )
        )
        if self._journal is not None and journal_worthy and result.status not in (
            "breaker_open",
            "overloaded",
        ):
            if not self._journal.exists():
                # Streaming intake reaches here without run() ever
                # writing a header; the loader refuses headerless
                # journals.  n_tasks is unknowable mid-stream, so the
                # header carries config meta only.
                self._journal.write_header(**self._config_header_meta())
            fingerprint = self._fingerprints.get(result.index)
            if fingerprint is None:
                fingerprint = task_fingerprint(
                    task,
                    strategy=self.config.strategy,
                    misrepair_budget=self.config.misrepair_budget,
                )
            self._journal.append_result(result, fingerprint)
        self._results[result.index] = result

    # -- batch-style entry point -------------------------------------------

    def run(self, tasks: Sequence[RepairTask], *, resume: bool = True) -> BatchReport:
        """Service-run a whole corpus; returns a standard batch report.

        With a journal configured and ``resume=True``, completed tasks
        from a previous (possibly killed) incarnation are replayed --
        with ``require_certified=True``, so an uncertified tail is
        re-solved rather than inherited -- and only the remainder is
        executed.  The store then turns most of those re-solves into
        disk hits, which is what makes restart-and-complete cheap.
        A drain request stops the loop between tasks; the report then
        covers only the delivered prefix and :meth:`drain` has recorded
        the rest.
        """
        task_list = list(tasks)
        started = time.perf_counter()
        header_meta = {"n_tasks": len(task_list), **self._config_header_meta()}
        fingerprints = [
            task_fingerprint(
                task,
                strategy=self.config.strategy,
                misrepair_budget=self.config.misrepair_budget,
            )
            for task in task_list
        ]
        self._fingerprints = dict(enumerate(fingerprints))
        replayed: Dict[int, BatchItemResult] = {}
        if self._journal is not None:
            if self._journal.exists() and resume:
                self._journal.truncate_torn_tail()
                replayed, _ = self._journal.load_completed(
                    task_list,
                    fingerprints,
                    expected_meta=header_meta,
                    require_certified=self.config.certify,
                )
            else:
                if self._journal.exists():
                    self._journal.path.unlink()
                self._journal.write_header(**header_meta)
        self._results.update(replayed)
        for index, task in enumerate(task_list):
            if index in self._results:
                continue
            if self._draining:
                break
            ticket_start = time.perf_counter()
            result = self._execute(task, index)
            self._intake_latencies.append(time.perf_counter() - ticket_start)
            self._deliver(result, task)
        self._next_index = max(self._next_index, len(task_list))
        if self._draining and self._journal is not None:
            manifest = Path(str(self._journal.path) + ".pending")
            pending = [
                index
                for index in range(len(task_list))
                if index not in self._results
            ]
            manifest.write_text(
                json.dumps({"pending": pending}, separators=(",", ":"))
            )
        delivered = [
            self._results[index]
            for index in range(len(task_list))
            if index in self._results
        ]
        return BatchReport(
            results=delivered,
            wall_time=time.perf_counter() - started,
            workers=0,
            cache_size=self.config.cache_size,
            timeout=self.config.timeout,
            checkpoint=self.config.checkpoint,
            store=self.config.store,
        )

    # -- observability -----------------------------------------------------

    def intake_latency(self, quantile: float) -> float:
        """The *quantile* (0..1) of observed intake latencies, seconds."""
        if not self._intake_latencies:
            return 0.0
        ordered = sorted(self._intake_latencies)
        position = min(
            len(ordered) - 1, max(0, int(round(quantile * (len(ordered) - 1))))
        )
        return ordered[position]

    def health(self) -> Dict[str, object]:
        """Liveness probe payload: what the service is doing right now."""
        cache_info = self.cache.info()
        return {
            "status": "draining" if self._draining else "ok",
            "uptime": time.perf_counter() - self._started,
            "pending": len(self._queue),
            "completed": len(self._results),
            "max_pending": self.config.max_pending,
            "breakers": {
                backend: breaker.state
                for backend, breaker in sorted(self.breakers.items())
            },
            "cache": {
                "hits": cache_info.hits,
                "misses": cache_info.misses,
                "store_hits": cache_info.store_hits,
            },
            "store": None if self.store is None else self.store.info().as_dict(),
            "intake_p50": self.intake_latency(0.50),
            "intake_p99": self.intake_latency(0.99),
        }

    def ready(self) -> Dict[str, object]:
        """Readiness probe: should a router send this instance work?

        Not ready while draining (the instance is going away), while
        the queue is at its watermark (submits would be refused
        anyway), or when every known backend's breaker is open (work
        would be accepted and then immediately refused downstream).
        """
        breakers_all_open = bool(self.breakers) and all(
            breaker.state == "open" for breaker in self.breakers.values()
        )
        ready = (
            not self._draining
            and len(self._queue) < self.config.max_pending
            and not breakers_all_open
        )
        return {
            "ready": ready,
            "draining": self._draining,
            "queue_full": len(self._queue) >= self.config.max_pending,
            "breakers_all_open": breakers_all_open,
        }

    def integrity_report(self) -> Optional[StoreIntegrityReport]:
        """Run the store's integrity scan (``None`` without a store)."""
        if self.store is None:
            return None
        return self.store.integrity_scan()
