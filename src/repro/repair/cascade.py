"""The tiered repair cascade: cheap certain fixes first, MILP last.

DART's operator loop assumes most acquisition damage is cheap to undo:
the OCR channel injects *known* confusion-pair errors (0<->8, 1<->7,
rn->m), and a single misread cell usually leaves a trail of violated
aggregate rows that pins it down exactly.  Escalating every violation
straight to the exact MILP (``S*(AC)``) wastes that structure.  This
module runs a chain of increasingly expensive tiers over a working copy
of the database:

- **T1 -- confusion inversion** (:data:`TIER_INVERSION`): enumerate the
  channel pre-images of each suspect cell's text
  (:func:`repro.acquisition.ocr.number_preimages`) and accept a
  candidate only if it clears *every* ground constraint touching that
  cell -- the currently-satisfied ones included, so a fix can never
  push damage into its neighbourhood.
- **T2 -- aggregate back-solving** (:data:`TIER_BACKSOLVE`): a violated
  equality row whose cells are all above suspicion except one is a
  linear equation in a single unknown; solve it in closed form and
  apply the same all-neighbours acceptance test.
- **T3 -- certified residue search** (:data:`TIER_GREEDY`): the greedy
  primal heuristic of :mod:`repro.repair.heuristic`, accepted only when
  its cardinality matches the *exact minimum hitting number* of the
  violated rows (every repair must change at least one cell of every
  violated row, so the minimum hitting set size is a sound lower bound
  on ``|lambda(rho)|``).  When greedy overshoots, a bounded exhaustive
  pass enumerates the minimum-size hitting sets themselves, solves the
  equality rows touching each as a small linear system, and accepts the
  first assignment that verifies against *every* ground row.  Either
  way a T3 hit is *provably* card-minimal: its cardinality equals a
  lower bound that holds for the exact optimum too.
- **T4 -- exact residue solve** (:data:`TIER_EXACT`): whatever survives
  T1-T3 goes to the exact MILP.  The residue instance is strictly
  smaller (fewer violated rows), so the expensive tier runs on the
  cheap remainder.  T4 is driven by the engine
  (:meth:`repro.repair.engine.RepairEngine.find_card_minimal_repair`
  with ``strategy="cascade"``); this module reports the residue.

T1 and T2 iterate to a joint fixpoint: repairing one cell can turn a
multi-unknown row into a single-unknown row, or surface a unique
clearing pre-image that was masked before.

**Mis-repair budget.**  When several distinct candidates clear a
suspect cell's neighbourhood the channel evidence is ambiguous; picking
one is a guess that may silently diverge from the source document (a
*mis-repair*).  ``misrepair_budget`` bounds how many such guesses the
whole cascade may take (default 0: only uniquely-determined fixes are
accepted, everything ambiguous falls through to the next tier).  A
budgeted guess takes the highest-channel-probability candidate --
maximum-likelihood decoding of the OCR channel -- and is flagged
``ambiguous=True`` on its :class:`CascadeFix`.

Steadiness makes the whole scheme sound: for steady constraints the
ground system is *value-independent* (changing measure values never
changes which rows exist or their coefficients), so the system grounded
once on the original instance remains exactly ``S(AC)`` for every
working copy the cascade mutates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple as PyTuple,
)

from repro.acquisition.ocr import number_preimages
from repro.constraints.constraint import AggregateConstraint, Relop
from repro.constraints.grounding import (
    Cell,
    GroundConstraint,
    ground_constraints,
)
from repro.relational.database import Database
from repro.relational.domains import Domain
from repro.repair.heuristic import greedy_repair
from repro.repair.translation import RepairObjective, translate

#: Tier names, in firing order.
TIER_INVERSION = "t1-inversion"
TIER_BACKSOLVE = "t2-backsolve"
TIER_GREEDY = "t3-greedy"
TIER_EXACT = "t4-exact"
TIERS = (TIER_INVERSION, TIER_BACKSOLVE, TIER_GREEDY, TIER_EXACT)

#: The tiers whose fixes are closed-form reconstructions of individual
#: cells (and therefore scoreable against injected ground truth by
#: :func:`repro.evalkit.metrics.misrepair_report`).
CLOSED_FORM_TIERS = frozenset({TIER_INVERSION, TIER_BACKSOLVE})

#: Tolerance for "this back-solved value is an integer".
INTEGRALITY_TOL = 1e-6


class CascadeError(ValueError):
    """Raised for invalid cascade configuration."""


class ViolationClass(Enum):
    """What kind of cheap fix a violated ground row plausibly admits.

    The classifier is a *routing* device, not a verdict: it predicts
    which tier is likely to clear the row, and the tier's acceptance
    test has the final word.
    """

    #: Some cell of the row has channel pre-images: candidate for T1.
    CONFUSION = "confusion"
    #: An equality row with exactly one suspect cell: candidate for T2.
    BACKSOLVABLE = "backsolvable"
    #: Everything else: greedy / exact territory (T3 / T4).
    RESIDUE = "residue"


def _render_value(value: float) -> str:
    """The cell value as the text the OCR channel would have produced."""
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return str(as_float)


def _suspect_cells(
    grounds: Sequence[GroundConstraint], database: Database
) -> PyTuple[List[GroundConstraint], List[Cell]]:
    """(violated rows, ordered distinct cells those rows touch)."""
    violated = [g for g in grounds if not g.holds(database)]
    ordered: List[Cell] = []
    seen: Set[Cell] = set()
    for ground in violated:
        for cell in ground.cells():
            if cell not in seen:
                seen.add(cell)
                ordered.append(cell)
    return violated, ordered


def classify_violation(
    ground: GroundConstraint,
    database: Database,
    suspects: Optional[Set[Cell]] = None,
) -> ViolationClass:
    """Route one violated ground row to its plausible tier.

    *suspects* is the set of cells touched by any violated row (computed
    from *database* when omitted); a row is :attr:`ViolationClass.BACKSOLVABLE`
    when it is an equality with exactly one suspect cell.
    """
    if suspects is None:
        _, ordered = _suspect_cells([ground], database)
        suspects = set(ordered)
    for cell in ground.cells():
        value = database.get_value(*cell)
        if number_preimages(_render_value(value)):
            return ViolationClass.CONFUSION
    if ground.relop == Relop.EQ:
        unknowns = [cell for cell in ground.cells() if cell in suspects]
        if len(unknowns) == 1:
            return ViolationClass.BACKSOLVABLE
    return ViolationClass.RESIDUE


def classify_violations(
    grounds: Sequence[GroundConstraint], database: Database
) -> List[PyTuple[GroundConstraint, ViolationClass]]:
    """Classify every currently-violated ground row of *grounds*."""
    violated, ordered = _suspect_cells(grounds, database)
    suspects = set(ordered)
    return [
        (ground, classify_violation(ground, database, suspects))
        for ground in violated
    ]


@dataclass(frozen=True)
class CascadeFix:
    """One accepted cell fix, with its provenance."""

    tier: str
    cell: Cell
    old_value: float
    new_value: float
    #: Channel probability of the inverted corruption (T1 only; 0.0 for
    #: back-solved or greedy fixes, which carry no channel evidence).
    probability: float = 0.0
    #: True when this fix spent mis-repair budget (several candidates
    #: cleared the neighbourhood and the highest-probability one won).
    ambiguous: bool = False


@dataclass
class TierStats:
    """Hit / fallthrough / latency accounting for one tier."""

    tier: str
    #: Violated ground rows in scope when the tier first ran.
    attempted: int = 0
    #: Violated rows cleared while this tier's fixes were applied.
    resolved: int = 0
    #: Cell fixes this tier accepted.
    fixes: int = 0
    #: Ambiguity events: a cell (or the whole tier, for T3) had more
    #: than one admissible answer and fell through instead of guessing.
    ambiguous: int = 0
    #: Mis-repair budget consumed by this tier.
    budget_spent: int = 0
    #: Violated rows still open when the tier finished (handed on).
    fallthroughs: int = 0
    wall_time: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "tier": self.tier,
            "attempted": self.attempted,
            "resolved": self.resolved,
            "fixes": self.fixes,
            "ambiguous": self.ambiguous,
            "budget_spent": self.budget_spent,
            "fallthroughs": self.fallthroughs,
            "wall_time": self.wall_time,
        }


@dataclass
class CascadeReport:
    """What the cascade did: fixes, per-tier stats, residue."""

    budget: int
    budget_spent: int = 0
    #: Violated ground rows when the cascade started.
    n_violations: int = 0
    #: Violated rows left for the exact tier (0 = MILP-free).
    n_residual: int = 0
    fixes: List[CascadeFix] = field(default_factory=list)
    tiers: List[TierStats] = field(default_factory=list)

    @property
    def resolved_without_milp(self) -> int:
        return self.n_violations - self.n_residual

    @property
    def milp_free_fraction(self) -> float:
        """Fraction of the initial violations cleared before T4."""
        if self.n_violations == 0:
            return 1.0
        return self.resolved_without_milp / self.n_violations

    @property
    def milp_invoked(self) -> bool:
        return self.n_residual > 0

    def tier(self, name: str) -> TierStats:
        for stats in self.tiers:
            if stats.tier == name:
                return stats
        raise KeyError(name)

    def closed_form_fixes(self) -> List[CascadeFix]:
        """The T1/T2 fixes, i.e. those scoreable for mis-repairs."""
        return [fix for fix in self.fixes if fix.tier in CLOSED_FORM_TIERS]

    def as_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "budget_spent": self.budget_spent,
            "n_violations": self.n_violations,
            "n_residual": self.n_residual,
            "resolved_without_milp": self.resolved_without_milp,
            "milp_free_fraction": self.milp_free_fraction,
            "milp_invoked": self.milp_invoked,
            "tiers": [stats.as_dict() for stats in self.tiers],
            "fixes": [
                {
                    "tier": fix.tier,
                    "cell": list(fix.cell),
                    "old_value": fix.old_value,
                    "new_value": fix.new_value,
                    "probability": fix.probability,
                    "ambiguous": fix.ambiguous,
                }
                for fix in self.fixes
            ],
        }


# ---------------------------------------------------------------------------
# The cascade proper
# ---------------------------------------------------------------------------


def _grounds_by_cell(
    grounds: Sequence[GroundConstraint],
) -> Dict[Cell, List[GroundConstraint]]:
    by_cell: Dict[Cell, List[GroundConstraint]] = {}
    for ground in grounds:
        for cell in ground.cells():
            by_cell.setdefault(cell, []).append(ground)
    return by_cell


def _is_integer_cell(database: Database, cell: Cell) -> bool:
    relation, _, attribute = cell
    return (
        database.schema.relation(relation).domain_of(attribute)
        is Domain.INTEGER
    )


def _neighbourhood_clears(
    database: Database,
    cell: Cell,
    value: float,
    neighbours: Sequence[GroundConstraint],
) -> bool:
    """Would setting *cell* to *value* satisfy every row touching it?

    A single-cell change can only affect the rows the cell occurs in,
    so a clearing fix makes the cell's whole neighbourhood consistent
    and cannot create new violations anywhere else.
    """
    previous = database.get_value(*cell)
    database.set_value(*cell, value)
    try:
        return all(ground.holds(database) for ground in neighbours)
    finally:
        database.set_value(*cell, previous)


class _Budget:
    """The cascade-wide mis-repair allowance."""

    def __init__(self, total: int) -> None:
        self.total = total
        self.spent = 0

    @property
    def remaining(self) -> int:
        return self.total - self.spent

    def take(self) -> None:
        self.spent += 1


def _violated_rows_by_cell(
    grounds: Sequence[GroundConstraint], database: Database
) -> Dict[Cell, Set[int]]:
    """Cell -> indices (into *grounds*) of violated rows touching it."""
    rows: Dict[Cell, Set[int]] = {}
    for index, ground in enumerate(grounds):
        if ground.holds(database):
            continue
        for cell in ground.cells():
            rows.setdefault(cell, set()).add(index)
    return rows


def _dominates(
    cell: Cell,
    violated_rows: Dict[Cell, Set[int]],
    grounds: Sequence[GroundConstraint],
) -> bool:
    """Is *cell* a maximal single-cell explanation of its violations?

    True when no cell sharing a violated row with *cell* is implicated
    in violations *outside* ``R(cell)``.  Without this guard a fix can
    "absorb" a neighbour's error: if the true culprit ``c'`` sits in two
    violated rows and *cell* in only one of them, repairing *cell*
    clears that one row around the still-corrupted ``c'`` -- a silent
    mis-repair that also strands the other row with a costlier residue.
    Parsimony says the culprit is the cell that explains *all* the
    violations in its vicinity.
    """
    mine = violated_rows.get(cell, set())
    for row_index in mine:
        for other_cell in grounds[row_index].cells():
            if violated_rows.get(other_cell, set()) - mine:
                return False
    return True


def _inversion_pass(
    working: Database,
    grounds: Sequence[GroundConstraint],
    by_cell: Dict[Cell, List[GroundConstraint]],
    budget: _Budget,
    stats: TierStats,
    fixes: List[CascadeFix],
) -> bool:
    """One T1 sweep; True when at least one fix was accepted."""
    violated, suspects = _suspect_cells(grounds, working)
    if not violated:
        return False
    violated_rows = _violated_rows_by_cell(grounds, working)

    # Clearing candidates per dominating suspect cell.  Cells that do
    # not dominate their neighbourhood (some neighbour is implicated in
    # violations this cell cannot explain) are skipped outright:
    # repairing them could only absorb a neighbour's error.
    clearing: Dict[Cell, List[PyTuple[float, float]]] = {}
    for cell in suspects:
        if not _dominates(cell, violated_rows, grounds):
            continue
        current = working.get_value(*cell)
        integer_cell = _is_integer_cell(working, cell)
        for candidate_text, probability in number_preimages(
            _render_value(current)
        ):
            stripped = candidate_text.lstrip("-")
            if not stripped or not stripped.replace(".", "", 1).isdigit():
                continue
            value = float(candidate_text)
            if integer_cell:
                if not value.is_integer():
                    continue
                value = float(int(value))
            if value == float(current):
                continue
            if _neighbourhood_clears(working, cell, value, by_cell[cell]):
                clearing.setdefault(cell, []).append((value, probability))

    # Ambiguity is judged per *explanation group*: dominating cells
    # sharing a violated row explain the same violations (dominance
    # forces their violated-row sets equal), so two clearing candidates
    # inside one group -- whether on the same cell or on different
    # cells -- are rival explanations of the same evidence.  Candidates
    # in different groups are independent.
    groups: Dict[FrozenSet[int], List[PyTuple[Cell, float, float]]] = {}
    for cell, candidates in clearing.items():
        key = frozenset(violated_rows[cell])
        for value, probability in candidates:
            groups.setdefault(key, []).append((cell, value, probability))

    # Strongest explanations first: a group clearing more violated rows
    # is the more parsimonious fix.
    for key in sorted(groups, key=lambda rows: -len(rows)):
        candidates = sorted(groups[key], key=lambda c: -c[2])
        # Corroboration: a single violated row can never rule out
        # neighbour absorption -- every cell of the row is equally
        # suspect, and a compensating inversion on the wrong cell
        # clears the row just as well (it can even be card-minimal).
        # Only a candidate confirmed by >= 2 independently violated
        # rows is an unambiguous fidelity claim; single-witness
        # inversions cost budget and otherwise fall through to the
        # certified tiers, which claim minimality, not fidelity.
        corroborated = len(key) >= 2
        ambiguous = len(candidates) > 1 or not corroborated
        if ambiguous:
            stats.ambiguous += 1
            if budget.remaining <= 0:
                continue  # fall through rather than guess
            budget.take()
            stats.budget_spent += 1
        cell, value, probability = candidates[0]  # maximum likelihood
        integer_cell = _is_integer_cell(working, cell)
        current = float(working.get_value(*cell))
        working.set_value(*cell, int(value) if integer_cell else value)
        fixes.append(
            CascadeFix(
                tier=TIER_INVERSION,
                cell=cell,
                old_value=current,
                new_value=value,
                probability=probability,
                ambiguous=ambiguous,
            )
        )
        stats.fixes += 1
        # One fix per sweep: the violated-row map is stale now, and the
        # fixpoint loop re-sweeps anyway.
        return True
    return False


def _backsolve_pass(
    working: Database,
    grounds: Sequence[GroundConstraint],
    by_cell: Dict[Cell, List[GroundConstraint]],
    budget: _Budget,
    stats: TierStats,
    fixes: List[CascadeFix],
) -> bool:
    """One T2 sweep; True when at least one fix was accepted."""
    violated, suspects = _suspect_cells(grounds, working)
    if not violated:
        return False
    suspect_set = set(suspects)
    violated_rows = _violated_rows_by_cell(grounds, working)
    progressed = False
    for ground in violated:
        if ground.holds(working):
            continue  # cleared earlier in this sweep
        if ground.relop != Relop.EQ or not ground.coefficients:
            continue
        unknowns = [cell for cell in ground.cells() if cell in suspect_set]
        if len(unknowns) != 1:
            continue
        cell = unknowns[0]
        if not _dominates(cell, violated_rows, grounds):
            continue
        coefficient = ground.coefficients[cell]
        if coefficient == 0.0:
            continue
        rest = ground.constant + sum(
            other_coefficient * float(working.get_value(*other_cell))
            for other_cell, other_coefficient in ground.coefficients.items()
            if other_cell != cell
        )
        value = (ground.rhs - rest) / coefficient
        if _is_integer_cell(working, cell):
            if abs(value - round(value)) > INTEGRALITY_TOL:
                continue  # no integral solution: leave it to T3/T4
            value = float(round(value))
        current = float(working.get_value(*cell))
        if value == current:
            continue
        if not _neighbourhood_clears(working, cell, value, by_cell[cell]):
            continue
        # Same corroboration rule as T1: one equality pins the value,
        # but only a second violated witness row certifies that this
        # cell -- and not a suspect neighbour it would absorb -- is the
        # corrupted one.
        corroborated = len(violated_rows[cell]) >= 2
        if not corroborated:
            stats.ambiguous += 1
            if budget.remaining <= 0:
                continue
            budget.take()
            stats.budget_spent += 1
        working.set_value(
            *cell, int(value) if _is_integer_cell(working, cell) else value
        )
        fixes.append(
            CascadeFix(
                tier=TIER_BACKSOLVE,
                cell=cell,
                old_value=current,
                new_value=value,
                ambiguous=not corroborated,
            )
        )
        stats.fixes += 1
        # One fix per sweep (the dominance map is stale after a fix).
        return True
    return progressed


def repair_lower_bound(
    grounds: Sequence[GroundConstraint], database: Database
) -> int:
    """A sound lower bound on repair cardinality for *database*.

    Every violated ground row needs at least one of its cells changed;
    rows with pairwise-disjoint cell sets therefore force pairwise-
    distinct changes.  A greedy packing (fewest-cells rows first) of
    cell-disjoint violated rows is thus a valid -- if not maximal --
    lower bound on ``|lambda(rho)|`` for any repair ``rho``.
    """
    violated = [g for g in grounds if not g.holds(database)]
    violated.sort(key=lambda g: len(g.coefficients))
    used: Set[Cell] = set()
    bound = 0
    for ground in violated:
        cells = set(ground.cells())
        if not cells:
            # An empty violated row witnesses unrepairability; it forces
            # no cell change, so it contributes nothing to the bound.
            continue
        if cells & used:
            continue
        used |= cells
        bound += 1
    return bound


#: Search caps for the exact hitting-set machinery.  Residues reaching
#: T3 are tiny (a handful of violated rows over a few dozen cells); the
#: caps exist so a pathological instance degrades to "fall through to
#: T4" instead of stalling the cascade.
HITTING_SET_MAX_NODES = 50_000
HITTING_SET_MAX_SOLUTIONS = 64

#: Numerical tolerances for the tiny Gaussian-elimination solves.
_PIVOT_TOL = 1e-9
_CONSISTENCY_TOL = 1e-6


def minimum_hitting_sets(
    row_cells: Sequence[FrozenSet[Cell]],
    *,
    max_nodes: int = HITTING_SET_MAX_NODES,
    max_solutions: int = HITTING_SET_MAX_SOLUTIONS,
) -> PyTuple[int, List[FrozenSet[Cell]], bool, bool]:
    """Exact minimum hitting sets of the violated-row cell sets.

    Returns ``(h, solutions, certified, complete)``.  When *certified*
    is True, ``h`` is the exact minimum number of cells needed to
    intersect every row in *row_cells* -- a sound lower bound on repair
    cardinality, since any repair must change at least one cell of
    every violated row -- and *solutions* holds hitting sets of size
    exactly ``h``.  *complete* is True when *solutions* provably lists
    **every** size-``h`` hitting set (no node or solution cap was hit);
    the certified support search needs that completeness for its
    infeasibility proofs, while the greedy gate only needs ``h``.
    When the branch-and-bound node cap is hit during the minimum-size
    phase, the search gives up entirely: ``certified`` is False and
    callers must fall back to a weaker bound
    (:func:`repair_lower_bound`).

    The branching rule (pick an un-hit row, branch on each of its
    cells) is complete: every hitting set contains some cell of every
    row, so every minimum solution appears on some branch.
    """
    rows = [cells for cells in row_cells if cells]
    if not rows:
        return 0, [frozenset()], True, True
    nodes = 0
    best = len(set().union(*rows))  # hitting everything is an upper bound

    def search(
        chosen: Set[Cell],
        limit: int,
        collect: Optional[Set[FrozenSet[Cell]]],
    ) -> None:
        nonlocal nodes, best
        nodes += 1
        if nodes > max_nodes:
            raise _HittingSetCapped
        open_rows = [cells for cells in rows if not (cells & chosen)]
        if not open_rows:
            if collect is None:
                best = min(best, len(chosen))
            else:
                if len(collect) >= max_solutions:
                    raise _HittingSetCapped
                collect.add(frozenset(chosen))
            return
        if len(chosen) >= (min(limit, best) if collect is None else limit):
            return
        # Branch on the most-constrained row: fewest candidate cells.
        pivot = min(open_rows, key=lambda cells: (len(cells), sorted(cells)))
        for cell in sorted(pivot):
            chosen.add(cell)
            search(chosen, limit, collect)
            chosen.remove(cell)

    try:
        # Phase 1: find the minimum size h (depth capped at incumbent).
        search(set(), best, None)
    except _HittingSetCapped:
        return 0, [], False, False
    h = best
    # Phase 2: collect the size-h hitting sets.  A cap here only
    # truncates the candidate list -- h itself stays certified, but
    # completeness (and with it the certified support search) is lost.
    solutions: Set[FrozenSet[Cell]] = set()
    complete = True
    nodes = 0
    try:
        search(set(), h, solutions)
    except _HittingSetCapped:
        complete = False
    return h, sorted(solutions, key=sorted), True, complete


def hitting_sets_of_size(
    row_cells: Sequence[FrozenSet[Cell]],
    size: int,
    *,
    max_nodes: int = HITTING_SET_MAX_NODES,
    max_solutions: int = HITTING_SET_MAX_SOLUTIONS,
) -> PyTuple[List[FrozenSet[Cell]], bool]:
    """All *irredundant* hitting sets of exactly *size* cells.

    Irredundant means every chosen cell was picked to hit a row no
    earlier pick hit -- the branch rule never extends an already-
    complete hitting set, so redundant supersets (minimal set plus idle
    cells) are excluded by construction; the certified support search
    reaches those through its interacting-cell expansion instead.
    Returns ``(solutions, complete)``; *complete* is False when a cap
    was hit, in which case the list may be missing solutions.
    """
    rows = [cells for cells in row_cells if cells]
    if not rows:
        return ([frozenset()] if size == 0 else []), True
    nodes = 0
    solutions: Set[FrozenSet[Cell]] = set()

    def search(chosen: Set[Cell]) -> None:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise _HittingSetCapped
        open_rows = [cells for cells in rows if not (cells & chosen)]
        if not open_rows:
            if len(chosen) == size:
                if len(solutions) >= max_solutions:
                    raise _HittingSetCapped
                solutions.add(frozenset(chosen))
            return
        if len(chosen) >= size:
            return
        pivot = min(open_rows, key=lambda cells: (len(cells), sorted(cells)))
        for cell in sorted(pivot):
            chosen.add(cell)
            search(chosen)
            chosen.remove(cell)

    try:
        search(set())
    except _HittingSetCapped:
        return sorted(solutions, key=sorted), False
    return sorted(solutions, key=sorted), True


class _HittingSetCapped(Exception):
    """Internal: the hitting-set search blew its node budget."""


#: Status labels for :func:`_solve_equality_system`.
_UNIQUE = "unique"
_INCONSISTENT = "inconsistent"
_UNDERDETERMINED = "underdetermined"


def _solve_equality_system(
    working: Database,
    grounds: Sequence[GroundConstraint],
    subset: FrozenSet[Cell],
) -> PyTuple[str, Optional[Dict[Cell, float]]]:
    """Solve every equality row touching *subset* for the subset cells.

    All other cells are held at their current values, turning the
    equality rows into a dense linear system ``A x = b`` over the
    subset.  Returns a status and, for :data:`_UNIQUE`, the solution:

    - ``(_UNIQUE, assignment)`` -- the system pins every subset cell to
      exactly one value (integral where the domain demands it);
    - ``(_INCONSISTENT, None)`` -- no admissible assignment of the
      subset satisfies the equality rows (the system is contradictory,
      or its unique real solution is fractional on an integer cell): a
      *proof* that the subset cannot be a repair support, which the
      certified search uses to raise its lower bound;
    - ``(_UNDERDETERMINED, None)`` -- a free column: the evidence does
      not pin the values down.  Neither a fix nor a proof; the caller
      must treat the subset's feasibility as unknown.
    """
    unknowns = sorted(subset)
    index = {cell: i for i, cell in enumerate(unknowns)}
    n = len(unknowns)
    matrix: List[List[float]] = []
    for ground in grounds:
        if ground.relop != Relop.EQ:
            continue
        touched = [cell for cell in ground.cells() if cell in subset]
        if not touched:
            continue
        row = [0.0] * (n + 1)
        rhs = ground.rhs - ground.constant
        for cell, coefficient in ground.coefficients.items():
            if cell in subset:
                row[index[cell]] = coefficient
            else:
                rhs -= coefficient * float(working.get_value(*cell))
        row[n] = rhs
        matrix.append(row)

    # Gaussian elimination with partial pivoting.
    rank = 0
    free_column = False
    for col in range(n):
        pivot_row = max(
            range(rank, len(matrix)), key=lambda r: abs(matrix[r][col]),
            default=None,
        )
        if pivot_row is None or abs(matrix[pivot_row][col]) < _PIVOT_TOL:
            free_column = True
            continue
        matrix[rank], matrix[pivot_row] = matrix[pivot_row], matrix[rank]
        pivot = matrix[rank][col]
        for r in range(len(matrix)):
            if r == rank or abs(matrix[r][col]) < _PIVOT_TOL:
                continue
            factor = matrix[r][col] / pivot
            for c in range(col, n + 1):
                matrix[r][c] -= factor * matrix[rank][c]
        rank += 1
    # Leftover rows must be consistent (0 = 0); an inconsistent row is
    # a proof even when other columns are free.
    for r in range(rank, len(matrix)):
        if abs(matrix[r][n]) > _CONSISTENCY_TOL:
            return _INCONSISTENT, None
    if free_column:
        return _UNDERDETERMINED, None

    solution: Dict[Cell, float] = {}
    for r in range(rank):
        col = next(
            c for c in range(n) if abs(matrix[r][c]) >= _PIVOT_TOL
        )
        value = matrix[r][n] / matrix[r][col]
        cell = unknowns[col]
        if _is_integer_cell(working, cell):
            if abs(value - round(value)) > INTEGRALITY_TOL:
                # The *unique* real solution is fractional on an
                # integer cell, so no integral assignment satisfies
                # the equality rows: an infeasibility proof.
                return _INCONSISTENT, None
            value = float(round(value))
        solution[cell] = value
    return _UNIQUE, solution


def _assignment_verifies(
    working: Database,
    grounds: Sequence[GroundConstraint],
    assignment: Dict[Cell, float],
) -> bool:
    """Does applying *assignment* satisfy the entire ground system?"""
    previous = {
        cell: working.get_value(*cell) for cell in assignment
    }
    for cell, value in assignment.items():
        working.set_value(
            *cell, int(value) if _is_integer_cell(working, cell) else value
        )
    try:
        return all(ground.holds(working) for ground in grounds)
    finally:
        for cell, value in previous.items():
            working.set_value(*cell, value)


def _accept_t3_assignment(
    working: Database,
    assignment: Dict[Cell, float],
    stats: TierStats,
    fixes: List[CascadeFix],
) -> bool:
    progressed = False
    for cell in sorted(assignment):
        value = float(assignment[cell])
        current = float(working.get_value(*cell))
        if value == current:
            continue
        integer_cell = _is_integer_cell(working, cell)
        working.set_value(*cell, int(value) if integer_cell else value)
        fixes.append(
            CascadeFix(
                tier=TIER_GREEDY,
                cell=cell,
                old_value=current,
                new_value=value,
            )
        )
        stats.fixes += 1
        progressed = True
    return progressed


#: How many support sizes above the hitting number the certified
#: search will climb (each climb needs a full infeasibility proof of
#: the level below), and how many candidate supports one level may
#: hold before the search gives up to T4.
SUPPORT_SEARCH_MAX_EXTRA = 2
SUPPORT_SEARCH_MAX_CANDIDATES = 4096


def _interacting_cells(
    grounds: Sequence[GroundConstraint], support: FrozenSet[Cell]
) -> Set[Cell]:
    """Cells sharing a ground row with *support* (minus the support)."""
    cells: Set[Cell] = set()
    for ground in grounds:
        touched = support.intersection(ground.cells())
        if touched:
            cells.update(ground.cells())
    return cells - support


def _certified_support_search(
    working: Database,
    grounds: Sequence[GroundConstraint],
    violated_sets: Sequence[FrozenSet[Cell]],
    h: int,
    hitting_sets: Sequence[FrozenSet[Cell]],
    *,
    max_extra: int = SUPPORT_SEARCH_MAX_EXTRA,
    max_candidates: int = SUPPORT_SEARCH_MAX_CANDIDATES,
) -> Optional[Dict[Cell, float]]:
    """Find a *provably card-minimal* assignment for the residue.

    Level ``k`` holds every cell set that could be the support (the
    changed cells) of a size-``k`` repair.  At ``k = h`` those are
    exactly the minimum hitting sets: a repair must change a cell of
    every violated row, and a size-``h`` set that does so has no room
    for anything else.  For ``k > h`` a support decomposes into a
    hitting subset plus extra cells, each of which must share a ground
    row with the rest of the support -- a change that interacts with
    nothing else either breaks its own (satisfied, equality) rows or is
    idle, and dropping it would yield a smaller repair that the level
    below already proved impossible.  Level ``k+1`` is therefore
    complete as: every level-``k`` candidate extended by one
    interacting cell, plus the irredundant hitting sets of size
    ``k+1`` (supports whose minimal hitting subset is itself bigger
    than ``h``).

    The search accepts the first candidate whose equality system pins
    a unique, fully-changing, globally-verifying assignment -- and only
    after every candidate at every smaller size was *proved* infeasible
    (inconsistent equality rows, or a unique solution that fails
    verification).  An underdetermined system, a truncated enumeration,
    or an oversized level all abort the climb: soundness is never
    traded for coverage, the residue just goes to the exact tier.
    """
    level: List[FrozenSet[Cell]] = sorted(set(hitting_sets), key=sorted)
    for k in range(h, h + max_extra + 1):
        if not level or len(level) > max_candidates:
            return None
        proved_infeasible = True
        for subset in level:
            status, assignment = _solve_equality_system(
                working, grounds, subset
            )
            if status == _INCONSISTENT:
                continue  # proof for this subset
            if status == _UNDERDETERMINED:
                proved_infeasible = False
                continue
            changed = {
                cell: value
                for cell, value in assignment.items()
                if value != float(working.get_value(*cell))
            }
            if len(changed) != len(subset):
                # The unique solution leaves a support cell unchanged:
                # it is really a smaller-support candidate, which a
                # lower level already handled (or disproved).  Not a
                # proof that *this* subset is infeasible though.
                proved_infeasible = False
                continue
            if _assignment_verifies(working, grounds, changed):
                return changed
            # Unique solution, forced by the equality rows, fails the
            # full system: this subset is proved infeasible.
        if not proved_infeasible:
            return None  # cannot certify any larger size
        if k == h + max_extra:
            break
        # Build level k+1.
        expanded: Set[FrozenSet[Cell]] = set()
        for subset in level:
            for cell in _interacting_cells(grounds, subset):
                expanded.add(subset | {cell})
                if len(expanded) > max_candidates:
                    return None
        larger, complete = hitting_sets_of_size(violated_sets, k + 1)
        if not complete:
            return None
        expanded.update(larger)
        level = sorted(expanded, key=sorted)
    return None


def _greedy_pass(
    working: Database,
    constraints: Sequence[AggregateConstraint],
    grounds: Sequence[GroundConstraint],
    stats: TierStats,
    fixes: List[CascadeFix],
) -> bool:
    """T3: certified residue search (greedy, then support enumeration).

    Neither sub-strategy carries an intrinsic minimality certificate,
    so acceptance is gated on proof: the greedy heuristic is trusted
    only when its cardinality *equals* the exact minimum hitting number
    of the violated rows (a sound lower bound -- any repair changes at
    least one cell per violated row), falling back to the cell-disjoint
    packing of :func:`repair_lower_bound` when the hitting-set search
    blows its caps.  When greedy overshoots,
    :func:`_certified_support_search` climbs support sizes with full
    infeasibility proofs, so whatever it returns is card-minimal by
    construction.  Anything else falls through to the exact tier.
    """
    violated_sets = [
        frozenset(g.cells()) for g in grounds if not g.holds(working)
    ]
    h, hitting_sets, certified, complete = minimum_hitting_sets(
        violated_sets
    )
    bound = h if certified else repair_lower_bound(grounds, working)

    translation = translate(
        working,
        constraints,
        grounds=list(grounds),
        objective=RepairObjective.CARDINALITY,
    )
    result = greedy_repair(translation)
    if result is not None and result.changes == bound:
        assignment = {
            cell: float(result.z_values[i])
            for i, cell in enumerate(translation.cells)
            if float(result.z_values[i]) != float(working.get_value(*cell))
        }
        return _accept_t3_assignment(working, assignment, stats, fixes)

    if certified and complete:
        assignment = _certified_support_search(
            working, grounds, violated_sets, h, hitting_sets
        )
        if assignment is not None:
            return _accept_t3_assignment(working, assignment, stats, fixes)

    stats.ambiguous += 1
    return False


def run_cascade(
    database: Database,
    constraints: Sequence[AggregateConstraint],
    *,
    grounds: Optional[Sequence[GroundConstraint]] = None,
    misrepair_budget: int = 0,
) -> PyTuple[Database, CascadeReport]:
    """Run tiers T1-T3 over a working copy of *database*.

    Returns ``(working copy, report)``.  The working copy satisfies
    every ground row the cascade resolved; ``report.n_residual > 0``
    means the exact tier (T4) must finish the job on the returned copy.
    The original *database* is never mutated.

    *grounds* lets callers reuse an already-grounded system (steady
    constraints make it value-independent); omitted, the system is
    grounded here.
    """
    if misrepair_budget < 0:
        raise CascadeError(
            f"misrepair_budget must be >= 0, got {misrepair_budget}"
        )
    system = (
        list(grounds)
        if grounds is not None
        else ground_constraints(constraints, database, require_steady=True)
    )
    working = database.copy()
    by_cell = _grounds_by_cell(system)
    budget = _Budget(misrepair_budget)
    fixes: List[CascadeFix] = []

    initial_violated = [g for g in system if not g.holds(working)]
    report = CascadeReport(
        budget=misrepair_budget, n_violations=len(initial_violated)
    )
    t1 = TierStats(tier=TIER_INVERSION, attempted=len(initial_violated))
    t2 = TierStats(tier=TIER_BACKSOLVE)
    t3 = TierStats(tier=TIER_GREEDY)
    report.tiers = [t1, t2, t3]
    if not initial_violated:
        return working, report

    # T1 <-> T2 joint fixpoint: each accepted fix can unlock the other
    # tier (a repaired cell turns a two-unknown row into a back-solvable
    # one, and vice versa).
    def open_rows() -> int:
        return sum(1 for g in system if not g.holds(working))

    while True:
        before = open_rows()
        started = time.perf_counter()
        progressed_t1 = _inversion_pass(
            working, system, by_cell, budget, t1, fixes
        )
        t1.wall_time += time.perf_counter() - started
        after_t1 = open_rows()
        t1.resolved += before - after_t1

        started = time.perf_counter()
        progressed_t2 = _backsolve_pass(
            working, system, by_cell, budget, t2, fixes
        )
        t2.wall_time += time.perf_counter() - started
        after_t2 = open_rows()
        t2.resolved += after_t1 - after_t2

        if not (progressed_t1 or progressed_t2):
            break

    # Handed-on accounting: a tier's fallthroughs are the initial rows
    # it (and its fixpoint partner, upstream of it) did not clear.
    t1.fallthroughs = report.n_violations - t1.resolved
    t2.attempted = t1.fallthroughs
    t2.fallthroughs = t2.attempted - t2.resolved

    remaining = open_rows()
    t3.attempted = remaining
    if remaining:
        started = time.perf_counter()
        _greedy_pass(working, constraints, system, t3, fixes)
        t3.wall_time += time.perf_counter() - started
        t3.resolved = remaining - open_rows()
    t3.fallthroughs = open_rows()

    report.fixes = fixes
    report.budget_spent = budget.spent
    report.n_residual = open_rows()
    return working, report
