"""Append-only batch checkpoint journal: crash-safe progress, cheap resume.

``repair_batch`` can journal every completed task result to a
checkpoint file.  The file is JSON-lines:

- line 1 is a **header** record (``{"kind": "header", ...}``) carrying
  the batch shape (task count, backend, timeout) so a resume against a
  *different* batch is refused loudly;
- every subsequent line is one **result** record
  (``{"kind": "result", "index": i, "fingerprint": ..., ...}``)
  holding the full :class:`~repro.repair.batch.BatchItemResult` --
  status, repair updates, objective, gap, error text and the complete
  per-solve :class:`~repro.milp.solver.SolveStats` list -- so a
  resumed run reproduces the uninterrupted run's aggregates exactly.

Durability discipline: each record is written as one ``write()`` of a
full line followed by ``flush()`` + ``os.fsync()``, so a crash (power
loss, OOM kill, operator ^C) can lose at most the record being
written.  The loader tolerates exactly that failure mode: a truncated
or corrupt *final* line is discarded; corruption anywhere earlier
raises :class:`CheckpointError` because it means something other than
a mid-append crash damaged the file.

Resume correctness is anchored on **task fingerprints**: a SHA-256
over the task's name, backend, objective, pins, weights, constraint
definitions and the full database content.  A journaled result is only
reused when the fingerprint of the task *now* matches the fingerprint
recorded *then* -- editing an input CSV between runs silently turns the
stale entry into a miss instead of resurrecting a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.milp.solver import SolveStats
from repro.relational.database import Database
from repro.repair.updates import AtomicUpdate, Repair

JOURNAL_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is unusable for the requested resume."""


# ---------------------------------------------------------------------------
# Task fingerprints
# ---------------------------------------------------------------------------


def _hash_database(digest: "hashlib._Hash", database: Database) -> None:
    for relation_name in database.schema.relation_names:
        digest.update(relation_name.encode("utf-8"))
        for row in database.relation(relation_name):
            digest.update(repr((row.tuple_id, tuple(row.values))).encode("utf-8"))


def task_fingerprint(
    task: "RepairTask",  # noqa: F821 (circular-safe)
    *,
    strategy: str = "exact",
    misrepair_budget: int = 0,
) -> str:
    """A stable content hash of everything that determines a task's result.

    *strategy* / *misrepair_budget* are the batch-level defaults; the
    task's own overrides win.  They are part of the identity because a
    cascade repair and an exact repair of the same instance are
    different results (different tier provenance, possibly different
    -- though equally minimal -- update sets), so a journal written
    under one must not replay for the other.
    """
    digest = hashlib.sha256()
    digest.update(repr(task.name).encode("utf-8"))
    digest.update(repr(task.backend).encode("utf-8"))
    digest.update(repr(task.objective.value).encode("utf-8"))
    effective_strategy = getattr(task, "strategy", None) or strategy
    effective_budget = getattr(task, "misrepair_budget", None)
    if effective_budget is None:
        effective_budget = misrepair_budget
    # Hashed only when non-default so journals from before the cascade
    # existed keep verifying.
    if effective_strategy != "exact" or effective_budget != 0:
        digest.update(
            repr((effective_strategy, effective_budget)).encode("utf-8")
        )
    digest.update(
        repr(sorted((task.pins or {}).items())).encode("utf-8")
    )
    digest.update(
        repr(sorted((task.weights or {}).items())).encode("utf-8")
    )
    for constraint in task.constraints:
        digest.update(repr(constraint).encode("utf-8"))
    _hash_database(digest, task.database)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Result (de)serialisation
# ---------------------------------------------------------------------------


def result_to_record(result: "BatchItemResult", fingerprint: str) -> Dict[str, Any]:  # noqa: F821
    """One JSON-safe journal record for a completed task."""
    return {
        "kind": "result",
        "index": result.index,
        "name": result.name,
        "fingerprint": fingerprint,
        "status": result.status,
        "objective": result.objective,
        "backend_used": result.backend_used,
        "fallback_taken": result.fallback_taken,
        "approximate": result.approximate,
        "gap": result.gap,
        "attempts": result.attempts,
        "error": result.error,
        "wall_time": result.wall_time,
        "repair": None
        if result.repair is None
        else [
            {
                "relation": u.relation,
                "tuple_id": u.tuple_id,
                "attribute": u.attribute,
                "old_value": u.old_value,
                "new_value": u.new_value,
            }
            for u in result.repair
        ],
        "stats": [s.as_dict() for s in result.stats],
        "violations": result.violations,
        "certified": result.certified,
    }


def record_to_result(record: Dict[str, Any]) -> "BatchItemResult":  # noqa: F821
    """Rebuild a :class:`BatchItemResult` from its journal record."""
    from repro.repair.batch import BatchItemResult  # circular at import time

    repair = None
    if record.get("repair") is not None:
        repair = Repair(
            AtomicUpdate(
                relation=u["relation"],
                tuple_id=u["tuple_id"],
                attribute=u["attribute"],
                old_value=u["old_value"],
                new_value=u["new_value"],
            )
            for u in record["repair"]
        )
    stats = [SolveStats(**entry) for entry in record.get("stats", [])]
    return BatchItemResult(
        index=record["index"],
        name=record.get("name", ""),
        status=record["status"],
        repair=repair,
        objective=record.get("objective"),
        backend_used=record.get("backend_used", ""),
        fallback_taken=bool(record.get("fallback_taken", False)),
        approximate=bool(record.get("approximate", False)),
        gap=record.get("gap"),
        attempts=int(record.get("attempts", 1)),
        error=record.get("error"),
        wall_time=float(record.get("wall_time", 0.0)),
        stats=stats,
        violations=record.get("violations"),
        certified=record.get("certified"),
        resumed=True,
    )


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


@dataclass
class LoadedJournal:
    """Everything a resume needs from an existing checkpoint file."""

    header: Dict[str, Any]
    records: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: Number of trailing bytes discarded as a torn (mid-crash) write.
    truncated_bytes: int = 0


def _parses_as_record(line: bytes) -> bool:
    if not line.strip():
        return False
    try:
        return isinstance(json.loads(line.decode("utf-8")), dict)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return False


class CheckpointJournal:
    """Append-only, fsync-per-record journal of batch task results."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)

    # -- writing -----------------------------------------------------------

    def _append_line(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), allow_nan=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def write_header(self, **meta: Any) -> None:
        self._append_line({"kind": "header", "version": JOURNAL_VERSION, **meta})

    def append_result(self, result: "BatchItemResult", fingerprint: str) -> None:  # noqa: F821
        self._append_line(result_to_record(result, fingerprint))

    # -- reading -----------------------------------------------------------

    def exists(self) -> bool:
        return self.path.exists() and self.path.stat().st_size > 0

    def load(self) -> LoadedJournal:
        """Parse the journal, tolerating a torn tail only.

        A *torn tail* is an unparseable suffix with no valid record
        after it -- the shape a crash mid-append leaves behind (the
        garbage may span several newlines; torn bytes are arbitrary).
        Unparseable bytes *followed by* valid records are mid-file
        corruption and stay a hard error: silently skipping them would
        mean replaying a journal somebody (or some disk) edited.
        """
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        parsed: List[Dict[str, Any]] = []
        truncated = 0
        offset = 0
        for position, line in enumerate(lines):
            if not line.strip():
                offset += len(line) + 1
                continue
            try:
                parsed.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if not any(
                    _parses_as_record(rest) for rest in lines[position + 1:]
                ):
                    truncated = len(raw) - offset
                    break
                raise CheckpointError(
                    f"{self.path}: corrupt journal line {position + 1} "
                    f"(not at end of file): {exc}"
                ) from exc
            offset += len(line) + 1
        if not parsed:
            raise CheckpointError(f"{self.path}: journal is empty")
        header = parsed[0]
        if header.get("kind") != "header":
            raise CheckpointError(
                f"{self.path}: first record is not a header (got "
                f"{header.get('kind')!r})"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"{self.path}: journal version {header.get('version')!r} is "
                f"not supported (expected {JOURNAL_VERSION})"
            )
        loaded = LoadedJournal(header=header, truncated_bytes=truncated)
        for record in parsed[1:]:
            if record.get("kind") != "result":
                continue
            # Last write wins: a retried task's newer record replaces
            # the older one.
            loaded.records[int(record["index"])] = record
        return loaded

    def truncate_torn_tail(self) -> int:
        """Cut any torn tail off the file; returns bytes discarded.

        ``load`` tolerates a torn tail, but only at end-of-file --
        appending new records *past* one would strand the garbage
        mid-file and make the journal unloadable after a second crash.
        Every resume path must therefore call this before its first
        append.
        """
        if not self.exists():
            return 0
        loaded = self.load()
        if loaded.truncated_bytes:
            keep = self.path.stat().st_size - loaded.truncated_bytes
            with open(self.path, "rb+") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
        return loaded.truncated_bytes

    def load_completed(
        self,
        tasks: "List[RepairTask]",  # noqa: F821
        fingerprints: List[str],
        *,
        expected_meta: Optional[Dict[str, Any]] = None,
        require_certified: bool = False,
    ) -> Tuple[Dict[int, "BatchItemResult"], LoadedJournal]:  # noqa: F821
        """Results reusable for *tasks*, keyed by task index.

        A journaled record is reused only when its index is in range
        and its recorded fingerprint matches the task's current
        fingerprint.  ``expected_meta`` entries (e.g. ``n_tasks``,
        ``backend``) are cross-checked against the header; a mismatch
        raises :class:`CheckpointError` because it means the journal
        belongs to a different batch configuration.

        ``require_certified=True`` additionally drops journaled
        *repaired* results whose ``certified`` flag is not ``True`` --
        the crash-recovery replay of the repair service, which promises
        to re-solve any uncertified tail rather than inherit it.
        (Results that carry no repair to certify -- consistent or
        failed tasks -- pass through on their status alone.)
        """
        loaded = self.load()
        for key, expected in (expected_meta or {}).items():
            if key not in loaded.header:
                # A streaming-intake header (repair service submit())
                # cannot know e.g. n_tasks up front; absence is "not
                # recorded", not a mismatch.
                continue
            recorded = loaded.header.get(key)
            if recorded != expected:
                raise CheckpointError(
                    f"{self.path}: header {key}={recorded!r} does not match "
                    f"this batch ({key}={expected!r}); refusing to resume"
                )
        completed: Dict[int, "BatchItemResult"] = {}
        for index, record in loaded.records.items():
            if not 0 <= index < len(tasks):
                continue
            if record.get("fingerprint") != fingerprints[index]:
                continue  # the input changed since the journal was written
            if (
                require_certified
                and record.get("status") in ("repaired", "relaxed")
                and record.get("certified") is not True
            ):
                continue  # uncertified tail: re-solve, never replay
            completed[index] = record_to_result(record)
        return completed, loaded
