"""Atomic updates, consistent database updates, repairs (Defs. 2-5).

An *atomic update* ``u = <t, A, v'>`` replaces the value of measure
attribute ``A`` in tuple ``t`` with ``v'``.  Updates address tuples by
``(relation, tuple_id)`` -- the stable identity assigned at insertion
-- so ``lambda(u) = <tuple, attribute>`` is the triple
``(relation, tuple_id, attribute)``, exactly the *cell* of the
grounding layer.

A set of atomic updates is a *consistent database update* iff no two
updates touch the same cell; a *repair* is a consistent database
update whose application satisfies the constraints.  Cardinality of a
repair = number of updates = the paper's ``|lambda(rho)|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from repro.constraints.grounding import Cell
from repro.relational.database import Database
from repro.relational.domains import Domain, DomainError, coerce_value


class RepairError(ValueError):
    """Raised for ill-formed updates or repairs."""


@dataclass(frozen=True)
class AtomicUpdate:
    """``<t, A, v'>``: set measure attribute *attribute* of the tuple
    identified by ``(relation, tuple_id)`` to *new_value*."""

    relation: str
    tuple_id: int
    attribute: str
    old_value: float
    new_value: float

    @property
    def cell(self) -> Cell:
        """``lambda(u)``: the (tuple, attribute) pair this update touches."""
        return (self.relation, self.tuple_id, self.attribute)

    @property
    def delta(self) -> float:
        """``y_i = z_i - v_i``: the signed change of the value."""
        return self.new_value - self.old_value

    def __post_init__(self) -> None:
        if self.new_value == self.old_value:
            raise RepairError(
                f"atomic update on {self.cell} must change the value "
                f"(both are {self.old_value!r})"
            )

    def __str__(self) -> str:
        return (
            f"{self.relation}[{self.tuple_id}].{self.attribute}: "
            f"{_fmt(self.old_value)} -> {_fmt(self.new_value)}"
        )


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return str(value)


class Repair:
    """A consistent database update (Definition 3) -- possibly a repair.

    The constructor enforces consistency: two updates may not address
    the same cell.  Whether the update set actually *repairs* a given
    database w.r.t. given constraints is checked by the engine
    (:meth:`repro.repair.engine.RepairEngine.is_repair`).
    """

    def __init__(self, updates: Iterable[AtomicUpdate]) -> None:
        self._updates: List[AtomicUpdate] = []
        self._by_cell: Dict[Cell, AtomicUpdate] = {}
        for update in updates:
            if update.cell in self._by_cell:
                raise RepairError(
                    f"two atomic updates address the same cell {update.cell}"
                )
            self._by_cell[update.cell] = update
            self._updates.append(update)
        # Canonical order: by cell, so repairs compare and print stably.
        self._updates.sort(key=lambda u: u.cell)

    @property
    def updates(self) -> List[AtomicUpdate]:
        return list(self._updates)

    def cells(self) -> List[Cell]:
        """``lambda(U)``: the set of cells touched, in canonical order."""
        return [update.cell for update in self._updates]

    @property
    def cardinality(self) -> int:
        """``|lambda(rho)|``: the number of values changed."""
        return len(self._updates)

    def update_for(self, cell: Cell) -> Optional[AtomicUpdate]:
        return self._by_cell.get(cell)

    def restricted_to(self, cells: Iterable[Cell]) -> "Repair":
        """The sub-update touching only *cells* (used by the validator)."""
        wanted = set(cells)
        return Repair(u for u in self._updates if u.cell in wanted)

    def __iter__(self) -> Iterator[AtomicUpdate]:
        return iter(self._updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Repair):
            return NotImplemented
        return self._updates == other._updates

    def __hash__(self) -> int:
        return hash(tuple(self._updates))

    def __str__(self) -> str:
        if not self._updates:
            return "Repair(empty)"
        body = "; ".join(str(u) for u in self._updates)
        return f"Repair({self.cardinality} updates: {body})"

    def __repr__(self) -> str:
        return str(self)


def apply_repair(database: Database, repair: Repair) -> Database:
    """Return ``rho(D)``: a copy of *database* with *repair* applied.

    The original instance is never mutated.  Values are coerced into
    the attribute domain, so applying a repair with a fractional value
    to an integer attribute raises.
    """
    repaired = database.copy()
    for update in repair:
        schema = repaired.schema.relation(update.relation)
        domain = schema.domain_of(update.attribute)
        if not repaired.schema.is_measure(update.relation, update.attribute):
            raise RepairError(
                f"{update.relation}.{update.attribute} is not a measure "
                f"attribute; repairs only change measure values"
            )
        current = repaired.get_value(update.relation, update.tuple_id, update.attribute)
        if current != update.old_value:
            raise RepairError(
                f"update {update} expected old value {update.old_value!r}, "
                f"database holds {current!r}"
            )
        try:
            new_value = coerce_value(update.new_value, domain)
        except DomainError as exc:
            raise RepairError(
                f"update {update}: value does not fit domain {domain}: {exc}"
            ) from exc
        repaired.set_value(
            update.relation, update.tuple_id, update.attribute, new_value
        )
    return repaired
