"""The MILP construction of Section 5.

Given a database ``D`` and steady aggregate constraints ``AC``:

1. ``S(AC)`` -- every ground constraint becomes one linear
   (in)equality over per-cell variables ``z_i`` (done symbolically in
   :mod:`repro.constraints.grounding`);
2. ``S'(AC)`` -- difference variables ``y_i = z_i - v_i`` where ``v_i``
   is the current database value;
3. ``S''(AC)`` -- binary indicators ``delta_i`` linked by the Big-M
   rows ``y_i - M delta_i <= 0`` and ``-y_i - M delta_i <= 0``;
4. ``S*(AC)`` -- minimise ``sum(delta_i)``.

Any optimal solution of ``S*(AC)`` is an M-bounded card-minimal repair,
and by Lemma 1 of [Flesca-Furfaro-Parisi, DBPL 2005] an M-bounded
card-minimal repair exists whenever any repair exists, for M the
theoretical bound below.

Two Big-M regimes are provided:

- :func:`theoretical_big_m` computes the paper's bound
  ``n * (m a)^(2m + 1)`` (from Papadimitriou's integer-programming
  bound [22]) in exact integer arithmetic.  For the running example it
  is ``20 * (28 * 250)^57`` -- about 10^219 -- which documents why the
  bound is a *theoretical* device: no floating-point solver can use it.
- :func:`practical_big_m` computes a data-dependent bound: the sum of
  the absolute values of every involved cell, every right-hand side and
  every frozen constant, scaled by a safety factor.  For
  balance-sheet-style equality systems (where every repaired value is a
  signed combination of existing values and constants) this bound is
  ample; the engine additionally verifies the solved repair against the
  constraints and escalates M if the solve comes back infeasible or
  suspiciously tight.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple as PyTuple

from repro.constraints.constraint import AggregateConstraint, Relop
from repro.constraints.grounding import Cell, GroundConstraint, ground_constraints
from repro.diagnostics import (
    DegenerateTableError,
    InvalidValueError,
    ensure_finite_cell,
)
from repro.milp.iis import IISResult
from repro.milp.model import MILPModel, Sense, Solution, VarType
from repro.relational.database import Database
from repro.relational.domains import Domain
from repro.repair.updates import AtomicUpdate, Repair


class TranslationError(ValueError):
    """Raised when the repair problem cannot be translated."""


class DegenerateTranslationError(DegenerateTableError, TranslationError):
    """No measure cells to repair.

    Subclasses both :class:`TranslationError` (historical contract:
    callers catch it around :func:`translate`) and the taxonomy's
    :class:`~repro.diagnostics.DegenerateTableError` (the batch engine
    classifies it as a deterministic input failure, never retried on
    the fallback backend).
    """


class BigMStrategy(enum.Enum):
    """How the Big-M constant of ``S''(AC)`` is chosen."""

    #: The data-dependent bound of :func:`practical_big_m` (default).
    PRACTICAL = "practical"
    #: The paper's exact bound; usable only when it fits in a float.
    THEORETICAL = "theoretical"
    #: A caller-supplied constant.
    FIXED = "fixed"


class RepairObjective(enum.Enum):
    """Which notion of minimality the MILP optimises.

    The paper's semantics is :attr:`CARDINALITY` (Definition 5).  The
    others are natural alternatives from the repair literature and are
    compared in the A4 ablation bench:

    - :attr:`WEIGHTED_CARDINALITY` -- ``min sum(w_i * delta_i)``:
      cells carry per-cell weights; DART-specific use: weights derived
      from the wrapper's cell matching scores, so low-confidence
      acquisitions are cheaper to change (a confidence prior);
    - :attr:`TOTAL_CHANGE` -- ``min sum(|y_i|)``: the minimum
      total-value-modification semantics of cost-based repairing
      (Bohannon et al., SIGMOD 2005 [7] in the paper's references).
    """

    CARDINALITY = "cardinality"
    WEIGHTED_CARDINALITY = "weighted-cardinality"
    TOTAL_CHANGE = "total-change"


def theoretical_big_m(
    n_variables: int, m_equalities: int, max_abs_coefficient: int
) -> int:
    """The paper's bound ``n * (m a)^(2m + 1)`` as an exact integer.

    ``m`` counts the equalities of the augmented system ``S'(AC)``
    (``N + r`` in the paper's notation), ``n`` its variables
    (``2N + r``), and ``a`` the largest absolute value among the system
    coefficients -- which includes the current database values ``v_i``,
    since they appear as constants in ``y_i = z_i - v_i``.
    """
    if n_variables < 1 or m_equalities < 1:
        raise TranslationError("theoretical bound needs n >= 1 and m >= 1")
    a = max(1, int(math.ceil(max_abs_coefficient)))
    return n_variables * (m_equalities * a) ** (2 * m_equalities + 1)


def practical_big_m(
    values: Sequence[float],
    grounds: Sequence[GroundConstraint],
    *,
    safety_factor: float = 4.0,
) -> float:
    """A data-dependent Big-M: ample for balance-style equality systems.

    Sum of |current values|, |right-hand sides| and |frozen constants|,
    times ``safety_factor``, floor 1000.  The engine cross-checks every
    solution and escalates if the bound ever binds.
    """
    total = sum(abs(float(v)) for v in values)
    total += sum(abs(g.rhs) + abs(g.constant) for g in grounds)
    max_coeff = max(
        (abs(c) for g in grounds for c in g.coefficients.values()), default=1.0
    )
    return max(1000.0, safety_factor * total * max(1.0, max_coeff))


@dataclass
class MILPTranslation:
    """The instance ``S*(AC)`` plus the bookkeeping to read repairs back.

    ``cells`` fixes the index order: ``cells[i]`` corresponds to the
    paper's variables ``z_{i+1}``, ``y_{i+1}``, ``delta_{i+1}``, and
    ``values[i]`` is the current database value ``v_{i+1}``.
    """

    model: MILPModel
    cells: List[Cell]
    values: List[float]
    big_m: float
    grounds: List[GroundConstraint]
    pins: Dict[Cell, float]
    integer_cells: List[bool]
    objective: "RepairObjective" = None  # set by translate()
    weights: Optional[List[float]] = None

    @property
    def n(self) -> int:
        """The paper's ``N``: number of involved database values."""
        return len(self.cells)

    def index_of(self, cell: Cell) -> int:
        return self.cells.index(cell)

    def extract_repair(self, solution: Solution) -> Repair:
        """Read the repair ``rho(s*)`` out of a usable solution.

        Accepts proven optima and anytime (``feasible_gap``) incumbents
        -- both carry a feasible assignment; anything else has no point
        to read a repair from.
        """
        if not solution.is_usable:
            raise TranslationError(
                f"cannot extract a repair from a {solution.status.value} solution"
            )
        updates: List[AtomicUpdate] = []
        for i, cell in enumerate(self.cells):
            z_value = solution.values[f"z{i + 1}"]
            if self.integer_cells[i]:
                z_value = round(z_value)
            original = self.values[i]
            if abs(z_value - original) > 1e-6:
                updates.append(
                    AtomicUpdate(
                        relation=cell[0],
                        tuple_id=cell[1],
                        attribute=cell[2],
                        old_value=original,
                        new_value=z_value,
                    )
                )
        return Repair(updates)

    def binding_deltas(self, solution: Solution, slack: float = 0.05) -> List[Cell]:
        """Cells whose ``|y_i|`` landed within ``slack * M`` of the bound.

        A non-empty answer suggests M was too tight and the engine
        should escalate.
        """
        if solution.values is None:
            return []
        tight: List[Cell] = []
        for i, cell in enumerate(self.cells):
            y_value = abs(solution.values[f"y{i + 1}"])
            if y_value >= (1.0 - slack) * self.big_m:
                tight.append(cell)
        return tight

    def format_like_figure4(self) -> str:
        """Render the instance in the layout of the paper's Figure 4."""
        lines: List[str] = []
        if self.objective is RepairObjective.TOTAL_CHANGE:
            terms = " + ".join(f"t{i + 1}" for i in range(self.n))
        elif self.objective is RepairObjective.WEIGHTED_CARDINALITY:
            assert self.weights is not None
            terms = " + ".join(
                f"{_fmt(w)}*d{i + 1}" for i, w in enumerate(self.weights)
            )
        else:
            terms = " + ".join(f"d{i + 1}" for i in range(self.n))
        lines.append(f"min ({terms})")
        lines.append("subject to:")
        for ground in self.grounds:
            lines.append("  " + self._format_ground(ground))
        for i in range(self.n):
            lines.append(f"  y{i + 1} = z{i + 1} - {_fmt(self.values[i])}")
        if self.objective is RepairObjective.TOTAL_CHANGE:
            for i in range(self.n):
                lines.append(f"  t{i + 1} >= y{i + 1},  t{i + 1} >= -y{i + 1}")
        else:
            for i in range(self.n):
                lines.append(f"  y{i + 1} - M*d{i + 1} <= 0")
                lines.append(f"  -y{i + 1} - M*d{i + 1} <= 0")
        for cell, value in sorted(self.pins.items()):
            lines.append(f"  z{self.index_of(cell) + 1} = {_fmt(value)}   (operator pin)")
        integral = all(self.integer_cells)
        domain = "Z" if integral else "Z or R (per attribute)"
        if self.objective is RepairObjective.TOTAL_CHANGE:
            lines.append(
                f"  z_i, y_i in {domain},  t_i >= 0,  i in [1..{self.n}]"
            )
        else:
            lines.append(
                f"  z_i, y_i in {domain},  d_i in {{0,1}},  i in [1..{self.n}]"
            )
        lines.append(f"  M = {_fmt(self.big_m)}")
        return "\n".join(lines)

    def _format_ground(self, ground: GroundConstraint) -> str:
        parts: List[str] = []
        for cell in sorted(ground.coefficients, key=self.cells.index):
            coefficient = ground.coefficients[cell]
            name = f"z{self.cells.index(cell) + 1}"
            if not parts:
                if coefficient == 1:
                    parts.append(name)
                elif coefficient == -1:
                    parts.append(f"-{name}")
                else:
                    parts.append(f"{_fmt(coefficient)}*{name}")
            else:
                sign = "+" if coefficient > 0 else "-"
                magnitude = abs(coefficient)
                rendered = name if magnitude == 1 else f"{_fmt(magnitude)}*{name}"
                parts.append(f"{sign} {rendered}")
        lhs = " ".join(parts) if parts else "0"
        rhs = ground.rhs - ground.constant
        return f"{lhs} {ground.relop} {_fmt(rhs)}"


    def structural_rows(self) -> List[int]:
        """Indices of model rows that are neither grounds nor pins.

        The ``y_i`` definitions, Big-M links and ``t_i`` absolute-value
        rows are satisfiable in isolation for any ``z``; IIS extraction
        probes them as one batch (they only ever ride along with a
        ground/pin conflict, they never *are* the conflict).
        """
        structural: List[int] = []
        for index, constraint in enumerate(self.model.constraints):
            kind, _ = _classify_row_name(constraint.name)
            if kind == "structural":
                structural.append(index)
        return structural

    def conflict_report(self, iis: "IISResult") -> "ConflictReport":
        """Map an IIS over ``self.model`` back to paper-level objects."""
        grounds: List[GroundConstraint] = []
        pins: Dict[Cell, float] = {}
        structural: List[str] = []
        for member in iis.members:
            kind, index = _classify_row_name(member.name)
            if kind == "ground" and index is not None and index < len(self.grounds):
                grounds.append(self.grounds[index])
            elif kind == "pin" and index is not None and 1 <= index <= self.n:
                cell = self.cells[index - 1]
                pins[cell] = self.pins.get(cell, self.values[index - 1])
            else:
                structural.append(member.name or f"row#{member.index}")
        return ConflictReport(
            grounds=grounds,
            pins=pins,
            structural=structural,
            proven_minimal=iis.proven_minimal,
            probes=iis.probes,
        )


def _classify_row_name(name: str) -> PyTuple[str, Optional[int]]:
    """Classify a translation row name: ground / pin / structural.

    Returns ``(kind, index)`` where index is the ground index (into
    ``MILPTranslation.grounds``) or the 1-based cell number of a pin.
    """
    if name.startswith("g") and ":" in name:
        prefix = name[1:].split(":", 1)[0]
        if prefix.isdigit():
            return "ground", int(prefix)
    if name.startswith("pin") and name[3:].isdigit():
        return "pin", int(name[3:])
    return "structural", None


@dataclass
class ConflictReport:
    """An IIS translated back to ground constraints, pins and cells.

    This is the payload behind ``--explain-infeasible`` and the
    ``infeasible_system`` diagnostic detail: the smallest set of
    paper-level facts that cannot hold together.
    """

    grounds: List[GroundConstraint] = field(default_factory=list)
    pins: Dict[Cell, float] = field(default_factory=dict)
    structural: List[str] = field(default_factory=list)
    proven_minimal: bool = True
    probes: int = 0

    @property
    def cells(self) -> List[Cell]:
        """Every cell touched by the conflict, sorted."""
        involved: Dict[Cell, None] = {}
        for ground in self.grounds:
            for cell in ground.coefficients:
                involved.setdefault(cell)
        for cell in self.pins:
            involved.setdefault(cell)
        return sorted(involved)

    def summary(self) -> str:
        parts = [
            f"{len(self.grounds)} ground constraint(s)",
            f"{len(self.pins)} pin(s)",
        ]
        if self.structural:
            parts.append(f"{len(self.structural)} structural row(s)")
        minimal = "minimal" if self.proven_minimal else "not proven minimal"
        return f"conflict over {', '.join(parts)} ({minimal})"

    def describe(self) -> str:
        """Multi-line, operator-facing rendering of the conflict."""
        lines = [self.summary()]
        for ground in self.grounds:
            lines.append(f"  constraint [{ground.source}]: {ground}")
        for cell, value in sorted(self.pins.items()):
            relation, tuple_id, attribute = cell
            lines.append(
                f"  pin: {relation}[{tuple_id}].{attribute} = {_fmt(value)}"
            )
        for name in self.structural:
            lines.append(f"  structural row: {name}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """The structured ``infeasible_system`` diagnostic payload."""
        return {
            "grounds": [
                {
                    "source": g.source,
                    "constraint": str(g),
                    "relop": str(g.relop),
                    "rhs": g.rhs,
                }
                for g in self.grounds
            ],
            "pins": [
                {
                    "relation": cell[0],
                    "tuple_id": cell[1],
                    "attribute": cell[2],
                    "value": value,
                }
                for cell, value in sorted(self.pins.items())
            ],
            "cells": [list(cell) for cell in self.cells],
            "structural_rows": list(self.structural),
            "proven_minimal": self.proven_minimal,
            "probes": self.probes,
        }


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


def translate(
    database: Database,
    constraints: Sequence[AggregateConstraint],
    *,
    pins: Optional[Mapping[Cell, float]] = None,
    strategy: BigMStrategy = BigMStrategy.PRACTICAL,
    big_m: Optional[float] = None,
    grounds: Optional[Sequence[GroundConstraint]] = None,
    objective: RepairObjective = RepairObjective.CARDINALITY,
    weights: Optional[Mapping[Cell, float]] = None,
) -> MILPTranslation:
    """Build the instance ``S*(AC)`` for *database* and *constraints*.

    ``pins`` are operator-imposed exact values for individual cells
    (Section 6.3): each pin adds the equality ``z_i = v``.  A
    pre-computed ground system may be passed via ``grounds`` (the
    validation loop reuses it across iterations).

    ``objective`` selects the minimality notion (see
    :class:`RepairObjective`); ``weights`` supplies per-cell weights
    for :attr:`RepairObjective.WEIGHTED_CARDINALITY` (missing cells
    default to weight 1; weights must be positive).
    """
    if grounds is None:
        grounds = ground_constraints(constraints, database, require_steady=True)
    pins = dict(pins or {})

    # Index the involved cells; keep a stable tuple order so z indices
    # match the paper's presentation (z_i follows the i-th tuple).
    seen: Dict[Cell, None] = {}
    for ground in grounds:
        for cell in ground.coefficients:
            seen.setdefault(cell)
    for cell in pins:
        seen.setdefault(cell)
    cells = sorted(seen, key=lambda c: (c[0], c[1], c[2]))
    if not cells:
        raise DegenerateTranslationError(
            "no measure cells are involved in the constraints; nothing to repair"
        )

    values: List[float] = []
    integer_cells: List[bool] = []
    schema = database.schema
    for relation, tuple_id, attribute in cells:
        # Acquisition -> repair boundary: reject NaN/inf/overflow here,
        # with coordinates, instead of letting them poison the lowering.
        values.append(
            ensure_finite_cell(
                database.get_value(relation, tuple_id, attribute),
                relation, tuple_id, attribute,
            )
        )
        domain = schema.relation(relation).domain_of(attribute)
        integer_cells.append(domain is Domain.INTEGER)

    for ground in grounds:
        if not (math.isfinite(ground.constant) and math.isfinite(ground.rhs)):
            # A non-measure numeric attribute (folded into the frozen
            # constant) or a constraint bound was NaN/inf.
            raise InvalidValueError(
                f"ground constraint from {ground.source!r} has a non-finite "
                f"constant ({ground.constant!r}) or bound ({ground.rhs!r}); "
                f"a non-measure numeric cell or constraint constant is invalid",
                relation=ground.source,
            )

    if strategy is BigMStrategy.FIXED:
        if big_m is None:
            raise TranslationError("BigMStrategy.FIXED requires big_m")
        chosen_m = float(big_m)
    elif strategy is BigMStrategy.THEORETICAL:
        n_vars = 2 * len(cells) + len(grounds)
        m_rows = len(cells) + len(grounds)
        max_abs = max(
            [abs(v) for v in values]
            + [abs(g.rhs) + abs(g.constant) for g in grounds]
            + [abs(c) for g in grounds for c in g.coefficients.values()]
            + [1.0]
        )
        exact = theoretical_big_m(n_vars, m_rows, int(math.ceil(max_abs)))
        if exact > 1e15:
            raise TranslationError(
                f"theoretical Big-M is {exact:.3e}-ish ({exact.bit_length()} bits); "
                f"it cannot be used numerically -- use BigMStrategy.PRACTICAL"
            )
        chosen_m = float(exact)
    else:
        chosen_m = practical_big_m(values, grounds)
    if big_m is not None and strategy is not BigMStrategy.FIXED:
        chosen_m = float(big_m)

    cell_weights: List[float] = []
    if objective is RepairObjective.WEIGHTED_CARDINALITY:
        weight_map = dict(weights or {})
        for cell in cells:
            weight = float(weight_map.get(cell, 1.0))
            if weight <= 0:
                raise TranslationError(
                    f"weight for cell {cell} must be positive, got {weight}"
                )
            cell_weights.append(weight)
    elif weights:
        raise TranslationError(
            "weights are only meaningful with "
            "RepairObjective.WEIGHTED_CARDINALITY"
        )

    model = MILPModel("S*(AC)")
    z_vars = []
    y_vars = []
    d_vars = []
    t_vars = []
    use_deltas = objective is not RepairObjective.TOTAL_CHANGE
    for i, (cell, is_integer) in enumerate(zip(cells, integer_cells)):
        var_type = VarType.INTEGER if is_integer else VarType.REAL
        # Intersect the Big-M box with the schema's declared value
        # bounds (e.g. Price >= 0): no repair may leave them.
        declared_lower, declared_upper = schema.bounds_of(cell[0], cell[2])
        lower = -chosen_m if declared_lower is None else max(-chosen_m, declared_lower)
        upper = chosen_m if declared_upper is None else min(chosen_m, declared_upper)
        if lower > upper:
            raise TranslationError(
                f"declared bounds on {cell[0]}.{cell[2]} leave no feasible "
                f"value within the Big-M box"
            )
        z_vars.append(
            model.add_variable(f"z{i + 1}", var_type, lower=lower, upper=upper)
        )
    for i, is_integer in enumerate(integer_cells):
        var_type = VarType.INTEGER if is_integer else VarType.REAL
        y_vars.append(model.add_variable(f"y{i + 1}", var_type))
    if use_deltas:
        for i in range(len(cells)):
            d_vars.append(model.add_variable(f"d{i + 1}", VarType.BINARY))
    else:
        # |y_i| linearised as t_i >= +/- y_i; no binaries needed.
        for i in range(len(cells)):
            t_vars.append(model.add_variable(f"t{i + 1}", VarType.REAL, lower=0.0))

    index_of = {cell: i for i, cell in enumerate(cells)}

    # S(AC): the ground system over the z variables.
    for g_index, ground in enumerate(grounds):
        expr = sum(
            (coefficient * z_vars[index_of[cell]]
             for cell, coefficient in ground.coefficients.items()),
            start=0,
        )
        rhs = ground.rhs - ground.constant
        if not ground.coefficients:
            # An empty trivially-false ground constraint: unrepairable.
            if not Relop.holds(ground.relop, ground.constant, ground.rhs):
                raise TranslationError(
                    f"ground constraint {ground.source!r} is constant-false; "
                    f"no repair of measure values can satisfy it"
                )
            continue
        if ground.relop == Relop.LE:
            constraint = expr <= rhs
        elif ground.relop == Relop.GE:
            constraint = expr >= rhs
        else:
            constraint = expr == rhs
        model.add_constraint(constraint, name=f"g{g_index}:{ground.source}")

    # S'(AC): y_i = z_i - v_i.
    for i in range(len(cells)):
        model.add_constraint(
            y_vars[i] - z_vars[i] == -values[i], name=f"y{i + 1}_def"
        )

    if use_deltas:
        # S''(AC): the Big-M link rows.
        for i in range(len(cells)):
            model.add_constraint(
                y_vars[i] - chosen_m * d_vars[i] <= 0, name=f"link+{i + 1}"
            )
            model.add_constraint(
                -1 * y_vars[i] - chosen_m * d_vars[i] <= 0, name=f"link-{i + 1}"
            )
    else:
        for i in range(len(cells)):
            model.add_constraint(t_vars[i] - y_vars[i] >= 0, name=f"abs+{i + 1}")
            model.add_constraint(t_vars[i] + y_vars[i] >= 0, name=f"abs-{i + 1}")

    # Operator pins (Section 6.3): z_i = pinned value.
    for cell, pinned_value in pins.items():
        i = index_of[cell]
        model.add_constraint(z_vars[i] == float(pinned_value), name=f"pin{i + 1}")

    # The objective: S*(AC) minimises the number of changed values;
    # the alternative semantics minimise weighted count / total change.
    if objective is RepairObjective.CARDINALITY:
        model.set_objective(sum(d_vars, start=0))
    elif objective is RepairObjective.WEIGHTED_CARDINALITY:
        model.set_objective(
            sum((w * d for w, d in zip(cell_weights, d_vars)), start=0)
        )
    else:
        model.set_objective(sum(t_vars, start=0))

    return MILPTranslation(
        model=model,
        cells=cells,
        values=values,
        big_m=chosen_m,
        grounds=list(grounds),
        pins=pins,
        integer_cells=integer_cells,
        objective=objective,
        weights=cell_weights or None,
    )
