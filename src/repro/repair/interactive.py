"""The supervised validation loop of Section 6.3.

DART does not apply repairs blindly: the computed repair is shown to a
human *operator*, update by update.  For each suggested update the
operator compares the suggested value with the source document and

- **accepts** it (the values coincide), which pins the database item to
  the suggested value, or
- **rejects** it and reveals the actual source value, which pins the
  item to that value.

Pins become equality constraints of the next MILP instance and a new
repair is computed; the loop ends when a proposed repair consists
entirely of already-validated values.  Updates are displayed in
*involvement order* -- items occurring in more ground constraints
first -- the paper's heuristic for converging in few iterations when
the operator validates only a prefix of each proposal.

The :class:`OracleOperator` simulates the human against a known
ground-truth database (exactly the comparison the paper's operator
performs against the source document), which makes
"iterations to acceptance" and "values inspected" measurable at scale.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple as PyTuple

logger = logging.getLogger(__name__)

from repro.constraints.grounding import Cell, GroundConstraint
from repro.relational.database import Database
from repro.repair.engine import RepairEngine, RepairOutcome, UnrepairableError
from repro.repair.translation import ConflictReport
from repro.repair.updates import AtomicUpdate, Repair


@dataclass(frozen=True)
class Verdict:
    """The operator's answer for one suggested update."""

    accepted: bool
    #: On rejection, the actual source value the operator read.
    actual_value: Optional[float] = None


class Operator(Protocol):
    """Anything that can play the operator role."""

    def review(self, update: AtomicUpdate) -> Verdict:
        """Compare *update*'s suggested value against the source."""
        ...


class OracleOperator:
    """An operator that reads the source values from a ground-truth DB.

    When the acquired database is supplied, tuples are matched to the
    ground truth through the relation's declared *key* (e.g.
    ``(Year, Subsection)`` for the running example) -- robust even when
    the wrapper dropped or reordered rows, because the key attributes
    are lexical values the msi binding already normalised.  Without an
    acquired database (or without a declared key) matching falls back
    to tuple ids, which assumes identical insertion order.
    """

    def __init__(
        self, ground_truth: Database, acquired: Optional[Database] = None
    ) -> None:
        self.ground_truth = ground_truth
        self.acquired = acquired
        self.reviews = 0
        self._key_index: Dict[PyTuple, float] = {}

    def _truth_value(self, update: AtomicUpdate) -> float:
        schema = self.ground_truth.schema.relation(update.relation)
        if self.acquired is not None and schema.key is not None:
            acquired_tuple = self.acquired.relation(update.relation).get(
                update.tuple_id
            )
            key = acquired_tuple.key_values()
            for candidate in self.ground_truth.relation(update.relation):
                if candidate.key_values() == key:
                    return float(candidate[update.attribute])
            raise KeyError(
                f"ground truth has no {update.relation} tuple with key {key}"
            )
        return float(
            self.ground_truth.get_value(
                update.relation, update.tuple_id, update.attribute
            )
        )

    def review(self, update: AtomicUpdate) -> Verdict:
        self.reviews += 1
        true_value = self._truth_value(update)
        if true_value == float(update.new_value):
            return Verdict(accepted=True)
        return Verdict(accepted=False, actual_value=true_value)


class FallibleOperator:
    """An oracle operator that makes mistakes at a configurable rate.

    The paper assumes a perfect operator; real data-entry clerks
    occasionally wave a wrong value through or mistype the value they
    read off the source.  With probability ``slip_rate`` a review goes
    wrong: an update that should be accepted is rejected with a
    slightly perturbed "source" value, or one that should be rejected
    is accepted.  Used to measure how gracefully the validation loop
    degrades (garbage verdicts do poison pins -- the loop is exactly
    as reliable as its operator, which the tests make explicit).
    """

    def __init__(
        self, ground_truth: Database, *, slip_rate: float = 0.05, seed: int = 0,
        acquired: Optional[Database] = None,
    ) -> None:
        if not 0.0 <= slip_rate <= 1.0:
            raise ValueError("slip_rate must be in [0, 1]")
        self._oracle = OracleOperator(ground_truth, acquired=acquired)
        self.slip_rate = slip_rate
        self.slips = 0
        import random

        self._rng = random.Random(seed)

    @property
    def reviews(self) -> int:
        return self._oracle.reviews

    def review(self, update: AtomicUpdate) -> Verdict:
        verdict = self._oracle.review(update)
        if self._rng.random() >= self.slip_rate:
            return verdict
        self.slips += 1
        if verdict.accepted:
            # Misread the source: reject with a perturbed value.
            true_value = float(update.new_value)
            return Verdict(accepted=False, actual_value=true_value + 1.0)
        # Wave the wrong value through.
        return Verdict(accepted=True)


def involvement_order(
    grounds: Sequence[GroundConstraint], updates: Sequence[AtomicUpdate]
) -> List[AtomicUpdate]:
    """Sort *updates* by decreasing ground-constraint involvement.

    The paper displays update ``u1`` before ``u2`` if the item changed
    by ``u1`` occurs in more ground (in)equalities.  Ties break on the
    cell key for determinism.
    """
    counts: Dict[Cell, int] = {}
    for ground in grounds:
        for cell in ground.coefficients:
            counts[cell] = counts.get(cell, 0) + 1
    return sorted(
        updates, key=lambda u: (-counts.get(u.cell, 0), u.cell)
    )


@dataclass
class IterationLog:
    """What happened in one round of the loop.

    An *infeasible* round has no proposal: the accumulated pins made
    the MILP unrepairable.  ``failure`` records the engine's message,
    ``conflict`` the IIS mapped back to constraints and pins (when
    forensics could produce one), and ``retracted`` any pins the loop
    withdrew to continue.
    """

    proposal: Optional[Repair]
    reviewed: List[PyTuple[AtomicUpdate, Verdict]]
    pins_after: Dict[Cell, float]
    infeasible: bool = False
    failure: Optional[str] = None
    conflict: Optional[ConflictReport] = None
    retracted: List[Cell] = field(default_factory=list)


@dataclass
class ValidationSession:
    """Outcome of a full validation loop."""

    accepted_repair: Repair
    repaired_database: Database
    iterations: int
    values_inspected: int
    log: List[IterationLog] = field(default_factory=list)
    converged: bool = True
    #: The terminal failure message when the session ended on an
    #: unrecoverable infeasibility instead of converging.
    failure: Optional[str] = None
    #: How many conflicting pins the loop withdrew to keep going.
    retractions: int = 0

    def render_transcript(self) -> str:
        """A human-readable replay of the session (the text the paper's
        validation interface would have shown)."""
        lines: List[str] = []
        for round_number, entry in enumerate(self.log, start=1):
            if entry.infeasible:
                lines.append(
                    f"iteration {round_number}: INFEASIBLE -- "
                    f"{entry.failure or 'no repair exists under the pins'}"
                )
                if entry.conflict is not None:
                    for detail in entry.conflict.describe().splitlines():
                        lines.append(f"  {detail}")
                for cell in entry.retracted:
                    relation, tuple_id, attribute = cell
                    lines.append(
                        f"  pin on {relation}[{tuple_id}].{attribute} RETRACTED"
                    )
                continue
            lines.append(
                f"iteration {round_number}: proposed repair with "
                f"{entry.proposal.cardinality} update(s)"
            )
            for update, verdict in entry.reviewed:
                if verdict.accepted:
                    lines.append(f"  {update}  -- operator ACCEPTED")
                else:
                    lines.append(
                        f"  {update}  -- operator REJECTED, source value is "
                        f"{verdict.actual_value:g}"
                    )
        if self.failure is not None:
            status = "FAILED (infeasible)"
        elif self.converged:
            status = "accepted"
        else:
            status = "NOT converged"
        lines.append(
            f"result: repair {status} after {self.iterations} iteration(s); "
            f"{self.values_inspected} value(s) inspected; final repair has "
            f"{self.accepted_repair.cardinality} update(s)"
        )
        return "\n".join(lines)


class ValidationLoop:
    """Drive propose -> review -> pin -> re-solve until acceptance."""

    def __init__(
        self,
        engine: RepairEngine,
        operator: Operator,
        *,
        reviews_per_iteration: Optional[int] = None,
        order_updates: bool = True,
        max_iterations: int = 100,
        retract_conflicting_pins: bool = True,
    ) -> None:
        """``reviews_per_iteration`` caps how many updates the operator
        examines before the repair is recomputed (the paper allows
        re-starting "after validating only some of the suggested
        updates"); ``None`` reviews every update of each proposal.
        ``order_updates=False`` disables the involvement heuristic
        (used by the A2 ablation bench).

        ``retract_conflicting_pins`` controls what happens when the
        accumulated pins make the next iteration infeasible (e.g. the
        operator revealed a source value that contradicts a steady
        constraint): when True the loop extracts the conflict, offers
        it to the operator (an optional ``choose_retraction(cells,
        conflict)`` method on the operator picks the pin to withdraw;
        without one the most recent conflicting pin is retracted) and
        continues; when False the session ends cleanly with the failed
        iteration recorded in the transcript.  Either way the loop
        never propagates the engine's error and never loses the
        session log."""
        self.engine = engine
        self.operator = operator
        self.reviews_per_iteration = reviews_per_iteration
        self.order_updates = order_updates
        self.max_iterations = max_iterations
        self.retract_conflicting_pins = retract_conflicting_pins

    def _failed_session(
        self,
        pins: Dict[Cell, float],
        log: List[IterationLog],
        iterations: int,
        values_inspected: int,
        retractions: int,
        failure: str,
    ) -> ValidationSession:
        """End cleanly on an unrecoverable infeasibility: empty repair,
        untouched database, transcript intact."""
        logger.warning("validation session failed: %s", failure)
        return ValidationSession(
            accepted_repair=Repair([]),
            repaired_database=self.engine.database,
            iterations=iterations,
            values_inspected=values_inspected,
            log=log,
            converged=False,
            failure=failure,
            retractions=retractions,
        )

    def _handle_infeasible(
        self,
        error: UnrepairableError,
        pins: Dict[Cell, float],
        pin_order: List[Cell],
        retracted: set,
        log: List[IterationLog],
    ) -> bool:
        """Record the failed iteration; retract a conflicting pin if
        allowed.  Returns True when the loop can continue."""
        conflict = getattr(error, "conflict", None)
        if conflict is None and pins:
            try:
                conflict = self.engine.explain_infeasible(pins=pins)
            except Exception:  # forensics are best-effort here
                conflict = None
        entry = IterationLog(
            proposal=None,
            reviewed=[],
            pins_after=dict(pins),
            infeasible=True,
            failure=str(error),
            conflict=conflict,
        )
        log.append(entry)
        if not self.retract_conflicting_pins or conflict is None:
            return False
        conflicting = [cell for cell in conflict.pins if cell in pins]
        if not conflicting:
            return False
        cell: Optional[Cell] = None
        chooser = getattr(self.operator, "choose_retraction", None)
        if callable(chooser):
            chosen = chooser(list(conflicting), conflict)
            if chosen in conflicting:
                cell = chosen
        if cell is None:
            # Most recent conflicting pin: the freshest verdict is the
            # likeliest data-entry slip, and LIFO preserves the older
            # validations the operator has already invested in.
            cell = max(conflicting, key=pin_order.index)
        del pins[cell]
        retracted.add(cell)
        entry.retracted = [cell]
        entry.pins_after = dict(pins)
        logger.info(
            "retracted conflicting pin on %s[%s].%s; continuing",
            cell[0], cell[1], cell[2],
        )
        return True

    def run(self) -> ValidationSession:
        pins: Dict[Cell, float] = {}
        pin_order: List[Cell] = []
        retracted: set = set()
        log: List[IterationLog] = []
        values_inspected = 0
        iterations = 0
        retractions = 0

        while iterations < self.max_iterations:
            iterations += 1
            try:
                outcome = self.engine.find_card_minimal_repair(pins=pins)
            except UnrepairableError as error:
                if self._handle_infeasible(
                    error, pins, pin_order, retracted, log
                ):
                    retractions += 1
                    continue
                return self._failed_session(
                    pins, log, iterations, values_inspected, retractions,
                    str(error),
                )
            proposal = outcome.repair
            pending = [
                u for u in proposal
                if u.cell not in pins and u.cell not in retracted
            ]
            logger.debug(
                "validation iteration %d: proposal has %d update(s), "
                "%d pending review",
                iterations, proposal.cardinality, len(pending),
            )
            if not pending:
                # Every suggested update was validated in an earlier
                # round (or its pin was retracted): the repair is
                # accepted.
                logger.info(
                    "repair accepted after %d iteration(s), %d value(s) "
                    "inspected", iterations, values_inspected,
                )
                return ValidationSession(
                    accepted_repair=proposal,
                    repaired_database=self.engine.apply(proposal),
                    iterations=iterations,
                    values_inspected=values_inspected,
                    log=log,
                    converged=True,
                    retractions=retractions,
                )
            if self.order_updates:
                pending = involvement_order(self.engine.ground_system, pending)
            if self.reviews_per_iteration is not None:
                pending = pending[: self.reviews_per_iteration]

            reviewed: List[PyTuple[AtomicUpdate, Verdict]] = []
            all_accepted = True
            for update in pending:
                verdict = self.operator.review(update)
                values_inspected += 1
                reviewed.append((update, verdict))
                if verdict.accepted:
                    # Accepting u pins the item to the suggested value.
                    pins[update.cell] = float(update.new_value)
                else:
                    # Rejecting u pins the item to the revealed value.
                    assert verdict.actual_value is not None
                    pins[update.cell] = float(verdict.actual_value)
                    all_accepted = False
                if update.cell not in pin_order:
                    pin_order.append(update.cell)
            log.append(IterationLog(proposal, reviewed, dict(pins)))

            reviewed_all_of_proposal = len(reviewed) == len(
                [u for u in proposal if u.cell is not None]
            ) or self.reviews_per_iteration is None
            if all_accepted and reviewed_all_of_proposal and not [
                u for u in proposal
                if u.cell not in pins and u.cell not in retracted
            ]:
                logger.info(
                    "repair accepted after %d iteration(s), %d value(s) "
                    "inspected", iterations, values_inspected,
                )
                return ValidationSession(
                    accepted_repair=proposal,
                    repaired_database=self.engine.apply(proposal),
                    iterations=iterations,
                    values_inspected=values_inspected,
                    log=log,
                    converged=True,
                    retractions=retractions,
                )

        # Out of iterations: return the best effort, flagged.
        try:
            outcome = self.engine.find_card_minimal_repair(pins=pins)
        except UnrepairableError as error:
            log.append(
                IterationLog(
                    proposal=None,
                    reviewed=[],
                    pins_after=dict(pins),
                    infeasible=True,
                    failure=str(error),
                )
            )
            return self._failed_session(
                pins, log, iterations, values_inspected, retractions,
                str(error),
            )
        return ValidationSession(
            accepted_repair=outcome.repair,
            repaired_database=self.engine.apply(outcome.repair),
            iterations=iterations,
            values_inspected=values_inspected,
            log=log,
            converged=False,
            retractions=retractions,
        )
