"""Baseline repairers (not card-minimal) for the evaluation benches.

The paper motivates card-minimality by contrast (Example 7 exhibits a
3-update repair where a 1-update repair exists).  These baselines make
that contrast measurable:

- :func:`greedy_local_repair` -- repeatedly pick a violated ground
  equality and fix it by changing a single cell (the one involved in
  the fewest other constraints, to limit ripple), until consistent or
  out of rounds.  This is the "chase the violations" strategy a naive
  implementation would use.
- :func:`aggregate_recompute_repair` -- the spreadsheet strategy:
  assume all *detail* values are right and recompute every dependent
  value from them (iterate each equality's "defined" cell to fixpoint).

Both return a :class:`~repro.repair.updates.Repair` (or ``None`` on
non-convergence); both can return repairs of much larger cardinality
than optimal, and the recompute baseline repairs the wrong cells
whenever the acquisition error hit a detail value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.constraints.constraint import AggregateConstraint, Relop
from repro.constraints.grounding import (
    Cell,
    GroundConstraint,
    GroundingEngine,
    ground_constraints,
)
from repro.relational.database import Database, diff_databases
from repro.relational.domains import Domain
from repro.repair.updates import AtomicUpdate, Repair


def _repair_from_diff(original: Database, modified: Database) -> Repair:
    updates = [
        AtomicUpdate(relation, tuple_id, attribute, float(old), float(new))
        for relation, tuple_id, attribute, old, new in diff_databases(
            original, modified
        )
    ]
    return Repair(updates)


def _round_for(database: Database, cell: Cell, value: float) -> float:
    relation, _, attribute = cell
    domain = database.schema.relation(relation).domain_of(attribute)
    if domain is Domain.INTEGER:
        return float(round(value))
    return value


def greedy_local_repair(
    database: Database,
    constraints: Sequence[AggregateConstraint],
    *,
    max_rounds: int = 1000,
) -> Optional[Repair]:
    """Fix one violated ground constraint per round by one cell change.

    Within the violated constraint, the cell involved in the fewest
    *other* ground constraints is changed (least ripple); the new value
    is whatever makes this constraint hold exactly.  Returns ``None``
    if the instance is not consistent after ``max_rounds``.
    """
    engine = GroundingEngine(database, list(constraints), require_steady=True)
    grounds = engine.system
    involvement: Dict[Cell, int] = {}
    for ground in grounds:
        for cell in ground.coefficients:
            involvement[cell] = involvement.get(cell, 0) + 1

    working = database.copy()
    for _ in range(max_rounds):
        violated = [g for g in grounds if not g.holds(working)]
        if not violated:
            return _repair_from_diff(database, working)
        ground = violated[0]
        # Pick the least-entangled cell with a usable coefficient.
        candidates = sorted(
            ground.coefficients, key=lambda c: (involvement[c], c)
        )
        cell = candidates[0]
        coefficient = ground.coefficients[cell]
        current = float(working.get_value(*cell))
        lhs = ground.evaluate(working)
        # Choose the new value making the constraint tight:
        # lhs - coeff*current + coeff*new == rhs.
        target = (ground.rhs - (lhs - coefficient * current)) / coefficient
        working.set_value(cell[0], cell[1], cell[2], _round_for(working, cell, target))
    return None


def aggregate_recompute_repair(
    database: Database,
    constraints: Sequence[AggregateConstraint],
    *,
    max_rounds: int = 100,
) -> Optional[Repair]:
    """The spreadsheet strategy: re-evaluate every "formula" cell.

    Each ground equality is *oriented*: one of its cells is chosen as
    the cell the equality defines (its "formula output"), the rest are
    inputs.  Orientation is a greedy matching -- every equality claims
    a distinct cell, preferring negative-coefficient cells (totals are
    conventionally written ``details - total = 0``) and, among those,
    cells involved in more equalities (aggregates feed other
    formulas).  The oriented system is then evaluated to fixpoint.

    Equalities that cannot claim a cell (all of their cells are claimed
    by other formulas -- e.g. a pure cross-check like the accounting
    equation) are treated as checks: if any of them fails after the
    fixpoint, recomputation cannot repair the instance and ``None`` is
    returned.  This mirrors real spreadsheets, where a broken check row
    needs a human, and is exactly the behavioural contrast with the
    MILP repair the E7 bench measures.
    """
    engine = GroundingEngine(database, list(constraints), require_steady=True)
    grounds = [g for g in engine.system if g.relop == Relop.EQ]
    checks = [g for g in engine.system if g.relop != Relop.EQ]

    involvement: Dict[Cell, int] = {}
    for ground in engine.system:
        for cell in ground.coefficients:
            involvement[cell] = involvement.get(cell, 0) + 1

    claimed: Dict[int, Cell] = {}
    taken: set = set()
    for index, ground in enumerate(grounds):
        candidates = sorted(
            (c for c in ground.coefficients if c not in taken),
            key=lambda c: (
                ground.coefficients[c] >= 0,  # prefer negative coefficient
                -involvement[c],
                c,
            ),
        )
        if candidates:
            claimed[index] = candidates[0]
            taken.add(candidates[0])

    working = database.copy()
    for _ in range(max_rounds):
        changed = False
        for index, ground in enumerate(grounds):
            cell = claimed.get(index)
            if cell is None or ground.holds(working):
                continue
            coefficient = ground.coefficients[cell]
            current = float(working.get_value(*cell))
            lhs = ground.evaluate(working)
            target = (ground.rhs - (lhs - coefficient * current)) / coefficient
            new_value = _round_for(working, cell, target)
            if new_value != current:
                working.set_value(cell[0], cell[1], cell[2], new_value)
                changed = True
        if not changed:
            break
    still_violated = [g for g in engine.system if not g.holds(working)]
    if still_violated:
        return None
    return _repair_from_diff(database, working)
