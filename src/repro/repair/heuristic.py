"""A greedy primal repair heuristic over the ground system.

The exact backends solve ``S*(AC)`` to optimality, which is NP-hard in
general (Theorem 2).  This module trades the optimality certificate for
speed: starting from the *current* database values it repeatedly picks
the most-violated ground constraint and moves one of its cells just far
enough to make the constraint tight, snapping to integers where the
schema demands and clamping into the variable's bound box.  Moves are
scored lexicographically -- total violation first, then cardinality,
then total value change -- and the loop insists on strict improvement,
so it terminates.

The result is **verified**: the assembled full assignment (z, y, and
the delta/t variables) must pass ``model.check_feasible`` or the
heuristic reports failure.  Two uses:

- as a standalone approximate backend (``backend="heuristic"`` on the
  repair engine) when a feasible repair now beats a minimal repair
  later;
- as an **incumbent seed** for the branch-and-bound backends: a
  feasible point with objective ``k`` lets the search prune every node
  whose bound reaches ``k`` from the very first node.

Unlike the evaluation baseline
:func:`repro.repair.baselines.greedy_local_repair` (which walks the
*database* and ignores the MILP machinery), this heuristic works on the
:class:`~repro.repair.translation.MILPTranslation`: it honours operator
pins, schema bounds, the Big-M box and the selected objective, and its
output is a complete MILP variable assignment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constraints.constraint import Relop
from repro.milp.deadline import Deadline
from repro.repair.translation import MILPTranslation, RepairObjective

#: Values within this of the original count as "unchanged".
CHANGE_TOL = 1e-6

#: A move must improve the score by more than this to be accepted.
IMPROVE_TOL = 1e-9


@dataclass
class HeuristicResult:
    """A verified (not necessarily minimal) repair point.

    ``assignment`` is the full MILP variable vector (z's, y's, then the
    delta or t block) in the model's index order, ready to be used as a
    branch-and-bound incumbent.
    """

    assignment: np.ndarray
    z_values: List[float]
    objective: float
    changes: int
    iterations: int


def _score(
    translation: MILPTranslation, z: List[float], index_of: Dict
) -> Tuple[float, int, float]:
    """(total violation, cells changed, total |change|) -- lexicographic."""
    violation = 0.0
    for ground in translation.grounds:
        value = ground.constant + sum(
            coefficient * z[index_of[cell]]
            for cell, coefficient in ground.coefficients.items()
        )
        if ground.relop == Relop.LE:
            violation += max(0.0, value - ground.rhs)
        elif ground.relop == Relop.GE:
            violation += max(0.0, ground.rhs - value)
        else:
            violation += abs(value - ground.rhs)
    changes = 0
    residual = 0.0
    for i, original in enumerate(translation.values):
        delta = abs(z[i] - original)
        if delta > CHANGE_TOL:
            changes += 1
            residual += delta
    return (violation, changes, residual)


def greedy_repair(
    translation: MILPTranslation,
    *,
    max_iterations: int = 500,
    deadline: Optional[Deadline] = None,
) -> Optional[HeuristicResult]:
    """Greedily repair the z vector; ``None`` when the heuristic fails.

    Failure does *not* mean the instance is unrepairable -- only that
    single-cell tightening moves could not reach feasibility (e.g.
    equality grounds over integer cells with fractional tight points).

    ``deadline`` (a :class:`~repro.milp.deadline.Deadline`) is checked
    once per improvement round; on expiry the heuristic gives up and
    returns ``None`` -- it never raises, because a missing heuristic
    seed only costs performance, not correctness.
    """
    n = translation.n
    cells = translation.cells
    index_of = {cell: i for i, cell in enumerate(cells)}
    z_variables = translation.model.variables[:n]

    z = [float(v) for v in translation.values]
    frozen = [False] * n
    for cell, pinned in translation.pins.items():
        i = index_of[cell]
        z[i] = float(pinned)
        frozen[i] = True

    current = _score(translation, z, index_of)
    iterations = 0
    while current[0] > CHANGE_TOL and iterations < max_iterations:
        if deadline is not None and deadline.expired:
            return None
        iterations += 1
        # The most-violated ground constraint drives this round.
        worst = None
        worst_amount = CHANGE_TOL
        for ground in translation.grounds:
            value = ground.constant + sum(
                coefficient * z[index_of[cell]]
                for cell, coefficient in ground.coefficients.items()
            )
            if ground.relop == Relop.LE:
                amount = max(0.0, value - ground.rhs)
            elif ground.relop == Relop.GE:
                amount = max(0.0, ground.rhs - value)
            else:
                amount = abs(value - ground.rhs)
            if amount > worst_amount:
                worst = ground
                worst_amount = amount
        if worst is None:
            break

        best_move: Optional[Tuple[int, float]] = None
        best_score = current
        for cell, coefficient in worst.coefficients.items():
            i = index_of[cell]
            if frozen[i] or abs(coefficient) < 1e-12:
                continue
            rest = worst.constant + sum(
                other_coefficient * z[index_of[other_cell]]
                for other_cell, other_coefficient in worst.coefficients.items()
                if other_cell != cell
            )
            tight = (worst.rhs - rest) / coefficient
            candidates = [tight]
            if translation.integer_cells[i]:
                candidates = [math.floor(tight), math.ceil(tight)]
            # Also consider reverting to the original value: it may
            # satisfy the row while undoing an earlier change.
            candidates.append(translation.values[i])
            for candidate in candidates:
                value = min(
                    max(float(candidate), z_variables[i].lower),
                    z_variables[i].upper,
                )
                if translation.integer_cells[i]:
                    value = float(round(value))
                if value == z[i]:
                    continue
                previous = z[i]
                z[i] = value
                score = _score(translation, z, index_of)
                z[i] = previous
                if score < best_score:
                    best_score = score
                    best_move = (i, value)
        if best_move is None or current[0] - best_score[0] <= IMPROVE_TOL:
            return None  # stalled: no single-cell move reduces violation
        z[best_move[0]] = best_move[1]
        current = best_score

    if current[0] > CHANGE_TOL:
        return None

    assignment = _assemble(translation, z)
    if not translation.model.check_feasible(assignment):
        return None
    objective = translation.model.evaluate_objective(assignment)
    changes = sum(
        1
        for i, original in enumerate(translation.values)
        if abs(z[i] - original) > CHANGE_TOL
    )
    return HeuristicResult(
        assignment=assignment,
        z_values=list(z),
        objective=float(objective),
        changes=changes,
        iterations=iterations,
    )


def _assemble(translation: MILPTranslation, z: List[float]) -> np.ndarray:
    """Lift z values to the full MILP vector (z, y, then delta or t)."""
    n = translation.n
    x = np.zeros(translation.model.n_variables)
    for i in range(n):
        y = z[i] - translation.values[i]
        x[i] = z[i]
        x[n + i] = y
        if translation.objective is RepairObjective.TOTAL_CHANGE:
            x[2 * n + i] = abs(y)
        else:
            x[2 * n + i] = 1.0 if abs(y) > CHANGE_TOL else 0.0
    return x
