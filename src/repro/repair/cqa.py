"""Consistent query answering under the card-minimal semantics.

DART's companion paper ([16] = Flesca, Furfaro, Parisi, *Consistent
Query Answer on Numerical Databases under Aggregate Constraints*,
DBPL 2005 -- the work Section 3.2 builds on) studies not only repairs
but *reliable answers*: the value of an aggregate query is consistent
iff it is the same in **every** card-minimal repair.

This module implements that notion on top of the MILP machinery.  For
an aggregation function ``chi`` and ground arguments, the answer range
over all card-minimal repairs is computed with two further MILPs:

1. solve ``S*(AC)`` for the optimal cardinality ``k*``;
2. minimise (resp. maximise) the linearised query value subject to
   ``S''(AC)`` **and** ``sum(delta_i) = k*``.

If the greatest lower bound equals the least upper bound, the query
has a consistent answer (the paper's glb/lub-style semantics for
aggregates); otherwise only the range is reliable.

On the running example, the corrupted value "total cash receipts 2003"
has the consistent answer 220: the card-minimal repair is unique, so
*every* query is consistent.  When several card-minimal repairs exist
(e.g. a product-price error that any product of the category could
absorb), the range is the honest answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple as PyTuple

from repro.constraints.aggregates import AggregationFunction
from repro.constraints.grounding import Cell
from repro.milp.model import MILPModel, Solution, SolveStatus
from repro.milp.solver import solve
from repro.repair.engine import RepairEngine, UnrepairableError
from repro.repair.translation import RepairObjective, TranslationError, translate


@dataclass(frozen=True)
class ConsistentAnswer:
    """The answer range of an aggregate query over card-minimal repairs."""

    glb: float
    lub: float
    #: the cardinality every considered repair has
    cardinality: int
    #: value of the query on the (inconsistent) acquired instance
    acquired_value: float

    @property
    def is_consistent(self) -> bool:
        """True iff the query evaluates identically in every repair."""
        return abs(self.lub - self.glb) <= 1e-9

    @property
    def consistent_value(self) -> Optional[float]:
        """The single reliable value, when one exists."""
        return self.glb if self.is_consistent else None

    def __str__(self) -> str:
        if self.is_consistent:
            return f"consistent answer: {self.glb:g}"
        return f"answer range: [{self.glb:g}, {self.lub:g}]"


def _query_linear_form(
    engine: RepairEngine,
    function: AggregationFunction,
    arguments: Sequence[Any],
) -> PyTuple[Dict[Cell, float], float]:
    """Linearise ``chi(arguments)`` over the measure cells of D.

    Steadiness guarantees the involved-tuple set is repair-invariant,
    so the query value in any repair is this fixed linear form over
    the repaired cell values.
    """
    schema = engine.database.schema
    coefficients: Dict[Cell, float] = {}
    constant = 0.0
    involved = function.involved_tuples(engine.database, list(arguments))
    linear = function.expression.linearize()
    constant += linear.constant * len(involved)
    for row in involved:
        assert row.tuple_id is not None
        for attribute, weight in linear.coefficients:
            if schema.is_measure(function.relation, attribute):
                cell = (function.relation, row.tuple_id, attribute)
                coefficients[cell] = coefficients.get(cell, 0.0) + weight
            else:
                constant += weight * float(row[attribute])
    return coefficients, constant


def consistent_aggregate_answer(
    engine: RepairEngine,
    function: AggregationFunction,
    arguments: Sequence[Any],
    *,
    pins: Optional[Mapping[Cell, float]] = None,
) -> ConsistentAnswer:
    """The glb/lub of ``chi(arguments)`` over all card-minimal repairs.

    Only the card-minimal objective is supported (the semantics is
    defined w.r.t. Definition 5); raises for engines configured with a
    different objective.  Operator ``pins`` restrict the repair space
    exactly as in the validation loop.
    """
    if engine.objective is not RepairObjective.CARDINALITY:
        raise TranslationError(
            "consistent query answering is defined over card-minimal "
            "repairs; the engine must use RepairObjective.CARDINALITY"
        )
    outcome = engine.find_card_minimal_repair(pins=pins)
    cardinality = outcome.cardinality
    translation = outcome.translation
    acquired_value = function.evaluate(engine.database, list(arguments))

    coefficients, constant = _query_linear_form(engine, function, arguments)
    model_template = translation  # reuse cells/index layout

    def optimise(direction: float) -> float:
        # Rebuild S''(AC) fresh (models are single-use) and add the
        # optimal-cardinality equality.
        fresh = translate(
            engine.database,
            engine.constraints,
            pins=pins,
            grounds=engine.ground_system,
            big_m=model_template.big_m,
        )
        model = fresh.model
        deltas = [model.variable(f"d{i + 1}") for i in range(fresh.n)]
        model.add_constraint(
            sum(deltas, start=0) == float(cardinality), name="card*"
        )
        expr = constant
        for cell, weight in coefficients.items():
            if cell in fresh.cells:
                z = model.variable(f"z{fresh.cells.index(cell) + 1}")
                expr = expr + weight * z
            else:
                # The cell is outside every constraint: no repair may
                # change it (changing it could never satisfy anything
                # and would cost a delta), so it contributes its
                # current value.
                expr = expr + weight * float(engine.database.get_value(*cell))
        model.set_objective(direction * expr if not isinstance(expr, float) else 0.0)
        solution = solve(model, backend=engine.backend)
        if solution.status is not SolveStatus.OPTIMAL:
            raise UnrepairableError(
                f"CQA optimisation returned {solution.status.value}"
            )
        if isinstance(expr, float):
            return expr
        assert solution.objective is not None
        return direction * solution.objective

    glb = optimise(+1.0)
    lub = optimise(-1.0)
    return ConsistentAnswer(
        glb=glb,
        lub=lub,
        cardinality=cardinality,
        acquired_value=acquired_value,
    )
