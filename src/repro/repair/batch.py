"""Fault-tolerant parallel batch repair: many documents, many cores, one report.

DART's operational setting is a data-entry shop repairing whole
batches of acquired documents.  Each document's card-minimal repair is
one MILP -- independent of every other document's -- so the corpus is
embarrassingly parallel (HoloClean exploits the same structure by
partitioning repair into independent subproblems).  This module fans a
list of :class:`RepairTask` out over a
``concurrent.futures.ProcessPoolExecutor`` and keeps the batch alive
through everything short of losing the checkpoint file:

- **configurable workers** -- ``workers=None``/``0`` runs sequentially
  in-process (no pickling, one shared cache); ``workers >= 1`` uses a
  process pool;
- **chunked scheduling** -- tasks are shipped to workers in chunks to
  amortise pickling overhead (``chunksize`` defaults to roughly four
  chunks per worker);
- **deterministic ordering** -- results are reassembled by task index,
  so the report is byte-identical to the sequential run regardless of
  completion order;
- **per-task budget + anytime fallback** -- ``timeout`` is a portable
  cooperative deadline (:class:`~repro.milp.deadline.Deadline`,
  monotonic clock, checked inside the solver loop -- no ``SIGALRM``)
  threaded into the engine as ``time_limit``.  A budget that expires
  with an incumbent in hand yields an *approximate* repair with a
  certified optimality gap (``approximate=True``, ``gap``); only a
  budget that expires empty-handed fails the attempt.  Failed attempts
  are retried once on the alternate MILP backend
  (:data:`~repro.milp.solver.FALLBACK_BACKEND`) with a fresh budget --
  unless the failure is an input error
  (:func:`~repro.diagnostics.is_retryable_on_fallback`), which no
  backend can fix.  Both attempts' solver stats are kept, and two
  timeouts report as ``"timeout"``, not a generic error;
- **checkpoint/resume** -- with ``checkpoint=...`` every completed
  task is journalled (append + fsync) to a
  :class:`~repro.repair.checkpoint.CheckpointJournal`; re-running the
  same batch against an existing journal replays the finished tasks
  (fingerprint-verified) and only solves the rest, so an interrupted
  run resumed to completion aggregates identically to an
  uninterrupted one;
- **crash recovery** -- a worker that dies (OOM kill, segfault,
  injected ``SIGKILL``) breaks the pool; the orchestrator identifies
  the in-flight task through per-dispatch sentinel files, counts the
  crash against that task only, respawns the pool after an exponential
  backoff, and re-runs innocent chunkmates at no penalty.  A task that
  keeps killing its worker is **quarantined** after
  ``max_task_retries`` retries instead of sinking the batch.  An
  optional ``hard_timeout`` watchdog terminates workers whose current
  task has been running that long (hung native code, injected hangs),
  funnelling them into the same recovery path;
- **LRU solve cache** -- every engine in a worker shares that worker's
  :class:`~repro.milp.cache.SolveCache`; identical tables re-acquired
  across documents skip the solver entirely.  Caches are per-process;
  the sequential path shares a single cache across the whole corpus.

Every solve emits a :class:`~repro.milp.solver.SolveStats` record;
:class:`BatchReport` aggregates them (wall time, nodes, pivots, cache
hits, fallbacks, gaps, quarantines) into the batch-level accounting
the benches print.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.constraints.constraint import AggregateConstraint
from repro.constraints.grounding import Cell
from repro.diagnostics import (
    SolveTimeoutError,
    WorkerCrashError,
    classify_failure,
    is_retryable_on_fallback,
)
from repro.faultinject import FaultConfig, chaos_before_task
from repro.milp.cache import DEFAULT_CACHE_SIZE, SolveCache
from repro.milp.solver import DEFAULT_BACKEND, FALLBACK_BACKEND, SolveStats
from repro.relational.database import Database
from repro.repair.cascade import TIER_EXACT, TIERS
from repro.repair.checkpoint import CheckpointJournal, task_fingerprint
from repro.repair.engine import ON_INFEASIBLE_MODES, STRATEGIES, RepairEngine
from repro.repair.translation import RepairObjective
from repro.repair.updates import Repair

#: Backwards-compatible alias: the batch timeout used to raise its own
#: ``SolveTimeout``; budgets now surface the taxonomy's typed error.
SolveTimeout = SolveTimeoutError

#: Ceiling on the exponential pool-respawn backoff, seconds.
MAX_BACKOFF = 5.0

#: How often the orchestrator wakes to poll futures / run the watchdog.
POLL_INTERVAL = 0.05

#: Module-level RNG for backoff jitter.  Deliberately *not* seeded from
#: anything deterministic: jitter exists to decorrelate independent
#: processes that crashed at the same instant, and sharing a seed would
#: re-synchronise exactly the retry stampede it is meant to break up.
#: Tests pass their own seeded ``random.Random`` to
#: :func:`respawn_delay` instead.
_BACKOFF_RNG = random.Random()


def respawn_delay(
    base: float,
    previous: float,
    rng: Optional[random.Random] = None,
) -> float:
    """Decorrelated-jitter backoff delay (AWS style), seconds.

    Draws uniformly from ``[base, min(MAX_BACKOFF, 3 * previous)]``, so
    the *expected* delay still grows geometrically while two
    orchestrators that broke their pools in the same instant (shared
    machine, shared sick dependency) almost surely pick different
    delays and stop respawning in lockstep -- plain ``base * 2**n``
    synchronises retries into exactly the thundering herd that keeps
    the shared resource sick.  ``base <= 0`` disables backoff entirely
    (the chaos tests run with ``retry_backoff=0.0``); *previous* is the
    last delay returned, or ``base`` on the first crash.
    """
    if base <= 0:
        return 0.0
    upper = min(MAX_BACKOFF, max(base, 3.0 * previous))
    return (rng or _BACKOFF_RNG).uniform(base, upper)


@dataclass
class RepairTask:
    """One unit of batch work: a (database, constraints) repair scenario."""

    database: Database
    constraints: Sequence[AggregateConstraint]
    name: str = ""
    backend: Optional[str] = None  # None = the batch-level default
    objective: RepairObjective = RepairObjective.CARDINALITY
    weights: Optional[Mapping[Cell, float]] = None
    pins: Optional[Mapping[Cell, float]] = None
    #: Repair strategy override (``"exact"`` / ``"cascade"``); None
    #: inherits the batch-level default.
    strategy: Optional[str] = None
    #: Cascade mis-repair budget override; None inherits the batch's.
    misrepair_budget: Optional[int] = None


@dataclass
class BatchItemResult:
    """Outcome of one task, in the input order of the batch."""

    index: int
    name: str
    #: "repaired" | "consistent" | "relaxed" | "unrepairable" |
    #: "timeout" | "invalid_input" | "degenerate" | "malformed" |
    #: "unbounded" | "crashed" | "quarantined" | "error"
    status: str
    repair: Optional[Repair] = None
    objective: Optional[float] = None
    backend_used: str = DEFAULT_BACKEND
    fallback_taken: bool = False
    #: True when the repair is an anytime incumbent (budget expired);
    #: ``gap`` then bounds its distance from the true optimum.
    approximate: bool = False
    gap: Optional[float] = None
    #: Dispatch attempts consumed (1 = no crash retries).
    attempts: int = 1
    #: True when this result was replayed from a checkpoint journal.
    resumed: bool = False
    #: Exact-arithmetic certification verdict of the delivered repair:
    #: True (certified), False (rejected -- the task then surfaces as
    #: ``status="uncertified"``), or None (certification off, or not
    #: applicable: consistent / failed tasks carry no repair to check).
    certified: Optional[bool] = None
    error: Optional[str] = None
    wall_time: float = 0.0
    stats: List[SolveStats] = field(default_factory=list)
    #: ``on_infeasible="relax"``: the structured violation report of a
    #: relaxed repair (one dict per violated ground constraint), None
    #: for exact repairs.
    violations: Optional[List[Dict]] = None

    @property
    def ok(self) -> bool:
        return self.status in ("repaired", "consistent", "relaxed")

    @property
    def cardinality(self) -> int:
        return self.repair.cardinality if self.repair is not None else 0


@dataclass
class BatchReport:
    """All task results plus batch-level accounting."""

    results: List[BatchItemResult]
    wall_time: float
    workers: int
    cache_size: int
    timeout: Optional[float] = None
    #: Times the worker pool had to be respawned after a crash.
    pool_respawns: int = 0
    #: Checkpoint file in use, if any.
    checkpoint: Optional[str] = None
    #: Durable result store in use, if any.
    store: Optional[str] = None

    @property
    def n_tasks(self) -> int:
        return len(self.results)

    @property
    def n_repaired(self) -> int:
        return sum(1 for r in self.results if r.status == "repaired")

    @property
    def n_consistent(self) -> int:
        return sum(1 for r in self.results if r.status == "consistent")

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def n_fallbacks(self) -> int:
        return sum(1 for r in self.results if r.fallback_taken)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for r in self.results if r.status == "quarantined")

    @property
    def n_approximate(self) -> int:
        return sum(1 for r in self.results if r.approximate)

    @property
    def n_relaxed(self) -> int:
        return sum(1 for r in self.results if r.status == "relaxed")

    @property
    def n_resumed(self) -> int:
        return sum(1 for r in self.results if r.resumed)

    @property
    def n_certified(self) -> int:
        """Tasks whose delivered repair carries an exact certificate."""
        return sum(1 for r in self.results if r.certified is True)

    @property
    def n_uncertified(self) -> int:
        """Tasks whose repair failed certification on every ladder rung."""
        return sum(
            1
            for r in self.results
            if r.certified is False or r.status == "uncertified"
        )

    @property
    def n_degraded(self) -> int:
        """Tasks where the numerics governor stepped down its ladder."""
        return sum(
            1 for r in self.results if any(s.degraded for s in r.stats)
        )

    @property
    def all_stats(self) -> List[SolveStats]:
        return [s for r in self.results for s in r.stats]

    @property
    def total_solves(self) -> int:
        return len(self.all_stats)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.all_stats if s.cache_hit)

    @property
    def cache_misses(self) -> int:
        return self.total_solves - self.cache_hits

    @property
    def total_nodes(self) -> int:
        return sum(s.nodes for s in self.all_stats)

    @property
    def total_pivots(self) -> int:
        return sum(s.simplex_pivots for s in self.all_stats)

    @property
    def solver_seconds(self) -> float:
        """Summed per-solve wall time (CPU-side; > wall_time when parallel)."""
        return sum(s.wall_time for s in self.all_stats)

    @property
    def total_presolve_reductions(self) -> int:
        return sum(s.presolve_reductions for s in self.all_stats)

    @property
    def total_warm_start_hits(self) -> int:
        return sum(s.warm_start_hits for s in self.all_stats)

    @property
    def total_warm_start_fallbacks(self) -> int:
        return sum(s.warm_start_fallbacks for s in self.all_stats)

    @property
    def n_seeded_solves(self) -> int:
        return sum(1 for s in self.all_stats if s.heuristic_seeded)

    @property
    def cascade_tier_hits(self) -> Dict[str, int]:
        """Violated rows resolved per cascade tier, batch-wide.

        Synthetic ``backend="cascade"`` records carry T1-T3 counts;
        the T4 entry counts residual rows that reached a real solver
        (records stamped ``tier="t4-exact"``, cache hits included).
        """
        hits = {tier: 0 for tier in TIERS}
        for record in self.all_stats:
            if record.backend == "cascade":
                hits[record.tier] += record.tier_hits
            elif record.tier == TIER_EXACT:
                hits[TIER_EXACT] = hits[TIER_EXACT] + record.tier_hits
        return hits

    @property
    def n_milp_free(self) -> int:
        """Cascade tasks repaired without any real solver record."""
        count = 0
        for result in self.results:
            cascade_records = [
                s for s in result.stats if s.backend == "cascade"
            ]
            if not cascade_records or result.status != "repaired":
                continue
            if all(
                s.backend == "cascade" or s.tier != TIER_EXACT
                for s in result.stats
            ):
                count += 1
        return count

    def aggregate(self) -> Dict[str, float]:
        """The flat numbers the benches tabulate.

        Everything here is a pure function of the per-task results, so
        an interrupted-then-resumed run aggregates identically to an
        uninterrupted one except for ``wall_time`` (real elapsed time,
        which necessarily differs between runs).
        """
        return {
            "tasks": float(self.n_tasks),
            "repaired": float(self.n_repaired),
            "consistent": float(self.n_consistent),
            "failed": float(self.n_failed),
            "fallbacks": float(self.n_fallbacks),
            "approximate": float(self.n_approximate),
            "relaxed": float(self.n_relaxed),
            "quarantined": float(self.n_quarantined),
            "solves": float(self.total_solves),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "nodes": float(self.total_nodes),
            "simplex_pivots": float(self.total_pivots),
            "presolve_reductions": float(self.total_presolve_reductions),
            "warm_start_hits": float(self.total_warm_start_hits),
            "warm_start_fallbacks": float(self.total_warm_start_fallbacks),
            "seeded_solves": float(self.n_seeded_solves),
            "certified": float(self.n_certified),
            "uncertified": float(self.n_uncertified),
            "degraded": float(self.n_degraded),
            "cuts_rejected": float(
                sum(s.cuts_rejected for s in self.all_stats)
            ),
            "wall_time": self.wall_time,
            "solver_seconds": self.solver_seconds,
            **{
                f"cascade_{tier}": float(hits)
                for tier, hits in self.cascade_tier_hits.items()
            },
            "milp_free": float(self.n_milp_free),
        }

    def summary(self) -> str:
        extras = ""
        if self.n_certified:
            extras += f", {self.n_certified} certified"
        if self.n_uncertified:
            extras += f", {self.n_uncertified} UNCERTIFIED"
        if self.n_degraded:
            extras += f", {self.n_degraded} ladder-degraded"
        if self.n_approximate:
            extras += f", {self.n_approximate} approximate"
        if self.n_relaxed:
            extras += f", {self.n_relaxed} relaxed"
        if self.n_quarantined:
            extras += f", {self.n_quarantined} quarantined"
        if self.n_resumed:
            extras += f", {self.n_resumed} resumed"
        if self.pool_respawns:
            extras += f", {self.pool_respawns} pool respawn(s)"
        return (
            f"{self.n_tasks} task(s) in {self.wall_time:.3f}s "
            f"({self.workers or 'no'} worker(s)): "
            f"{self.n_repaired} repaired, {self.n_consistent} consistent, "
            f"{self.n_failed} failed, {self.n_fallbacks} fallback(s)"
            f"{extras}; "
            f"{self.total_solves} solve(s), "
            f"{self.cache_hits} cache hit(s) / {self.cache_misses} miss(es), "
            f"{self.total_nodes} node(s), {self.total_pivots} pivot(s)"
        )


# ---------------------------------------------------------------------------
# Per-task execution (runs inside a worker or in-process)
# ---------------------------------------------------------------------------


def _attempt(
    task: RepairTask,
    backend: str,
    timeout: Optional[float],
    cache: Optional[SolveCache],
    stats_sink: List[SolveStats],
    on_infeasible: str = "raise",
    strategy: str = "exact",
    misrepair_budget: int = 0,
    certify: bool = True,
) -> Tuple[
    str, Optional[Repair], Optional[float], bool, Optional[float],
    Optional[List[Dict]], Optional[bool],
]:
    """One engine run on one backend; may raise for the retry logic.

    Whatever happens, the engine's solver stats land in *stats_sink*
    -- a failed attempt's work is part of the task's accounting too.
    """
    engine = RepairEngine(
        task.database,
        task.constraints,
        backend=backend,
        objective=task.objective,
        weights=task.weights,
        solve_cache=cache,
        on_infeasible=on_infeasible,
        strategy=task.strategy or strategy,
        misrepair_budget=(
            misrepair_budget
            if task.misrepair_budget is None
            else task.misrepair_budget
        ),
        certify=certify,
    )
    try:
        # Pins may demand values the current (consistent) instance does
        # not have, so the consistency short-circuit only applies to
        # pin-free tasks.
        if not task.pins and engine.is_consistent():
            return "consistent", None, None, False, None, None, None
        outcome = engine.find_card_minimal_repair(pins=task.pins, time_limit=timeout)
    finally:
        stats_sink.extend(engine.solve_stats)
    violations = None
    if outcome.relaxed and outcome.violations is not None:
        violations = [v.as_dict() for v in outcome.violations.violations]
    return (
        "relaxed" if outcome.relaxed else "repaired",
        outcome.repair,
        outcome.objective,
        outcome.approximate,
        outcome.gap,
        violations,
        outcome.certified,
    )


def _combined_failure_status(
    primary_error: BaseException, fallback_error: BaseException
) -> str:
    """Status when both backends failed.

    Both deadlines expiring is a *timeout*, not a generic error; more
    generally the fallback's classification wins unless it is the
    catch-all ``"error"`` and the primary's is more specific.
    """
    primary_status = classify_failure(primary_error)
    fallback_status = classify_failure(fallback_error)
    if fallback_status == "error" and primary_status != "error":
        return primary_status
    return fallback_status


def execute_task(
    task: RepairTask,
    index: int,
    *,
    default_backend: str = DEFAULT_BACKEND,
    timeout: Optional[float] = None,
    retry_fallback: bool = True,
    cache: Optional[SolveCache] = None,
    on_infeasible: str = "raise",
    strategy: str = "exact",
    misrepair_budget: int = 0,
    certify: bool = True,
) -> BatchItemResult:
    """Run one task with budget + fallback-backend semantics.

    The primary backend gets the full *timeout* as a cooperative
    ``time_limit``; a budget that expires with an incumbent downgrades
    to an approximate repair (``approximate=True`` with a certified
    ``gap``) rather than failing.  If the attempt raises -- timeout
    with no incumbent, solver error, unrepairable verdict -- the task
    is retried once on :data:`~repro.milp.solver.FALLBACK_BACKEND`
    with a fresh budget, *unless* the failure is a deterministic input
    error (invalid value, degenerate table, malformed constraint): no
    backend can repair those, so the retry is skipped.  Both attempts'
    solver stats are preserved either way.
    """
    started = time.perf_counter()
    primary = task.backend or default_backend
    stats: List[SolveStats] = []
    try:
        status, repair, objective, approximate, gap, violations, certified = (
            _attempt(
                task, primary, timeout, cache, stats, on_infeasible,
                strategy, misrepair_budget, certify,
            )
        )
        return BatchItemResult(
            index=index,
            name=task.name,
            status=status,
            repair=repair,
            objective=objective,
            backend_used=primary,
            approximate=approximate,
            gap=gap,
            wall_time=time.perf_counter() - started,
            stats=stats,
            violations=violations,
            certified=certified,
        )
    except Exception as primary_error:
        primary_status = classify_failure(primary_error)
        fallback = FALLBACK_BACKEND.get(primary, None)
        if (
            not retry_fallback
            or fallback is None
            or fallback == primary
            or not is_retryable_on_fallback(primary_error)
        ):
            return BatchItemResult(
                index=index,
                name=task.name,
                status=primary_status,
                backend_used=primary,
                error=str(primary_error),
                wall_time=time.perf_counter() - started,
                stats=stats,
            )
        fallback_stats: List[SolveStats] = []
        try:
            status, repair, objective, approximate, gap, violations, certified = (
                _attempt(
                    task, fallback, timeout, cache, fallback_stats, on_infeasible,
                    strategy, misrepair_budget, certify,
                )
            )
            for record in fallback_stats:
                record.fallback = True
            stats.extend(fallback_stats)
            return BatchItemResult(
                index=index,
                name=task.name,
                status=status,
                repair=repair,
                objective=objective,
                backend_used=fallback,
                fallback_taken=True,
                approximate=approximate,
                gap=gap,
                error=f"primary backend {primary!r} failed: {primary_error}",
                wall_time=time.perf_counter() - started,
                stats=stats,
                violations=violations,
                certified=certified,
            )
        except Exception as fallback_error:
            for record in fallback_stats:
                record.fallback = True
            stats.extend(fallback_stats)
            return BatchItemResult(
                index=index,
                name=task.name,
                status=_combined_failure_status(primary_error, fallback_error),
                backend_used=fallback,
                fallback_taken=True,
                error=(
                    f"primary {primary!r}: {primary_error}; "
                    f"fallback {fallback!r}: {fallback_error}"
                ),
                wall_time=time.perf_counter() - started,
                stats=stats,
            )


def _quarantined_result(
    index: int, task: RepairTask, crashes: int, last_error: Optional[str]
) -> BatchItemResult:
    detail = f": {last_error}" if last_error else ""
    return BatchItemResult(
        index=index,
        name=task.name,
        status="quarantined",
        attempts=crashes,
        error=(
            f"worker crashed {crashes} time(s) running this task; "
            f"quarantined{detail}"
        ),
    )


# ---------------------------------------------------------------------------
# Worker plumbing
# ---------------------------------------------------------------------------

#: Per-process solve cache, created by the pool initializer.  Module
#: level so forked/spawned workers reuse it across chunks.
_WORKER_CACHE: Optional[SolveCache] = None

#: Per-process fault-injection config (chaos testing only).
_WORKER_FAULTS: Optional[FaultConfig] = None

#: A chunk entry: (task index, dispatch attempt, task).
_Entry = Tuple[int, int, RepairTask]


def _init_worker(
    cache_size: int,
    fault_config: Optional[FaultConfig] = None,
    store_path: Optional[str] = None,
) -> None:
    global _WORKER_CACHE, _WORKER_FAULTS
    store = None
    if store_path is not None:
        # Imported here, not at module top: worker processes that run
        # store-less batches never pay for sqlite.
        from repro.repair.store import ResultStore

        store = ResultStore(store_path)
    if cache_size > 0 or store is not None:
        _WORKER_CACHE = SolveCache(cache_size, store=store)
    else:
        _WORKER_CACHE = None
    _WORKER_FAULTS = fault_config


def _sentinel(sentinel_dir: Optional[str], index: int, attempt: int, stage: str) -> None:
    """Mark a dispatch stage on disk so the parent can autopsy a crash."""
    if sentinel_dir is None:
        return
    Path(sentinel_dir, f"{index}.{attempt}.{stage}").touch()


def _sentinel_exists(sentinel_dir: str, index: int, attempt: int, stage: str) -> bool:
    return Path(sentinel_dir, f"{index}.{attempt}.{stage}").exists()


def _clear_sentinels(sentinel_dir: str, index: int, attempt: int) -> None:
    """Remove one dispatch's sentinel files once their autopsy is done.

    A crashed attempt's ``start`` marker must not outlive the blame
    decision it informed: were it left behind, any later scan of the
    directory (the hung-task watchdog, a diagnostic sweep) would see a
    started-but-never-finished dispatch and re-convict a task that
    already paid for that crash.
    """
    for stage in ("start", "done"):
        try:
            Path(sentinel_dir, f"{index}.{attempt}.{stage}").unlink()
        except OSError:
            pass


#: Name of the pid file each orchestrator writes into its sentinel
#: directory, so a later run can tell a live run's directory from a
#: leaked one.
_OWNER_PID_FILE = "owner.pid"


def _pid_alive(pid: int) -> bool:
    """Is *pid* a live process we could signal?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by other uid
        return True
    except OSError:  # pragma: no cover - platform oddities
        return False
    return True


def reap_stale_sentinel_dirs(root: Optional[str] = None) -> List[str]:
    """Delete sentinel directories whose owning orchestrator is gone.

    ``_run_pool``'s ``finally`` removes its sentinel directory -- but
    ``kill -9`` (or the fault injector's SIGKILL landing on the parent)
    skips ``finally``, leaking a directory full of
    ``{index}.{attempt}.start`` files in the temp root.  Each directory
    carries its creator's pid (:data:`_OWNER_PID_FILE`); on startup we
    sweep ``repro-batch-*`` directories and remove those whose owner is
    dead, so a prior run's sentinels can never survive to blame an
    innocent task (and the temp root stops accumulating corpses).
    Directories with a *live* owner -- a concurrent batch on the same
    machine -- are left strictly alone.  Returns the paths reaped.
    """
    reaped: List[str] = []
    temp_root = Path(root or tempfile.gettempdir())
    try:
        candidates = list(temp_root.glob("repro-batch-*"))
    except OSError:  # pragma: no cover - unreadable temp root
        return reaped
    for candidate in candidates:
        if not candidate.is_dir():
            continue
        pid_file = candidate / _OWNER_PID_FILE
        try:
            owner = int(pid_file.read_text().strip())
        except (OSError, ValueError):
            # No/garbled pid file: a pre-upgrade leak or a directory
            # torn mid-creation.  Either way nobody owns it.
            owner = -1
        if _pid_alive(owner):
            continue
        shutil.rmtree(candidate, ignore_errors=True)
        reaped.append(str(candidate))
    return reaped


def _run_chunk(payload: Tuple) -> List[BatchItemResult]:
    """Execute one chunk of entries inside a worker."""
    (
        chunk, default_backend, timeout, retry_fallback, sentinel_dir,
        on_infeasible, strategy, misrepair_budget, certify,
    ) = payload
    results = []
    for index, attempt, task in chunk:
        _sentinel(sentinel_dir, index, attempt, "start")
        chaos_before_task(_WORKER_FAULTS, index, attempt, in_pool=True)
        result = execute_task(
            task,
            index,
            default_backend=default_backend,
            timeout=timeout,
            retry_fallback=retry_fallback,
            cache=_WORKER_CACHE,
            on_infeasible=on_infeasible,
            strategy=strategy,
            misrepair_budget=misrepair_budget,
            certify=certify,
        )
        result.attempts = attempt + 1
        _sentinel(sentinel_dir, index, attempt, "done")
        results.append(result)
    return results


def _chunked(items: Sequence, chunksize: int) -> List[List]:
    return [
        list(items[start : start + chunksize])
        for start in range(0, len(items), chunksize)
    ]


# ---------------------------------------------------------------------------
# Pool orchestration with crash recovery
# ---------------------------------------------------------------------------


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Hard-kill every live worker (watchdog path for hung tasks)."""
    for process in list(getattr(pool, "_processes", {}).values()):
        if process.is_alive():
            process.terminate()


def _hung_entry(
    sentinel_dir: str, entries: Sequence[_Entry], hard_timeout: float
) -> Optional[_Entry]:
    """An in-flight entry whose start sentinel is older than the watchdog."""
    now = time.time()
    for index, attempt, task in entries:
        start = Path(sentinel_dir, f"{index}.{attempt}.start")
        if not start.exists():
            continue
        if _sentinel_exists(sentinel_dir, index, attempt, "done"):
            continue
        try:
            age = now - start.stat().st_mtime
        except OSError:
            continue
        if age > hard_timeout:
            return (index, attempt, task)
    return None


def _run_generation(
    chunks: List[List[_Entry]],
    *,
    workers: int,
    backend: str,
    timeout: Optional[float],
    retry_fallback: bool,
    cache_size: int,
    store_path: Optional[str],
    sentinel_dir: str,
    fault_config: Optional[FaultConfig],
    hard_timeout: Optional[float],
    on_infeasible: str,
    strategy: str,
    misrepair_budget: int,
    certify: bool,
    on_result: Callable[[BatchItemResult], None],
) -> Tuple[List[_Entry], bool]:
    """Run one pool lifetime; returns (undelivered entries, pool broke).

    A generation ends either cleanly (every chunk returned) or on the
    first sign of a broken pool -- a future raising
    ``BrokenProcessPool`` (worker died) or the watchdog terminating a
    hung worker.  Entries whose results were not delivered are handed
    back for the next generation; the caller decides which of them
    were at fault (via sentinels) and which were innocent bystanders.
    """
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(cache_size, fault_config, store_path),
    )
    futures: Dict[Future, List[_Entry]] = {}
    broke = False
    delivered: set = set()
    try:
        for chunk in chunks:
            payload = (
                chunk,
                backend,
                timeout,
                retry_fallback,
                sentinel_dir,
                on_infeasible,
                strategy,
                misrepair_budget,
                certify,
            )
            try:
                futures[pool.submit(_run_chunk, payload)] = chunk
            except Exception:
                broke = True
                break
        pending = set(futures)
        while pending and not broke:
            done, pending = wait(
                pending, timeout=POLL_INTERVAL, return_when=FIRST_COMPLETED
            )
            if not done:
                if hard_timeout is None:
                    continue
                in_flight = [e for f in pending for e in futures[f]]
                if _hung_entry(sentinel_dir, in_flight, hard_timeout) is not None:
                    # The futures of the terminated workers now fail
                    # with BrokenProcessPool and drain through the
                    # normal collection path below.
                    _terminate_workers(pool)
                continue
            for future in done:
                try:
                    chunk_results = future.result()
                except Exception:
                    # BrokenProcessPool, lost worker, unpicklable blow-up:
                    # stop the generation and let the caller autopsy.
                    broke = True
                    break
                for result in chunk_results:
                    on_result(result)
                    delivered.add(result.index)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    remaining = [
        entry
        for chunk in futures.values()
        for entry in chunk
        if entry[0] not in delivered
    ]
    # Entries never submitted (submit itself broke) are also undelivered.
    submitted = {entry[0] for chunk in futures.values() for entry in chunk}
    for chunk in chunks:
        for entry in chunk:
            if entry[0] not in submitted and entry[0] not in delivered:
                remaining.append(entry)
    return remaining, broke


def _run_pool(
    indexed: List[Tuple[int, RepairTask]],
    *,
    workers: int,
    backend: str,
    timeout: Optional[float],
    retry_fallback: bool,
    cache_size: int,
    store_path: Optional[str],
    chunksize: int,
    max_task_retries: int,
    retry_backoff: float,
    hard_timeout: Optional[float],
    fault_config: Optional[FaultConfig],
    on_infeasible: str,
    strategy: str,
    misrepair_budget: int,
    certify: bool,
    on_result: Callable[[BatchItemResult], None],
) -> int:
    """Drive the pool to completion through crashes; returns respawn count."""
    crashes: Dict[int, int] = {index: 0 for index, _ in indexed}
    entries: List[_Entry] = [(index, 0, task) for index, task in indexed]
    task_of: Dict[int, RepairTask] = dict(indexed)
    # First, bury the dead: sentinel directories leaked by orchestrators
    # that were SIGKILLed (finally never ran) must not linger.
    reap_stale_sentinel_dirs()
    sentinel_dir = tempfile.mkdtemp(prefix="repro-batch-")
    Path(sentinel_dir, _OWNER_PID_FILE).write_text(str(os.getpid()))
    respawns = 0
    delay = retry_backoff
    try:
        generation = 0
        while entries:
            # Blame from a broken pool is ambiguous: every task that was
            # mid-flight when the pool died looks guilty.  So after the
            # first crash, schedule in waves -- innocents (no crashes
            # yet) run together, shielded from known suspects, and each
            # suspect then runs in a generation of its own where a crash
            # is an unambiguous conviction and a clean exit clears it.
            suspects = [e for e in entries if crashes[e[0]] > 0]
            innocents = [e for e in entries if crashes[e[0]] == 0]
            if generation == 0:
                wave, size, deferred = entries, chunksize, []
            elif innocents and suspects:
                wave, size, deferred = innocents, 1, suspects
            elif len(suspects) > 1:
                wave, size, deferred = suspects[:1], 1, suspects[1:]
            else:
                # After any crash, singleton chunks: one poison task can
                # no longer take chunkmates down with it repeatedly.
                wave, size, deferred = entries, 1, []
            remaining, broke = _run_generation(
                _chunked(wave, size),
                workers=workers,
                backend=backend,
                timeout=timeout,
                retry_fallback=retry_fallback,
                cache_size=cache_size,
                store_path=store_path,
                sentinel_dir=sentinel_dir,
                fault_config=fault_config,
                hard_timeout=hard_timeout,
                on_infeasible=on_infeasible,
                strategy=strategy,
                misrepair_budget=misrepair_budget,
                certify=certify,
                on_result=on_result,
            )
            generation += 1
            if not broke:
                if remaining:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"pool finished cleanly with {len(remaining)} "
                        f"undelivered task(s)"
                    )
                entries = deferred
                continue
            respawns += 1
            next_entries: List[_Entry] = []
            for index, attempt, task in remaining:
                started = _sentinel_exists(sentinel_dir, index, attempt, "start")
                finished = _sentinel_exists(sentinel_dir, index, attempt, "done")
                # The autopsy is over for this dispatch: retire its
                # sentinel files so they can never inform (or misinform)
                # a later scan of the directory.
                _clear_sentinels(sentinel_dir, index, attempt)
                if started and not finished:
                    # This task was mid-flight when its worker died:
                    # the prime suspect.  Count the crash against it.
                    crashes[index] += 1
                    if crashes[index] > max_task_retries:
                        on_result(
                            _quarantined_result(
                                index, task, crashes[index], "worker died mid-task"
                            )
                        )
                        continue
                # Innocent bystanders (never started, or finished but
                # the chunk's result died with the worker) retry free.
                # Either way the re-dispatch gets a fresh attempt
                # number so sentinel files and fault-injection
                # decisions do not collide with the crashed dispatch.
                next_entries.append((index, attempt + 1, task))
            entries = next_entries + deferred
            if entries:
                delay = respawn_delay(retry_backoff, delay)
                if delay > 0:
                    time.sleep(delay)
    finally:
        shutil.rmtree(sentinel_dir, ignore_errors=True)
    return respawns


# ---------------------------------------------------------------------------
# The public entry point
# ---------------------------------------------------------------------------


def repair_batch(
    tasks: Sequence[RepairTask],
    *,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    store: Optional[str] = None,
    retry_fallback: bool = True,
    chunksize: Optional[int] = None,
    backend: str = DEFAULT_BACKEND,
    checkpoint: Optional[str] = None,
    resume: bool = True,
    max_task_retries: int = 2,
    retry_backoff: float = 0.1,
    hard_timeout: Optional[float] = None,
    fault_config: Optional[FaultConfig] = None,
    on_infeasible: str = "raise",
    strategy: str = "exact",
    misrepair_budget: int = 0,
    certify: bool = True,
) -> BatchReport:
    """Repair every task, in parallel when ``workers >= 1``.

    Results come back in task order whatever the completion order.
    ``workers=None`` (or 0) runs in-process with one cache shared by
    the whole corpus; with a pool, each worker process holds its own
    LRU cache of ``cache_size`` solutions (``cache_size=0`` disables
    caching).  ``timeout`` is the per-task solve budget in seconds
    (cooperative, monotonic-clock), applied independently to the
    primary attempt and to the fallback retry; a budget expiring with
    an incumbent yields an approximate repair with a certified gap.

    ``store`` names a durable content-addressed result store
    (:class:`~repro.repair.store.ResultStore`, SQLite): every worker's
    cache gains a shared disk tier, so byte-identical models are solved
    at most once *across* runs and processes, not just within one
    worker's LRU.  Only first-rung exact-certified answers are admitted
    to the store, and hits are re-certified on read.

    ``checkpoint`` names a journal file: completed tasks are appended
    (fsync'd) as they finish, and when ``resume`` is true an existing
    journal replays its fingerprint-verified results instead of
    re-solving them.  ``max_task_retries`` bounds how often a task
    whose worker crashed is re-dispatched before quarantine;
    ``retry_backoff`` seeds the exponential pool-respawn delay.
    ``hard_timeout`` arms a watchdog that terminates a worker whose
    current task has run that many wall-clock seconds (hung native
    code); the task then follows the crash/quarantine path.
    ``fault_config`` threads a chaos configuration into the workers --
    testing only.  ``on_infeasible`` is forwarded to every task's
    :class:`~repro.repair.engine.RepairEngine`: ``"relax"`` turns
    infeasible tasks into ``status="relaxed"`` results carrying their
    violation report instead of ``status="infeasible"``.

    ``strategy`` selects the repair path for every task that does not
    carry its own override (``"exact"`` or ``"cascade"``, see
    :mod:`repro.repair.cascade`); ``misrepair_budget`` is the
    cascade-wide ambiguity allowance forwarded alongside it.  Both are
    part of the checkpoint identity: a journal written under one
    strategy is never replayed for another.

    ``certify`` (default on) makes every engine verify its repair in
    exact rational arithmetic (:mod:`repro.milp.certify`) and lets the
    numerics governor re-solve down its degradation ladder on a
    certification failure.  Results that are uncertified or that only
    exist because the ladder degraded the solve are **never written to
    the checkpoint journal**: a resumed run must re-derive them from
    scratch rather than replay a numerically suspect answer.
    """
    if on_infeasible not in ON_INFEASIBLE_MODES:
        raise ValueError(
            f"on_infeasible must be one of {ON_INFEASIBLE_MODES}, "
            f"got {on_infeasible!r}"
        )
    if strategy not in STRATEGIES:
        raise ValueError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}"
        )
    task_list = list(tasks)
    started = time.perf_counter()

    journal: Optional[CheckpointJournal] = None
    fingerprints: List[str] = []
    replayed: Dict[int, BatchItemResult] = {}
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint)
        fingerprints = [
            task_fingerprint(
                task, strategy=strategy, misrepair_budget=misrepair_budget
            )
            for task in task_list
        ]
        header_meta = {
            "n_tasks": len(task_list),
            "backend": backend,
            "timeout": timeout,
            "on_infeasible": on_infeasible,
            "strategy": strategy,
            "misrepair_budget": misrepair_budget,
            "certify": certify,
        }
        if journal.exists() and resume:
            journal.truncate_torn_tail()
            replayed, _ = journal.load_completed(
                task_list, fingerprints, expected_meta=header_meta
            )
        else:
            if journal.exists():
                journal.path.unlink()
            journal.write_header(**header_meta)

    results: List[Optional[BatchItemResult]] = [None] * len(task_list)
    for index, result in replayed.items():
        results[index] = result

    def deliver(result: BatchItemResult) -> None:
        # Certification hygiene (mirrors the solve cache): the journal
        # is replayed verbatim on resume, so an uncertified or
        # ladder-degraded result must never be persisted -- the resumed
        # run re-solves it instead of inheriting a suspect answer.
        journal_worthy = not (
            certify
            and (
                result.status == "uncertified"
                or result.certified is False
                or any(s.degraded for s in result.stats)
            )
        )
        if journal is not None and journal_worthy:
            journal.append_result(result, fingerprints[result.index])
        results[result.index] = result

    todo = [
        (index, task)
        for index, task in enumerate(task_list)
        if results[index] is None
    ]

    if not workers or workers < 1:
        store_obj = None
        if store is not None:
            from repro.repair.store import ResultStore

            store_obj = ResultStore(store)
        cache = (
            SolveCache(cache_size, store=store_obj)
            if cache_size > 0 or store_obj is not None
            else None
        )
        try:
            for index, task in todo:
                crashes = 0
                delay = retry_backoff
                while True:
                    try:
                        chaos_before_task(fault_config, index, crashes, in_pool=False)
                        result = execute_task(
                            task,
                            index,
                            default_backend=backend,
                            timeout=timeout,
                            retry_fallback=retry_fallback,
                            cache=cache,
                            on_infeasible=on_infeasible,
                            strategy=strategy,
                            misrepair_budget=misrepair_budget,
                            certify=certify,
                        )
                        result.attempts = crashes + 1
                        break
                    except WorkerCrashError as crash:
                        crashes += 1
                        if crashes > max_task_retries:
                            result = _quarantined_result(
                                index, task, crashes, str(crash)
                            )
                            break
                        delay = respawn_delay(retry_backoff, delay)
                        if delay > 0:
                            time.sleep(delay)
                deliver(result)
        finally:
            if store_obj is not None:
                store_obj.close()
        assert all(result is not None for result in results)
        return BatchReport(
            results=results,  # type: ignore[arg-type]
            wall_time=time.perf_counter() - started,
            workers=0,
            cache_size=cache_size,
            timeout=timeout,
            checkpoint=None if checkpoint is None else str(checkpoint),
            store=None if store is None else str(store),
        )

    if chunksize is None:
        chunksize = max(1, (len(todo) + workers * 4 - 1) // max(1, workers * 4))
    respawns = _run_pool(
        todo,
        workers=workers,
        backend=backend,
        timeout=timeout,
        retry_fallback=retry_fallback,
        cache_size=cache_size,
        store_path=None if store is None else str(store),
        chunksize=chunksize,
        max_task_retries=max_task_retries,
        retry_backoff=retry_backoff,
        hard_timeout=hard_timeout,
        fault_config=fault_config,
        on_infeasible=on_infeasible,
        strategy=strategy,
        misrepair_budget=misrepair_budget,
        certify=certify,
        on_result=deliver,
    )
    assert all(result is not None for result in results)
    return BatchReport(
        results=results,  # type: ignore[arg-type]
        wall_time=time.perf_counter() - started,
        workers=workers,
        cache_size=cache_size,
        timeout=timeout,
        pool_respawns=respawns,
        checkpoint=None if checkpoint is None else str(checkpoint),
        store=None if store is None else str(store),
    )


def tasks_from_databases(
    databases: Sequence[Database],
    constraints: Sequence[AggregateConstraint],
    *,
    name_prefix: str = "doc",
    **task_options,
) -> List[RepairTask]:
    """Convenience: one task per database, shared constraints."""
    return [
        RepairTask(
            database=database,
            constraints=constraints,
            name=f"{name_prefix}{index}",
            **task_options,
        )
        for index, database in enumerate(databases)
    ]
