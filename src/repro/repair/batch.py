"""Parallel batch repair: many documents, many cores, one report.

DART's operational setting is a data-entry shop repairing whole
batches of acquired documents.  Each document's card-minimal repair is
one MILP -- independent of every other document's -- so the corpus is
embarrassingly parallel (HoloClean exploits the same structure by
partitioning repair into independent subproblems).  This module fans a
list of :class:`RepairTask` out over a
``concurrent.futures.ProcessPoolExecutor``:

- **configurable workers** -- ``workers=None``/``0`` runs sequentially
  in-process (no pickling, one shared cache); ``workers >= 1`` uses a
  process pool;
- **chunked scheduling** -- tasks are shipped to workers in chunks to
  amortise pickling overhead (``chunksize`` defaults to roughly four
  chunks per worker);
- **deterministic ordering** -- results are reassembled by task index,
  so the report is byte-identical to the sequential run regardless of
  completion order;
- **per-task timeout + fallback** -- each task is guarded by a
  ``SIGALRM``-based deadline inside its worker; on timeout, solver
  error or an unrepairable verdict the task is retried once on the
  alternate MILP backend (:data:`~repro.milp.solver.FALLBACK_BACKEND`),
  and the retry is stamped in its stats;
- **LRU solve cache** -- every engine in a worker shares that worker's
  :class:`~repro.milp.cache.SolveCache`, keyed by the canonical
  fingerprint of the grounded MILP: identical tables re-acquired
  across documents skip the solver entirely.  Caches are per-process
  (fork-safe, no shared memory); the sequential path shares a single
  cache across the whole corpus.

Every solve emits a :class:`~repro.milp.solver.SolveStats` record;
:class:`BatchReport` aggregates them (wall time, nodes, pivots, cache
hits, fallbacks) into the batch-level accounting the benches print.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.constraints.constraint import AggregateConstraint
from repro.constraints.grounding import Cell
from repro.milp.cache import DEFAULT_CACHE_SIZE, SolveCache
from repro.milp.solver import DEFAULT_BACKEND, FALLBACK_BACKEND, SolveStats
from repro.relational.database import Database
from repro.repair.engine import RepairEngine, UnrepairableError
from repro.repair.translation import RepairObjective
from repro.repair.updates import Repair


class SolveTimeout(RuntimeError):
    """A per-task deadline expired inside a worker."""


@dataclass
class RepairTask:
    """One unit of batch work: a (database, constraints) repair scenario."""

    database: Database
    constraints: Sequence[AggregateConstraint]
    name: str = ""
    backend: Optional[str] = None  # None = the batch-level default
    objective: RepairObjective = RepairObjective.CARDINALITY
    weights: Optional[Mapping[Cell, float]] = None
    pins: Optional[Mapping[Cell, float]] = None


@dataclass
class BatchItemResult:
    """Outcome of one task, in the input order of the batch."""

    index: int
    name: str
    #: "repaired" | "consistent" | "unrepairable" | "timeout" | "error"
    status: str
    repair: Optional[Repair] = None
    objective: Optional[float] = None
    backend_used: str = DEFAULT_BACKEND
    fallback_taken: bool = False
    error: Optional[str] = None
    wall_time: float = 0.0
    stats: List[SolveStats] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in ("repaired", "consistent")

    @property
    def cardinality(self) -> int:
        return self.repair.cardinality if self.repair is not None else 0


@dataclass
class BatchReport:
    """All task results plus batch-level accounting."""

    results: List[BatchItemResult]
    wall_time: float
    workers: int
    cache_size: int
    timeout: Optional[float] = None

    @property
    def n_tasks(self) -> int:
        return len(self.results)

    @property
    def n_repaired(self) -> int:
        return sum(1 for r in self.results if r.status == "repaired")

    @property
    def n_consistent(self) -> int:
        return sum(1 for r in self.results if r.status == "consistent")

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def n_fallbacks(self) -> int:
        return sum(1 for r in self.results if r.fallback_taken)

    @property
    def all_stats(self) -> List[SolveStats]:
        return [s for r in self.results for s in r.stats]

    @property
    def total_solves(self) -> int:
        return len(self.all_stats)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.all_stats if s.cache_hit)

    @property
    def cache_misses(self) -> int:
        return self.total_solves - self.cache_hits

    @property
    def total_nodes(self) -> int:
        return sum(s.nodes for s in self.all_stats)

    @property
    def total_pivots(self) -> int:
        return sum(s.simplex_pivots for s in self.all_stats)

    @property
    def solver_seconds(self) -> float:
        """Summed per-solve wall time (CPU-side; > wall_time when parallel)."""
        return sum(s.wall_time for s in self.all_stats)

    @property
    def total_presolve_reductions(self) -> int:
        return sum(s.presolve_reductions for s in self.all_stats)

    @property
    def total_warm_start_hits(self) -> int:
        return sum(s.warm_start_hits for s in self.all_stats)

    @property
    def total_warm_start_fallbacks(self) -> int:
        return sum(s.warm_start_fallbacks for s in self.all_stats)

    @property
    def n_seeded_solves(self) -> int:
        return sum(1 for s in self.all_stats if s.heuristic_seeded)

    def aggregate(self) -> Dict[str, float]:
        """The flat numbers the benches tabulate."""
        return {
            "tasks": float(self.n_tasks),
            "repaired": float(self.n_repaired),
            "consistent": float(self.n_consistent),
            "failed": float(self.n_failed),
            "fallbacks": float(self.n_fallbacks),
            "solves": float(self.total_solves),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "nodes": float(self.total_nodes),
            "simplex_pivots": float(self.total_pivots),
            "presolve_reductions": float(self.total_presolve_reductions),
            "warm_start_hits": float(self.total_warm_start_hits),
            "warm_start_fallbacks": float(self.total_warm_start_fallbacks),
            "seeded_solves": float(self.n_seeded_solves),
            "wall_time": self.wall_time,
            "solver_seconds": self.solver_seconds,
        }

    def summary(self) -> str:
        return (
            f"{self.n_tasks} task(s) in {self.wall_time:.3f}s "
            f"({self.workers or 'no'} worker(s)): "
            f"{self.n_repaired} repaired, {self.n_consistent} consistent, "
            f"{self.n_failed} failed, {self.n_fallbacks} fallback(s); "
            f"{self.total_solves} solve(s), "
            f"{self.cache_hits} cache hit(s) / {self.cache_misses} miss(es), "
            f"{self.total_nodes} node(s), {self.total_pivots} pivot(s)"
        )


# ---------------------------------------------------------------------------
# Per-task execution (runs inside a worker or in-process)
# ---------------------------------------------------------------------------


def _deadline_supported() -> bool:
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


class _Deadline:
    """Context manager raising :class:`SolveTimeout` after *seconds*.

    Implemented with ``SIGALRM`` so a stuck solver is interrupted
    mid-solve; a no-op when *seconds* is falsy or we are not on the
    main thread of the process (signals cannot be delivered there).
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds if seconds and _deadline_supported() else None
        self._previous = None

    def __enter__(self) -> "_Deadline":
        if self.seconds:
            def _expire(signum, frame):
                raise SolveTimeout(f"solve exceeded {self.seconds:g}s")

            self._previous = signal.signal(signal.SIGALRM, _expire)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
        return self

    def __exit__(self, *exc_info) -> None:
        if self.seconds:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)


def _attempt(
    task: RepairTask,
    backend: str,
    timeout: Optional[float],
    cache: Optional[SolveCache],
) -> Tuple[str, Optional[Repair], Optional[float], List[SolveStats]]:
    """One engine run on one backend; may raise for the retry logic."""
    engine = RepairEngine(
        task.database,
        task.constraints,
        backend=backend,
        objective=task.objective,
        weights=task.weights,
        solve_cache=cache,
    )
    with _Deadline(timeout):
        if engine.is_consistent():
            return "consistent", None, None, engine.solve_stats
        outcome = engine.find_card_minimal_repair(pins=task.pins)
    return "repaired", outcome.repair, outcome.objective, engine.solve_stats


def execute_task(
    task: RepairTask,
    index: int,
    *,
    default_backend: str = DEFAULT_BACKEND,
    timeout: Optional[float] = None,
    retry_fallback: bool = True,
    cache: Optional[SolveCache] = None,
) -> BatchItemResult:
    """Run one task with timeout + fallback-backend semantics.

    The primary backend gets the full *timeout*; if it times out,
    raises, or declares the instance unrepairable, the task is retried
    once on :data:`~repro.milp.solver.FALLBACK_BACKEND` (fresh
    deadline).  Only if both attempts fail does the result carry the
    failure status -- with the *primary* attempt's error preserved when
    the fallback confirms it.
    """
    started = time.perf_counter()
    primary = task.backend or default_backend
    try:
        status, repair, objective, stats = _attempt(task, primary, timeout, cache)
        return BatchItemResult(
            index=index,
            name=task.name,
            status=status,
            repair=repair,
            objective=objective,
            backend_used=primary,
            wall_time=time.perf_counter() - started,
            stats=stats,
        )
    except Exception as primary_error:
        primary_status = _failure_status(primary_error)
        fallback = FALLBACK_BACKEND.get(primary, None)
        if not retry_fallback or fallback is None or fallback == primary:
            return BatchItemResult(
                index=index,
                name=task.name,
                status=primary_status,
                backend_used=primary,
                error=str(primary_error),
                wall_time=time.perf_counter() - started,
            )
        try:
            status, repair, objective, stats = _attempt(
                task, fallback, timeout, cache
            )
            for record in stats:
                record.fallback = True
            return BatchItemResult(
                index=index,
                name=task.name,
                status=status,
                repair=repair,
                objective=objective,
                backend_used=fallback,
                fallback_taken=True,
                error=f"primary backend {primary!r} failed: {primary_error}",
                wall_time=time.perf_counter() - started,
                stats=stats,
            )
        except Exception as fallback_error:
            return BatchItemResult(
                index=index,
                name=task.name,
                status=_failure_status(fallback_error),
                backend_used=fallback,
                fallback_taken=True,
                error=(
                    f"primary {primary!r}: {primary_error}; "
                    f"fallback {fallback!r}: {fallback_error}"
                ),
                wall_time=time.perf_counter() - started,
            )


def _failure_status(error: BaseException) -> str:
    if isinstance(error, SolveTimeout):
        return "timeout"
    if isinstance(error, UnrepairableError):
        return "unrepairable"
    return "error"


# ---------------------------------------------------------------------------
# Worker plumbing
# ---------------------------------------------------------------------------

#: Per-process solve cache, created by the pool initializer.  Module
#: level so forked/spawned workers reuse it across chunks.
_WORKER_CACHE: Optional[SolveCache] = None


def _init_worker(cache_size: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = SolveCache(cache_size) if cache_size > 0 else None


def _run_chunk(payload: Tuple) -> List[BatchItemResult]:
    """Execute one chunk of (index, task) pairs inside a worker."""
    chunk, default_backend, timeout, retry_fallback = payload
    return [
        execute_task(
            task,
            index,
            default_backend=default_backend,
            timeout=timeout,
            retry_fallback=retry_fallback,
            cache=_WORKER_CACHE,
        )
        for index, task in chunk
    ]


def _chunked(
    items: Sequence[Tuple[int, RepairTask]], chunksize: int
) -> List[List[Tuple[int, RepairTask]]]:
    return [
        list(items[start : start + chunksize])
        for start in range(0, len(items), chunksize)
    ]


# ---------------------------------------------------------------------------
# The public entry point
# ---------------------------------------------------------------------------


def repair_batch(
    tasks: Sequence[RepairTask],
    *,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    retry_fallback: bool = True,
    chunksize: Optional[int] = None,
    backend: str = DEFAULT_BACKEND,
) -> BatchReport:
    """Repair every task, in parallel when ``workers >= 1``.

    Results come back in task order whatever the completion order.
    ``workers=None`` (or 0) runs in-process with one cache shared by
    the whole corpus; with a pool, each worker process holds its own
    LRU cache of ``cache_size`` solutions (``cache_size=0`` disables
    caching).  ``timeout`` is the per-task deadline in seconds, applied
    independently to the primary attempt and to the fallback retry.
    """
    task_list = list(tasks)
    indexed = list(enumerate(task_list))
    started = time.perf_counter()

    if not workers or workers < 1:
        cache = SolveCache(cache_size) if cache_size > 0 else None
        results = [
            execute_task(
                task,
                index,
                default_backend=backend,
                timeout=timeout,
                retry_fallback=retry_fallback,
                cache=cache,
            )
            for index, task in indexed
        ]
        return BatchReport(
            results=results,
            wall_time=time.perf_counter() - started,
            workers=0,
            cache_size=cache_size,
            timeout=timeout,
        )

    if chunksize is None:
        chunksize = max(1, (len(indexed) + workers * 4 - 1) // (workers * 4))
    chunks = _chunked(indexed, chunksize)
    payloads = [(chunk, backend, timeout, retry_fallback) for chunk in chunks]
    results: List[Optional[BatchItemResult]] = [None] * len(indexed)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(cache_size,)
    ) as pool:
        for chunk_results in pool.map(_run_chunk, payloads):
            for result in chunk_results:
                results[result.index] = result
    assert all(result is not None for result in results)
    return BatchReport(
        results=results,  # type: ignore[arg-type]
        wall_time=time.perf_counter() - started,
        workers=workers,
        cache_size=cache_size,
        timeout=timeout,
    )


def tasks_from_databases(
    databases: Sequence[Database],
    constraints: Sequence[AggregateConstraint],
    *,
    name_prefix: str = "doc",
    **task_options,
) -> List[RepairTask]:
    """Convenience: one task per database, shared constraints."""
    return [
        RepairTask(
            database=database,
            constraints=constraints,
            name=f"{name_prefix}{index}",
            **task_options,
        )
        for index, database in enumerate(databases)
    ]
