"""The repair engine: DART's repairing module (Sections 5 and 6.3).

:class:`RepairEngine` owns a database instance and a set of steady
aggregate constraints and answers:

- ``is_consistent()`` / ``violations()`` -- the detection step;
- ``find_card_minimal_repair(pins=...)`` -- the MILP-based computation
  of a card-minimal repair, with operator pins from the validation
  loop folded in as additional equality constraints;
- ``apply(repair)`` / ``is_repair(repair)`` -- repair application and
  verification.

Every returned repair is *verified*: the engine applies it to a copy
of the database and re-checks all constraints, so a Big-M artefact or
a solver tolerance issue can never silently hand back a non-repair.
If the MILP comes back infeasible, or a ``y`` variable lands on the
Big-M bound, the engine escalates M (x100, a bounded number of times)
before concluding the instance is unrepairable.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

logger = logging.getLogger(__name__)

from repro.constraints.constraint import AggregateConstraint, ConstraintError
from repro.constraints.grounding import (
    Cell,
    GroundConstraint,
    GroundingEngine,
    Violation,
    ground_constraints,
)
from repro.diagnostics import (
    InfeasibleSystemError,
    NumericInstabilityError,
    SolveTimeoutError,
    UnboundedObjectiveError,
)
from repro.milp.cache import SolveCache
from repro.milp.certify import Certificate, certify_database, certify_repair
from repro.milp.deadline import Deadline
from repro.milp.iis import IISError, extract_iis
from repro.milp.model import Solution, SolveStatus
from repro.milp.solver import DEFAULT_BACKEND, SolveStats, solve_with_stats
from repro.relational.database import Database, diff_databases
from repro.repair.cascade import (
    TIER_EXACT,
    CascadeError,
    CascadeReport,
    run_cascade,
)
from repro.repair.heuristic import greedy_repair
from repro.repair.relax import RelaxationReport, relax_infeasible
from repro.repair.translation import (
    BigMStrategy,
    ConflictReport,
    MILPTranslation,
    RepairObjective,
    TranslationError,
    translate,
)
from repro.repair.updates import AtomicUpdate, Repair, apply_repair

#: The engine-level approximate backend: the greedy primal heuristic
#: of :mod:`repro.repair.heuristic` instead of an exact MILP solve.
#: Repairs it returns are verified but carry no minimality certificate.
HEURISTIC_BACKEND = "heuristic"

#: Exact backends whose search accepts an incumbent seed.
_SEEDABLE_BACKENDS = frozenset({"bnb", "bnb-simplex"})

#: What the engine does once the MILP stays INFEASIBLE after every
#: Big-M escalation (see ``RepairEngine(on_infeasible=...)``).
ON_INFEASIBLE_MODES = ("raise", "explain", "relax")

#: Repair strategies: ``"exact"`` translates every violation straight
#: into ``S*(AC)``; ``"cascade"`` runs the tiered cascade of
#: :mod:`repro.repair.cascade` first and hands only the residue to the
#: MILP (tier T4).
STRATEGIES = ("exact", "cascade")


class UnrepairableError(InfeasibleSystemError, RuntimeError):
    """No repair exists (or none within the escalated Big-M bounds).

    Part of the typed failure taxonomy (:mod:`repro.diagnostics`):
    subclasses :class:`~repro.diagnostics.InfeasibleSystemError`, and
    keeps the historical ``RuntimeError`` base for existing callers.

    When raised by ``on_infeasible="explain"``, :attr:`conflict` holds
    the :class:`~repro.repair.translation.ConflictReport` and the
    ``infeasible_system`` detail carries its dict form.
    """

    #: The IIS mapped back to ground constraints and pins, when the
    #: engine ran conflict extraction before raising.
    conflict: Optional[ConflictReport] = None


@dataclass
class RepairOutcome:
    """A computed card-minimal repair plus solve diagnostics."""

    repair: Repair
    objective: float
    #: The MILP artefacts.  ``None`` for MILP-free cascade repairs
    #: (``strategy="cascade"`` with an empty residue): no translation
    #: was ever built and no solver ran.
    translation: Optional[MILPTranslation] = None
    solution: Optional[Solution] = None
    escalations: int = 0
    #: SolveStats for every solver call this repair needed (the Big-M
    #: escalation loop may take several).
    stats: List[SolveStats] = field(default_factory=list)
    #: Anytime solving: True when the solve budget expired and this is
    #: the best incumbent rather than a proven card-minimal repair;
    #: ``gap`` is then the certified distance to the optimum.
    approximate: bool = False
    gap: Optional[float] = None
    #: Elastic relaxation (``on_infeasible="relax"``): True when the
    #: original instance was infeasible and this repair minimises
    #: violations lexicographically instead of satisfying everything;
    #: ``violations`` is then the structured report.  Relaxed outcomes
    #: are never cached and never counted as exact repairs.
    relaxed: bool = False
    violations: Optional[RelaxationReport] = None
    #: Which strategy produced this outcome, and -- for cascades -- the
    #: per-tier report (fixes, hit/fallthrough/latency counters).
    strategy: str = "exact"
    cascade: Optional[CascadeReport] = None
    #: Exact-arithmetic certification (:mod:`repro.milp.certify`):
    #: True when the repaired document was re-verified against the
    #: paper-level ground constraints in rationals, None when
    #: certification was off (``certify=False``) or not applicable
    #: (relaxed outcomes intentionally violate constraints).  A repair
    #: with ``certified=False`` is never returned -- the engine
    #: escalates or raises instead.  ``certificate`` carries the
    #: document-level evidence.
    certified: Optional[bool] = None
    certificate: Optional[Certificate] = None

    @property
    def cardinality(self) -> int:
        return self.repair.cardinality

    @property
    def status(self) -> str:
        """``"relaxed"``, ``"approximate"`` or ``"optimal"``."""
        if self.relaxed:
            return "relaxed"
        if self.approximate:
            return "approximate"
        return "optimal"


class RepairEngine:
    """Card-minimal repair computation for one (database, constraints) pair."""

    def __init__(
        self,
        database: Database,
        constraints: Sequence[AggregateConstraint],
        *,
        backend: str = DEFAULT_BACKEND,
        big_m_strategy: BigMStrategy = BigMStrategy.PRACTICAL,
        max_escalations: int = 3,
        objective: RepairObjective = RepairObjective.CARDINALITY,
        weights: Optional[Mapping[Cell, float]] = None,
        solve_cache: Optional[SolveCache] = None,
        presolve: bool = True,
        seed_incumbent: bool = True,
        on_infeasible: str = "raise",
        strategy: str = "exact",
        misrepair_budget: int = 0,
        certify: bool = True,
    ) -> None:
        """``objective`` / ``weights`` select the minimality semantics
        (see :class:`~repro.repair.translation.RepairObjective`); the
        default is the paper's card-minimality.  A shared ``solve_cache``
        lets identical grounded MILPs (re-acquired tables) skip the
        solver; every solve appends a
        :class:`~repro.milp.solver.SolveStats` record to
        :attr:`solve_stats`.

        ``backend`` additionally accepts ``"heuristic"``: the greedy
        primal repair of :mod:`repro.repair.heuristic`, which returns a
        verified but not necessarily card-minimal repair.  ``presolve``
        and ``seed_incumbent`` steer the branch-and-bound backends
        (``"bnb"`` / ``"bnb-simplex"``): the former toggles the MILP
        presolve pass, the latter seeds the search with the heuristic's
        repair as an initial incumbent.  Neither affects which repair
        is optimal.

        ``on_infeasible`` selects the degradation path once the MILP
        stays infeasible after every Big-M escalation: ``"raise"``
        (default, historical behaviour), ``"explain"`` (run IIS
        extraction and raise an :class:`UnrepairableError` naming the
        conflicting ground constraints and pins), or ``"relax"``
        (return a best-effort :class:`RepairOutcome` with
        ``relaxed=True`` and a violation report -- see
        :mod:`repro.repair.relax`).

        ``strategy="cascade"`` runs the tiered repair cascade
        (:mod:`repro.repair.cascade`) before the MILP: confusion
        inversion, aggregate back-solving and the certified residue
        search clear what they can prove, and only the residue reaches
        the exact backend.  ``misrepair_budget`` bounds how many
        ambiguous closed-form guesses the cascade may take (default 0:
        fall through instead of guessing).  The cascade requires the
        cardinality objective; pins bypass it straight to the exact
        path.

        ``certify`` (default True) makes every answer self-verifying:
        solver incumbents are replayed against the original MILP in
        exact rational arithmetic with the numerics degradation ladder
        behind them (:mod:`repro.milp.certify`), and the final repaired
        document is independently re-checked against the paper-level
        ground constraints -- so a bug anywhere in lowering, presolve,
        cuts or warm starts surfaces as a typed failure instead of a
        silently wrong repair."""
        if on_infeasible not in ON_INFEASIBLE_MODES:
            raise ValueError(
                f"on_infeasible must be one of {ON_INFEASIBLE_MODES}, "
                f"got {on_infeasible!r}"
            )
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        if misrepair_budget < 0:
            raise CascadeError(
                f"misrepair_budget must be >= 0, got {misrepair_budget}"
            )
        if strategy == "cascade" and objective is not RepairObjective.CARDINALITY:
            raise CascadeError(
                "strategy='cascade' certifies card-minimality only; use "
                "the exact strategy for weighted objectives"
            )
        self.on_infeasible = on_infeasible
        self.strategy = strategy
        self.misrepair_budget = int(misrepair_budget)
        self.certify = bool(certify)
        self.database = database
        self.constraints = list(constraints)
        self.backend = backend
        self.presolve = presolve
        self.seed_incumbent = seed_incumbent
        self.solve_cache = solve_cache
        self.solve_stats: List[SolveStats] = []
        self.big_m_strategy = big_m_strategy
        self.max_escalations = max_escalations
        self.objective = objective
        self.weights = dict(weights) if weights else None
        #: Folded into every solve-cache key (see
        #: :meth:`~repro.milp.cache.SolveCache.key_for`): a cascade
        #: residue solves a *mutated* working copy under different
        #: semantics, so its entries must never be served for a plain
        #: exact request -- and vice versa.
        self._cache_semantics: Optional[Dict[str, object]] = (
            None
            if strategy == "exact"
            else {
                "strategy": strategy,
                "misrepair_budget": self.misrepair_budget,
            }
        )
        for constraint in self.constraints:
            constraint.validate(database.schema)
            if not constraint.is_steady(database.schema):
                witness = constraint.steadiness_witness(database.schema)
                raise ConstraintError(
                    f"constraint {constraint.name!r} is not steady (measure "
                    f"attributes {sorted(witness)} occur in A | J); the MILP "
                    f"translation of Section 5 does not apply"
                )
        self._grounding = GroundingEngine(
            database, self.constraints, require_steady=True
        )

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def violations(self, database: Optional[Database] = None) -> List[Violation]:
        """Ground constraints violated by the (given or own) instance."""
        return self._grounding.violations(database)

    def is_consistent(self, database: Optional[Database] = None) -> bool:
        """``D |= AC``?"""
        return self._grounding.is_consistent(database)

    @property
    def ground_system(self) -> List[GroundConstraint]:
        """The system ``S(AC)`` (cached)."""
        return self._grounding.system

    def involved_cells(self) -> List[Cell]:
        return self._grounding.cells()

    # ------------------------------------------------------------------
    # Repair computation
    # ------------------------------------------------------------------

    def find_card_minimal_repair(
        self,
        pins: Optional[Mapping[Cell, float]] = None,
        time_limit: Optional[float] = None,
        **solver_options,
    ) -> RepairOutcome:
        """Compute a card-minimal repair (Definition 5) via ``S*(AC)``.

        ``pins`` maps cells to operator-imposed exact values
        (Section 6.3).  Raises :class:`UnrepairableError` if no repair
        exists.  The returned repair is verified against the
        constraints before being handed back.

        ``time_limit`` is a wall-clock budget (seconds) for the whole
        computation, shared across Big-M escalations and checked on a
        monotonic deadline inside the solver loops.  On expiry the
        exact backends return their best incumbent as an *approximate*
        repair (``outcome.approximate`` with a certified ``gap``); only
        when no incumbent exists at all does the engine raise
        :class:`~repro.diagnostics.SolveTimeoutError`.
        """
        if self.strategy == "cascade" and not pins:
            # Pins bypass the cascade: the closed-form tiers reason
            # about channel pre-images and equality rows, not about
            # operator-imposed values, so a pinned request goes
            # straight to the exact path below.
            return self._solve_cascade(time_limit, solver_options)
        big_m_override: Optional[float] = None
        escalations = 0
        stats_start = len(self.solve_stats)
        deadline = Deadline(time_limit)
        while True:
            deadline.check("repair computation")
            translation = translate(
                self.database,
                self.constraints,
                pins=pins,
                strategy=self.big_m_strategy,
                big_m=big_m_override,
                grounds=self.ground_system,
                objective=self.objective,
                weights=self.weights,
            )
            logger.debug(
                "solving S*(AC): N=%d, %d ground rows, M=%g, backend=%s%s",
                translation.n,
                len(translation.grounds),
                translation.big_m,
                self.backend,
                f", {len(translation.pins)} pin(s)" if translation.pins else "",
            )
            if self.backend == HEURISTIC_BACKEND:
                try:
                    solution, stats = self._solve_heuristic(translation, deadline)
                except UnrepairableError:
                    # The greedy heuristic proves nothing about
                    # infeasibility, but the configured degradation
                    # path still applies: relaxation subsumes the miss
                    # (a feasible instance relaxes to zero violations)
                    # and explanation distinguishes the two cases.
                    if self.on_infeasible == "raise":
                        raise
                    return self._conclude_infeasible(
                        translation, pins, deadline, stats_start, escalations
                    )
            else:
                solution, stats = self._solve_exact(
                    translation, solver_options, deadline
                )
            self.solve_stats.append(stats)
            if solution.status is SolveStatus.INFEASIBLE:
                logger.info(
                    "MILP infeasible at M=%g (escalation %d/%d)",
                    translation.big_m, escalations, self.max_escalations,
                )
                if escalations >= self.max_escalations:
                    return self._conclude_infeasible(
                        translation, pins, deadline, stats_start, escalations
                    )
                big_m_override = translation.big_m * 100.0
                escalations += 1
                continue
            if solution.status is SolveStatus.UNBOUNDED:
                raise UnboundedObjectiveError(
                    "MILP relaxation is unbounded: a measure variable "
                    "escaped its Big-M box (modelling invariant violated)",
                    big_m=translation.big_m,
                )
            if not solution.is_usable:
                if solution.stats.get("deadline_expired"):
                    raise SolveTimeoutError(
                        "solve budget expired before any feasible repair "
                        "was found",
                        budget=time_limit,
                        status=solution.status.value,
                    )
                raise UnrepairableError(
                    f"MILP solver returned {solution.status.value}"
                )
            repair = translation.extract_repair(solution)
            repaired = apply_repair(self.database, repair)
            if not self.is_consistent(repaired):
                # Numerically possible only if M was too tight for some
                # intermediate value; escalate and retry.
                if escalations >= self.max_escalations:
                    raise UnrepairableError(
                        "solver returned a candidate that fails verification "
                        "even after Big-M escalation"
                    )
                big_m_override = translation.big_m * 100.0
                escalations += 1
                continue
            if (
                translation.binding_deltas(solution)
                and escalations < self.max_escalations
                and not deadline.expired
            ):
                # The bound binds: a smaller-cardinality repair might be
                # hiding beyond it.  Re-solve once with a larger M.
                big_m_override = translation.big_m * 100.0
                escalations += 1
                continue
            certificate: Optional[Certificate] = None
            if self.certify:
                # Document-level exactness gate, independent of the
                # MILP-level certificate inside solve_with_stats: the
                # repaired cells are replayed against the paper-level
                # ground constraints in rationals, so even a bug in
                # the translation itself cannot escape.
                certificate = certify_repair(translation, repair)
                if not certificate.certified:
                    if escalations >= self.max_escalations:
                        raise NumericInstabilityError(
                            "repair failed exact-arithmetic document "
                            "certification even after Big-M escalation",
                            certificate=certificate.as_dict(),
                        )
                    big_m_override = translation.big_m * 100.0
                    escalations += 1
                    continue
            approximate = solution.status is SolveStatus.FEASIBLE_GAP
            logger.info(
                "%s repair found: objective=%g, %d update(s), "
                "%d escalation(s)%s",
                "approximate (anytime)" if approximate else "card-minimal",
                solution.objective or 0.0, repair.cardinality, escalations,
                f", gap={solution.gap:g}" if approximate else "",
            )
            return RepairOutcome(
                repair=repair,
                objective=float(solution.objective or 0.0),
                translation=translation,
                solution=solution,
                escalations=escalations,
                stats=self.solve_stats[stats_start:],
                approximate=approximate,
                gap=solution.gap,
                certified=certificate.certified if certificate else None,
                certificate=certificate,
            )

    # ------------------------------------------------------------------
    # The tiered cascade (strategy="cascade")
    # ------------------------------------------------------------------

    def _solve_cascade(
        self, time_limit: Optional[float], solver_options: Dict
    ) -> RepairOutcome:
        """Tiers T1-T3 on a working copy, then the exact T4 residue.

        Emits one synthetic :class:`~repro.milp.solver.SolveStats`
        record per cascade tier (``backend="cascade"``,
        ``phase="cascade"``, hit/fallthrough counts in the ``tier_*``
        fields) alongside the real solver records of the residue, which
        are stamped ``tier="t4-exact"``.  The combined repair (cascade
        fixes plus residue updates) is re-verified against the full
        constraint set before being handed back, exactly like an exact
        repair.
        """
        stats_start = len(self.solve_stats)
        deadline = Deadline(time_limit)
        working, report = run_cascade(
            self.database,
            self.constraints,
            grounds=self.ground_system,
            misrepair_budget=self.misrepair_budget,
        )
        for tier_stats in report.tiers:
            self.solve_stats.append(
                SolveStats(
                    backend="cascade",
                    status="tier",
                    wall_time=tier_stats.wall_time,
                    phase="cascade",
                    tier=tier_stats.tier,
                    tier_hits=tier_stats.resolved,
                    tier_fallthroughs=tier_stats.fallthroughs,
                )
            )
        escalations = 0
        translation: Optional[MILPTranslation] = None
        solution: Optional[Solution] = None
        approximate = False
        gap: Optional[float] = None
        relaxed = False
        violations: Optional[RelaxationReport] = None
        final = working
        if report.milp_invoked:
            deadline.check("cascade residue solve")
            child = RepairEngine(
                working,
                self.constraints,
                backend=self.backend,
                big_m_strategy=self.big_m_strategy,
                max_escalations=self.max_escalations,
                objective=self.objective,
                solve_cache=self.solve_cache,
                presolve=self.presolve,
                seed_incumbent=self.seed_incumbent,
                on_infeasible=self.on_infeasible,
                certify=self.certify,
            )
            # Steady constraints make the ground system value-
            # independent, so the system grounded on the original
            # instance is exactly S(AC) for the working copy too.
            child._grounding._system = list(self.ground_system)
            # The residue is solved *under cascade semantics*: its
            # cache entries must never be served for a plain exact
            # request (and vice versa).
            child._cache_semantics = dict(self._cache_semantics or {})
            outcome = child.find_card_minimal_repair(
                time_limit=(
                    deadline.remaining()
                    if deadline.budget is not None
                    else None
                ),
                **solver_options,
            )
            for position, stats in enumerate(outcome.stats):
                stats.tier = TIER_EXACT
                # Residual-row count once per repair, not once per
                # escalation record, so aggregates sum cleanly.
                stats.tier_hits = report.n_residual if position == 0 else 0
            self.solve_stats.extend(outcome.stats)
            escalations = outcome.escalations
            translation = outcome.translation
            solution = outcome.solution
            approximate = outcome.approximate
            gap = outcome.gap
            relaxed = outcome.relaxed
            violations = outcome.violations
            final = apply_repair(working, outcome.repair)
        repair = Repair(
            [
                AtomicUpdate(relation, tuple_id, attribute, old, new)
                for relation, tuple_id, attribute, old, new in diff_databases(
                    self.database, final
                )
            ]
        )
        if not relaxed and not self.is_consistent(final):
            raise UnrepairableError(
                "cascade verification failed: the combined repair leaves "
                "a ground constraint violated"
            )
        certificate: Optional[Certificate] = None
        if self.certify and not relaxed:
            # T3-T4 exactness gate: the finished working database is
            # replayed against every ground constraint in rationals --
            # the closed-form tiers mutate cells outside any MILP, so
            # only a database-level certificate covers them all.
            certificate = certify_database(self.ground_system, final)
            if not certificate.certified:
                raise NumericInstabilityError(
                    "cascade repair failed exact-arithmetic database "
                    "certification",
                    certificate=certificate.as_dict(),
                )
        logger.info(
            "cascade repair found: %d update(s), %d/%d violation(s) "
            "resolved before the MILP%s",
            repair.cardinality,
            report.resolved_without_milp,
            report.n_violations,
            "" if report.milp_invoked else " (MILP-free)",
        )
        return RepairOutcome(
            repair=repair,
            objective=float(repair.cardinality),
            translation=translation,
            solution=solution,
            escalations=escalations,
            stats=self.solve_stats[stats_start:],
            approximate=approximate,
            gap=gap,
            relaxed=relaxed,
            violations=violations,
            strategy="cascade",
            cascade=report,
            certified=certificate.certified if certificate else None,
            certificate=certificate,
        )

    # ------------------------------------------------------------------
    # Infeasibility forensics
    # ------------------------------------------------------------------

    def _forensics_backend(self) -> str:
        """The exact backend used for IIS probes and relaxation solves."""
        if self.backend in ("scipy", "bnb", "bnb-simplex"):
            return self.backend
        return DEFAULT_BACKEND

    def _base_message(self, translation: MILPTranslation, escalations: int,
                      pins) -> str:
        return (
            f"MILP infeasible after {escalations} Big-M escalations; "
            f"no repair exists within |value| <= {translation.big_m:g}"
            + (" under the given pins" if pins else "")
        )

    def _conflict_report(
        self, translation: MILPTranslation, deadline: Deadline
    ) -> ConflictReport:
        """Run IIS extraction on *translation* and map it back.

        Probes bypass the solve cache by construction (see
        :mod:`repro.milp.iis`).  Appends one synthetic
        :class:`~repro.milp.solver.SolveStats` record with
        ``phase="iis"`` (``nodes`` carries the probe count).
        """
        started = time.perf_counter()
        iis = extract_iis(
            translation.model,
            backend=self._forensics_backend(),
            deadline=deadline,
            groups=[translation.structural_rows()],
        )
        self.solve_stats.append(
            SolveStats(
                backend=self._forensics_backend(),
                status="infeasible",
                wall_time=time.perf_counter() - started,
                nodes=iis.probes,
                n_variables=translation.model.n_variables,
                n_constraints=translation.model.n_constraints,
                phase="iis",
            )
        )
        return translation.conflict_report(iis)

    def _conclude_infeasible(
        self,
        translation: MILPTranslation,
        pins,
        deadline: Deadline,
        stats_start: int,
        escalations: int,
    ) -> RepairOutcome:
        """Apply the configured ``on_infeasible`` degradation path."""
        message = self._base_message(translation, escalations, pins)
        if self.on_infeasible == "relax":
            outcome = relax_infeasible(
                translation,
                backend=self._forensics_backend(),
                deadline=deadline,
            )
            self.solve_stats.extend(outcome.report.stats)
            self._verify_relaxed(outcome)
            logger.info(
                "relaxed repair found: %d update(s), %d violated "
                "constraint(s), total violation %g",
                outcome.repair.cardinality,
                outcome.report.n_violated,
                outcome.report.total_violation,
            )
            return RepairOutcome(
                repair=outcome.repair,
                objective=float(outcome.objective),
                translation=translation,
                solution=outcome.solution,
                escalations=escalations,
                stats=self.solve_stats[stats_start:],
                relaxed=True,
                violations=outcome.report,
            )
        if self.on_infeasible == "explain":
            try:
                report = self._conflict_report(translation, deadline)
            except IISError as error:
                # Only reachable when the infeasibility verdict came
                # from the approximate heuristic but the instance is
                # actually feasible.
                raise UnrepairableError(
                    f"{message} -- but conflict extraction found the "
                    f"instance feasible ({error}); the heuristic missed "
                    f"a repair, retry an exact backend"
                ) from error
            error = UnrepairableError(
                f"{message}; {report.summary()}",
                infeasible_system=report.as_dict(),
            )
            error.conflict = report
            raise error
        raise UnrepairableError(message)

    def _verify_relaxed(self, outcome) -> None:
        """A relaxed repair may only violate what its report declares."""
        repaired = apply_repair(self.database, outcome.repair)
        reported = {
            violation.ground.normalized_key()
            for violation in outcome.report.violations
        }
        for violation in self.violations(repaired):
            if violation.ground.normalized_key() not in reported:
                raise UnrepairableError(
                    "relaxed repair verification failed: the repaired "
                    "instance violates a ground constraint the violation "
                    f"report does not declare ({violation.ground.source})"
                )

    def explain_infeasible(
        self,
        pins: Optional[Mapping[Cell, float]] = None,
        time_limit: Optional[float] = None,
    ) -> ConflictReport:
        """Name the conflict that makes the instance unrepairable.

        Translates at the fully-escalated Big-M (the same bound
        :meth:`find_card_minimal_repair` gives up at), extracts an IIS
        and maps it back to ground constraints, pins and cells.  Raises
        :class:`~repro.milp.iis.IISError` when the instance is in fact
        repairable.
        """
        deadline = Deadline(time_limit)
        translation = translate(
            self.database,
            self.constraints,
            pins=pins,
            strategy=self.big_m_strategy,
            grounds=self.ground_system,
            objective=self.objective,
            weights=self.weights,
        )
        if self.max_escalations > 0:
            translation = translate(
                self.database,
                self.constraints,
                pins=pins,
                strategy=self.big_m_strategy,
                big_m=translation.big_m * (100.0 ** self.max_escalations),
                grounds=self.ground_system,
                objective=self.objective,
                weights=self.weights,
            )
        return self._conflict_report(translation, deadline)

    def _solve_heuristic(
        self, translation: MILPTranslation, deadline: Optional[Deadline] = None
    ):
        """Run the greedy primal heuristic as the solve step.

        The returned solution is stamped OPTIMAL so the shared
        extraction/verification path accepts it; the point is verified
        feasible by the heuristic itself (and re-verified against the
        constraints by the caller), but its cardinality carries no
        minimality certificate.
        """
        started = time.perf_counter()
        result = greedy_repair(translation, deadline=deadline)
        elapsed = time.perf_counter() - started
        if result is None:
            raise UnrepairableError(
                "the greedy repair heuristic found no repair; the "
                "heuristic is approximate -- retry with an exact backend "
                "('scipy', 'bnb', 'bnb-simplex') before concluding the "
                "instance is unrepairable"
            )
        solution = Solution(
            SolveStatus.OPTIMAL,
            objective=result.objective,
            values=translation.model.solution_values(result.assignment),
            stats={
                "nodes": 0.0,
                "lp_iterations": 0.0,
                "heuristic_iterations": float(result.iterations),
            },
        )
        stats = SolveStats(
            backend=HEURISTIC_BACKEND,
            status="optimal",
            wall_time=elapsed,
            n_variables=translation.model.n_variables,
            n_constraints=translation.model.n_constraints,
            objective=result.objective,
        )
        return solution, stats

    def _solve_exact(
        self,
        translation: MILPTranslation,
        solver_options: Dict,
        deadline: Optional[Deadline] = None,
    ):
        """One exact solve, with presolve/seeding options threaded in."""
        options = dict(solver_options)
        if deadline is not None and deadline.budget is not None:
            # Whatever budget the escalation loop has left bounds this
            # solve; every exact backend honours ``time_limit``.
            options["time_limit"] = deadline.remaining()
        seeded_objective: Optional[float] = None
        if self.backend in _SEEDABLE_BACKENDS:
            options.setdefault("presolve", self.presolve)
            if self.seed_incumbent and "incumbent" not in options:
                seed = greedy_repair(translation, deadline=deadline)
                if seed is not None:
                    options["incumbent"] = seed.assignment
                    seeded_objective = seed.objective
        solution, stats = solve_with_stats(
            translation.model,
            backend=self.backend,
            cache=self.solve_cache,
            cache_semantics=self._cache_semantics,
            certify=self.certify,
            **options,
        )
        if seeded_objective is not None:
            stats.heuristic_seeded = True
            if solution.objective is not None:
                stats.heuristic_gap = max(
                    0.0, seeded_objective - solution.objective
                )
        return solution, stats

    # ------------------------------------------------------------------
    # Application / verification
    # ------------------------------------------------------------------

    def apply(self, repair: Repair) -> Database:
        """``rho(D)`` -- a repaired copy; the original is untouched."""
        return apply_repair(self.database, repair)

    def is_repair(self, repair: Repair) -> bool:
        """Definition 4: does applying *repair* satisfy the constraints?"""
        return self.is_consistent(apply_repair(self.database, repair))
