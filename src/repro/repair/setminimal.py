"""Set-minimal repairs and their relation to card-minimality.

The classical repair semantics of Arenas-Bertossi-Chomicki ([2] in the
paper's references) is *set*-minimality: a repair is set-minimal iff
no proper subset of its updated cells already supports a repair.  The
paper adopts the stronger *card*-minimal semantics instead; this
module makes the relationship checkable:

- :func:`is_set_minimal` decides set-minimality of a given repair by
  testing, for each cell of the support, whether dropping it leaves
  the system satisfiable with the remaining support (the classical
  characterisation: minimality can be checked per-element because
  supports are monotone);
- every card-minimal repair is set-minimal (a proper subset of a
  repair's support that repairs would contradict cardinality
  minimality) -- the property test suite checks this on random
  instances;
- the converse fails: :func:`find_set_minimal_not_card_minimal`
  searches for a witness (a set-minimal repair strictly larger than
  the card-minimal cardinality), materialising the gap between the
  two semantics that motivates the paper's choice.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.constraints.constraint import AggregateConstraint
from repro.constraints.grounding import Cell
from repro.relational.database import Database
from repro.repair.bruteforce import _subset_feasible
from repro.repair.engine import RepairEngine
from repro.repair.updates import AtomicUpdate, Repair
from repro.constraints.grounding import ground_constraints
from repro.relational.domains import Domain


def _context(database: Database, constraints: Sequence[AggregateConstraint]):
    grounds = ground_constraints(constraints, database, require_steady=True)
    cells: List[Cell] = []
    seen = set()
    for ground in grounds:
        for cell in ground.coefficients:
            if cell not in seen:
                seen.add(cell)
                cells.append(cell)
    cells.sort()
    schema = database.schema
    values = {}
    integer = {}
    declared_bounds = {}
    for cell in cells:
        relation, tuple_id, attribute = cell
        values[cell] = float(database.get_value(relation, tuple_id, attribute))
        integer[cell] = (
            schema.relation(relation).domain_of(attribute) is Domain.INTEGER
        )
        declared_bounds[cell] = schema.bounds_of(relation, attribute)
    return grounds, cells, values, integer, declared_bounds


def is_set_minimal(
    database: Database,
    constraints: Sequence[AggregateConstraint],
    repair: Repair,
    *,
    bound: float = 1e9,
) -> bool:
    """Is *repair* set-minimal for *database* w.r.t. *constraints*?

    Requires *repair* to actually be a repair (checked).  Decided with
    one feasibility query per support cell: the repair is set-minimal
    iff for every cell c in its support, the support minus {c} admits
    no repair.
    """
    engine = RepairEngine(database, constraints)
    if not engine.is_repair(repair):
        raise ValueError("is_set_minimal requires an actual repair")
    grounds, cells, values, integer, declared_bounds = _context(
        database, constraints
    )
    support = repair.cells()
    for dropped in support:
        remaining = [cell for cell in support if cell != dropped]
        witness = _subset_feasible(
            grounds, cells, values, integer, remaining, bound, {}, declared_bounds
        )
        if witness is None:
            continue
        # Feasible with a smaller support: but only counts if the
        # witness actually changes every remaining cell?  No -- set
        # minimality is about *supports*: a repair supported by a
        # proper subset exists, so the original support is not minimal.
        return False
    return True


def find_set_minimal_not_card_minimal(
    database: Database,
    constraints: Sequence[AggregateConstraint],
    *,
    max_extra: int = 2,
    bound: float = 1e9,
) -> Optional[Repair]:
    """A set-minimal repair with cardinality above the optimum, if any.

    Searches supports of size k* + 1 .. k* + max_extra (k* = the
    card-minimal cardinality) for one that is feasible but loses
    feasibility when any single cell is dropped.  Returns a witness
    repair or ``None``.  Exponential; intended for small instances and
    the test suite.
    """
    import itertools

    engine = RepairEngine(database, constraints)
    optimum = engine.find_card_minimal_repair().cardinality
    grounds, cells, values, integer, declared_bounds = _context(
        database, constraints
    )
    for extra in range(1, max_extra + 1):
        size = optimum + extra
        if size > len(cells):
            break
        for subset in itertools.combinations(cells, size):
            witness = _subset_feasible(
                grounds, cells, values, integer, list(subset), bound, {},
                declared_bounds,
            )
            if witness is None:
                continue
            updates = [
                AtomicUpdate(c[0], c[1], c[2], values[c], witness[c])
                for c in subset
                if witness[c] != values[c]
            ]
            if len(updates) != size:
                continue  # the witness did not use the full support
            candidate = Repair(updates)
            if is_set_minimal(database, constraints, candidate, bound=bound):
                return candidate
    return None
