"""Card-minimal repair of inconsistent numerical data (the paper's core).

- :mod:`repro.repair.updates` -- atomic updates, consistent database
  updates and repairs (Definitions 2-5);
- :mod:`repro.repair.translation` -- the MILP construction of
  Section 5: ``S(AC)`` -> ``S'(AC)`` -> ``S''(AC)`` -> ``S*(AC)``,
  including both the theoretical and the practical Big-M bound;
- :mod:`repro.repair.engine` -- :class:`RepairEngine`, the public
  entry point computing card-minimal repairs;
- :mod:`repro.repair.heuristic` -- the greedy primal repair over the
  MILP translation: an approximate backend and the incumbent seed for
  the branch-and-bound backends;
- :mod:`repro.repair.cascade` -- the tiered repair cascade
  (``strategy="cascade"``): confusion-matrix inversion, equality
  back-solving and a certified greedy tier resolve most violations
  without invoking the MILP, which remains as the exact residue tier;
- :mod:`repro.repair.relax` -- elastic relaxation of infeasible
  instances (``on_infeasible="relax"``): lexicographically minimal
  violations with a structured report, never cached;
- :mod:`repro.repair.batch` -- the fault-tolerant parallel
  batch-repair engine (process pool, per-task solve budgets with
  anytime gaps, backend fallback, checkpoint/resume, crash recovery
  with quarantine, LRU solve cache, per-solve
  :class:`~repro.milp.solver.SolveStats`);
- :mod:`repro.repair.checkpoint` -- the append-only fsync'd journal
  behind batch checkpoint/resume;
- :mod:`repro.repair.bruteforce` -- an exponential oracle used to
  validate optimality on small instances;
- :mod:`repro.repair.interactive` -- the supervised validation loop of
  Section 6.3 (operator accepts/rejects updates, pins become
  constraints, the MILP is re-solved);
- :mod:`repro.repair.baselines` -- non-card-minimal repairers used as
  evaluation baselines.
"""

from repro.repair.updates import (
    AtomicUpdate,
    Repair,
    RepairError,
    apply_repair,
)
from repro.repair.translation import (
    BigMStrategy,
    ConflictReport,
    MILPTranslation,
    RepairObjective,
    TranslationError,
    practical_big_m,
    theoretical_big_m,
    translate,
)
from repro.repair.relax import (
    ConstraintViolation,
    RelaxationOutcome,
    RelaxationReport,
    relax_infeasible,
)
from repro.repair.cqa import ConsistentAnswer, consistent_aggregate_answer
from repro.repair.enumeration import (
    count_card_minimal_supports,
    enumerate_card_minimal_repairs,
)
from repro.repair.setminimal import (
    find_set_minimal_not_card_minimal,
    is_set_minimal,
)
from repro.repair.engine import (
    HEURISTIC_BACKEND,
    STRATEGIES,
    RepairEngine,
    RepairOutcome,
    UnrepairableError,
)
from repro.repair.cascade import (
    CLOSED_FORM_TIERS,
    TIERS,
    CascadeError,
    CascadeFix,
    CascadeReport,
    TierStats,
    ViolationClass,
    classify_violation,
    classify_violations,
    run_cascade,
)
from repro.repair.heuristic import HeuristicResult, greedy_repair
from repro.repair.batch import (
    BatchItemResult,
    BatchReport,
    RepairTask,
    SolveTimeout,
    execute_task,
    repair_batch,
    tasks_from_databases,
)
from repro.repair.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    task_fingerprint,
)
from repro.repair.bruteforce import brute_force_card_minimal
from repro.repair.interactive import (
    FallibleOperator,
    Operator,
    OracleOperator,
    ValidationLoop,
    ValidationSession,
    involvement_order,
)
from repro.repair.baselines import (
    aggregate_recompute_repair,
    greedy_local_repair,
)

__all__ = [
    "AtomicUpdate",
    "Repair",
    "RepairError",
    "apply_repair",
    "translate",
    "MILPTranslation",
    "TranslationError",
    "BigMStrategy",
    "theoretical_big_m",
    "practical_big_m",
    "RepairEngine",
    "HEURISTIC_BACKEND",
    "STRATEGIES",
    "HeuristicResult",
    "greedy_repair",
    "CascadeError",
    "CascadeFix",
    "CascadeReport",
    "TierStats",
    "ViolationClass",
    "classify_violation",
    "classify_violations",
    "run_cascade",
    "TIERS",
    "CLOSED_FORM_TIERS",
    "RepairObjective",
    "RepairOutcome",
    "UnrepairableError",
    "ConflictReport",
    "ConstraintViolation",
    "RelaxationOutcome",
    "RelaxationReport",
    "relax_infeasible",
    "RepairTask",
    "BatchItemResult",
    "BatchReport",
    "SolveTimeout",
    "repair_batch",
    "execute_task",
    "tasks_from_databases",
    "CheckpointError",
    "CheckpointJournal",
    "task_fingerprint",
    "ConsistentAnswer",
    "consistent_aggregate_answer",
    "enumerate_card_minimal_repairs",
    "count_card_minimal_supports",
    "is_set_minimal",
    "find_set_minimal_not_card_minimal",
    "brute_force_card_minimal",
    "Operator",
    "OracleOperator",
    "FallibleOperator",
    "ValidationLoop",
    "ValidationSession",
    "involvement_order",
    "greedy_local_repair",
    "aggregate_recompute_repair",
]
