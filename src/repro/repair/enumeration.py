"""Enumerating card-minimal repairs.

A database may admit *several* card-minimal repairs (the paper notes
this right after Definition 5); DART's validation loop exists to let a
human choose among them.  For analysis -- and for the CQA module's
intuition -- it is useful to materialise them.

Enumeration is by *support* (the set of cells a repair changes), using
the standard no-good-cut loop:

1. solve ``S*(AC)``; record the optimal cardinality ``k*`` and the
   support ``S`` of the found repair;
2. add the cut ``sum_{i in S} delta_i <= |S| - 1`` (any further repair
   must differ from S in at least one cell);
3. re-solve; stop when the objective exceeds ``k*`` (all card-minimal
   supports exhausted) or the model becomes infeasible.

Within one support the witness values may not be unique for
under-constrained systems; the returned repair is the solver's
witness.  For the equality systems of the balance-sheet family the
values per support are uniquely determined, which the tests check.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional, Sequence

from repro.constraints.grounding import Cell
from repro.milp.model import SolveStatus
from repro.milp.solver import solve
from repro.repair.engine import RepairEngine, UnrepairableError
from repro.repair.translation import RepairObjective, TranslationError, translate
from repro.repair.updates import Repair


def enumerate_card_minimal_repairs(
    engine: RepairEngine,
    *,
    limit: int = 100,
    pins: Optional[Mapping[Cell, float]] = None,
) -> List[Repair]:
    """All card-minimal repairs (by support), up to *limit*.

    Returns repairs in solver order; every returned repair is verified
    against the constraints.  Raises
    :class:`~repro.repair.engine.UnrepairableError` if no repair
    exists at all.
    """
    if engine.objective is not RepairObjective.CARDINALITY:
        raise TranslationError(
            "repair enumeration is defined for the card-minimal objective"
        )
    first = engine.find_card_minimal_repair(pins=pins)
    optimal_cardinality = first.cardinality
    found: List[Repair] = [first.repair]
    if limit <= 1:
        return found

    excluded_supports: List[List[Cell]] = [first.repair.cells()]
    big_m = first.translation.big_m

    while len(found) < limit:
        translation = translate(
            engine.database,
            engine.constraints,
            pins=pins,
            grounds=engine.ground_system,
            big_m=big_m,
        )
        model = translation.model
        index_of = {cell: i for i, cell in enumerate(translation.cells)}
        for support in excluded_supports:
            deltas = [model.variable(f"d{index_of[cell] + 1}") for cell in support]
            if not deltas:
                # The empty repair was optimal: nothing else can be
                # card-minimal.
                return found
            model.add_constraint(
                sum(deltas, start=0) <= float(len(support) - 1)
            )
        solution = solve(model, backend=engine.backend)
        if solution.status is SolveStatus.INFEASIBLE:
            break
        if not solution.is_optimal or solution.objective is None:
            raise UnrepairableError(
                f"enumeration solve returned {solution.status.value}"
            )
        if round(solution.objective) > optimal_cardinality:
            break  # only super-minimal repairs remain
        repair = translation.extract_repair(solution)
        if not engine.is_repair(repair):
            raise UnrepairableError(
                "enumeration produced a candidate failing verification"
            )
        found.append(repair)
        excluded_supports.append(repair.cells())
    return found


def count_card_minimal_supports(
    engine: RepairEngine, *, limit: int = 100
) -> int:
    """Convenience: how many distinct card-minimal supports exist
    (saturating at *limit*)."""
    return len(enumerate_card_minimal_repairs(engine, limit=limit))
