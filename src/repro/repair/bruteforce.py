"""Brute-force card-minimal repair (the test oracle).

Enumerates candidate cell subsets by increasing cardinality; for each
subset, asks whether freezing every *other* involved cell at its
current value leaves the ground system satisfiable.  The first
cardinality with a satisfiable subset is the card-minimal cardinality,
and the witness assignment is a card-minimal repair.

Satisfiability of "fix these, free those" is itself decided with the
MILP layer (zero objective, no deltas needed), so the oracle's only
assumption shared with the engine under test is the *ground system* --
which the tests validate separately by direct evaluation.

Exponential in the number of involved cells: use on small instances
only (the tests cap at ~20 cells / cardinality 3).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple as PyTuple

from repro.constraints.constraint import AggregateConstraint, Relop
from repro.constraints.grounding import Cell, GroundConstraint, ground_constraints
from repro.milp.model import MILPModel, SolveStatus, VarType
from repro.milp.solver import solve
from repro.relational.database import Database
from repro.relational.domains import Domain
from repro.repair.updates import AtomicUpdate, Repair


def _subset_feasible(
    grounds: Sequence[GroundConstraint],
    cells: Sequence[Cell],
    values: Mapping[Cell, float],
    integer: Mapping[Cell, bool],
    free: Sequence[Cell],
    bound: float,
    pins: Mapping[Cell, float],
    bounds: Mapping[Cell, PyTuple[Optional[float], Optional[float]]],
) -> Optional[Dict[Cell, float]]:
    """If the system is satisfiable with only *free* cells changeable,
    return a witness assignment for the free cells; else ``None``."""
    free_set = set(free)
    model = MILPModel("oracle")
    variables: Dict[Cell, object] = {}
    for cell in free:
        var_type = VarType.INTEGER if integer[cell] else VarType.REAL
        declared_lower, declared_upper = bounds.get(cell, (None, None))
        lower = -bound if declared_lower is None else max(-bound, declared_lower)
        upper = bound if declared_upper is None else min(bound, declared_upper)
        variables[cell] = model.add_variable(
            f"z_{cells.index(cell)}", var_type, lower=lower, upper=upper
        )
    for g_index, ground in enumerate(grounds):
        expr = 0.0
        has_variable = False
        for cell, coefficient in ground.coefficients.items():
            if cell in free_set:
                expr = expr + coefficient * variables[cell]
                has_variable = True
            else:
                expr = expr + coefficient * values[cell]
        rhs = ground.rhs - ground.constant
        if not has_variable:
            if not Relop.holds(ground.relop, float(expr) + ground.constant, ground.rhs):
                return None
            continue
        if ground.relop == Relop.LE:
            model.add_constraint(expr <= rhs, name=f"g{g_index}")
        elif ground.relop == Relop.GE:
            model.add_constraint(expr >= rhs, name=f"g{g_index}")
        else:
            model.add_constraint(expr == rhs, name=f"g{g_index}")
    for cell, pinned in pins.items():
        if cell in free_set:
            model.add_constraint(variables[cell] == float(pinned))
        elif values[cell] != pinned:
            return None
    if not free:
        # Every ground constraint was checked against the frozen values
        # above; an empty free set is feasible iff none failed.
        return {}
    model.set_objective(0.0)
    solution = solve(model)
    if solution.status is not SolveStatus.OPTIMAL or solution.values is None:
        return None
    witness: Dict[Cell, float] = {}
    for cell in free:
        value = solution.values[f"z_{cells.index(cell)}"]
        if integer[cell]:
            value = round(value)
        witness[cell] = value
    return witness


def brute_force_card_minimal(
    database: Database,
    constraints: Sequence[AggregateConstraint],
    *,
    max_cardinality: Optional[int] = None,
    bound: float = 1e9,
    pins: Optional[Mapping[Cell, float]] = None,
) -> Optional[Repair]:
    """Exhaustively find a card-minimal repair, or ``None`` if none exists
    within *max_cardinality* (default: all involved cells)."""
    grounds = ground_constraints(constraints, database, require_steady=True)
    cells: List[Cell] = []
    seen = set()
    for ground in grounds:
        for cell in ground.coefficients:
            if cell not in seen:
                seen.add(cell)
                cells.append(cell)
    cells.sort()
    pins = dict(pins or {})
    for cell in pins:
        if cell not in seen:
            seen.add(cell)
            cells.append(cell)

    schema = database.schema
    values: Dict[Cell, float] = {}
    integer: Dict[Cell, bool] = {}
    declared_bounds: Dict[Cell, PyTuple[Optional[float], Optional[float]]] = {}
    for cell in cells:
        relation, tuple_id, attribute = cell
        values[cell] = float(database.get_value(relation, tuple_id, attribute))
        integer[cell] = schema.relation(relation).domain_of(attribute) is Domain.INTEGER
        declared_bounds[cell] = schema.bounds_of(relation, attribute)

    limit = len(cells) if max_cardinality is None else min(max_cardinality, len(cells))
    for cardinality in range(0, limit + 1):
        for subset in itertools.combinations(cells, cardinality):
            witness = _subset_feasible(
                grounds, cells, values, integer, list(subset), bound, pins,
                declared_bounds,
            )
            if witness is None:
                continue
            updates = [
                AtomicUpdate(cell[0], cell[1], cell[2], values[cell], witness[cell])
                for cell in subset
                if witness[cell] != values[cell]
            ]
            # The witness might coincide with the original value on some
            # freed cell; then a smaller subset would also have been
            # feasible and was already tried -- unless we are at that
            # smaller cardinality now.  Accept only exact-size repairs.
            if len(updates) == cardinality:
                return Repair(updates)
    return None
