"""Elastic relaxation: the best repair when no repair exists.

When the grounded instance ``S*(AC)`` is infeasible even at the
escalated Big-M -- contradictory aggregate constraints, or operator
pins that no assignment can reconcile -- DART can still return the
*least wrong* answer instead of an error.  Following the soft/elastic
constraint tradition (Franconi & Lopatenko in PAPERS.md), every ground
constraint receives slack variables that let it be violated at a
price, and the price is minimised **lexicographically**:

1. ``relax-count``   -- minimise the number of violated ground
   constraints (a binary ``viol_g`` per ground row, linked to its
   slacks by ``s <= bound * viol_g``);
2. ``relax-magnitude`` -- holding the count, minimise the total
   violation magnitude ``sum(s)``;
3. ``relax-repair``  -- holding both, minimise the original repair
   objective (card-minimality by default).

Operator pins are **never** relaxed: a pin is a human-verified fact
(Section 6.3), so an instance whose pins contradict the variable
bounds stays infeasible and raises
:class:`~repro.diagnostics.InfeasibleSystemError`.  Structural rows
(``y_i`` definitions, Big-M links) are satisfiable for any ``z`` and
are copied unchanged.

Relaxed verdicts are **never cached**: like ``feasible_gap`` results
they are not facts about the original model (the original model is
infeasible -- that verdict *is* cacheable and the engine caches it on
the way here).  All three phases call
:func:`repro.milp.solver.solve` directly, bypassing every
:class:`~repro.milp.cache.SolveCache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.diagnostics import InfeasibleSystemError, SolveTimeoutError
from repro.constraints.grounding import GroundConstraint
from repro.milp.deadline import Deadline
from repro.milp.model import (
    Constraint,
    LinExpr,
    MILPModel,
    Sense,
    Solution,
    SolveStatus,
    VarType,
)
from repro.milp.solver import (
    DEFAULT_BACKEND,
    SolveStats,
    _stats_from_solution,
    solve,
)
from repro.repair.translation import MILPTranslation, _classify_row_name
from repro.repair.updates import Repair

#: Slack below this is numeric noise, not a violation.
VIOLATION_TOL = 1e-6


@dataclass
class ConstraintViolation:
    """One ground constraint the relaxed repair leaves violated."""

    ground: GroundConstraint
    amount: float
    direction: str  # "over" (actual > bound) or "under" (actual < bound)

    def __str__(self) -> str:
        return (
            f"[{self.ground.source}] {self.ground} "
            f"violated {self.direction} by {self.amount:g}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "source": self.ground.source,
            "constraint": str(self.ground),
            "relop": str(self.ground.relop),
            "rhs": self.ground.rhs,
            "direction": self.direction,
            "amount": self.amount,
        }


@dataclass
class RelaxationReport:
    """The structured violation report of a relaxed repair."""

    violations: List[ConstraintViolation] = field(default_factory=list)
    #: How many ground rows carried slacks (the relaxable universe).
    relaxable: int = 0
    stats: List[SolveStats] = field(default_factory=list)

    @property
    def n_violated(self) -> int:
        return len(self.violations)

    @property
    def total_violation(self) -> float:
        return sum(v.amount for v in self.violations)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_violated": self.n_violated,
            "total_violation": self.total_violation,
            "relaxable": self.relaxable,
            "violations": [v.as_dict() for v in self.violations],
        }

    def describe(self) -> str:
        lines = [
            f"relaxed repair violates {self.n_violated} of "
            f"{self.relaxable} ground constraint(s), total magnitude "
            f"{self.total_violation:g}"
        ]
        for violation in self.violations:
            lines.append(f"  {violation}")
        return "\n".join(lines)


@dataclass
class RelaxationOutcome:
    """A best-effort repair of an infeasible instance."""

    repair: Repair
    objective: float
    solution: Solution
    report: RelaxationReport


def _solve_phase(
    model: MILPModel,
    phase: str,
    backend: str,
    deadline: Deadline,
    report: RelaxationReport,
) -> Solution:
    deadline.check(f"relaxation ({phase})")
    options: Dict[str, float] = {}
    remaining = deadline.remaining()
    if remaining is not None:
        options["time_limit"] = remaining
    started = time.perf_counter()
    solution = solve(model, backend=backend, **options)
    stats = _stats_from_solution(
        model, backend, solution, time.perf_counter() - started, False
    )
    stats.phase = phase
    report.stats.append(stats)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleSystemError(
            "elastic relaxation is itself infeasible: the operator pins "
            "conflict with declared bounds, so no assignment exists even "
            "with every ground constraint relaxed",
            phase=phase,
        )
    if not solution.is_usable:
        raise SolveTimeoutError(
            f"relaxation phase {phase!r} produced no usable solution "
            f"({solution.status.value})",
            phase=phase,
        )
    return solution


def relax_infeasible(
    translation: MILPTranslation,
    *,
    backend: str = DEFAULT_BACKEND,
    deadline: Optional[Deadline] = None,
) -> RelaxationOutcome:
    """Re-solve an infeasible *translation* with elastic ground rows.

    Returns the lexicographically best relaxed repair and its
    violation report.  On a feasible instance this legitimately
    returns an empty report (no slack is ever cheaper than some
    slack), so callers normally reach it only after an INFEASIBLE
    verdict.
    """
    deadline = deadline or Deadline(None)
    base = translation.model
    bound = max(1.0, float(translation.big_m))

    model = MILPModel(name=f"relax({base.name})")
    for variable in base.variables:
        model.add_variable(
            variable.name, variable.var_type, variable.lower, variable.upper
        )

    # (g_index, ground, over-slack name, under-slack name)
    elastic: List[tuple] = []
    viol_indices: List[int] = []
    slack_indices: List[int] = []
    for constraint in base.constraints:
        kind, g_index = _classify_row_name(constraint.name)
        coefficients = dict(constraint.expr.coefficients)
        if kind != "ground" or g_index is None:
            # Pins stay hard; structural rows hold for any z.
            model.add_constraint(
                Constraint(
                    LinExpr(coefficients, constraint.expr.constant),
                    constraint.sense,
                    constraint.rhs,
                    constraint.name,
                )
            )
            continue
        ground = translation.grounds[g_index]
        viol = model.add_variable(f"viol{g_index}", VarType.BINARY)
        viol_indices.append(viol.index)
        over_name = under_name = None
        if constraint.sense in (Sense.LE, Sense.EQ):
            over = model.add_variable(
                f"s_over{g_index}", VarType.REAL, lower=0.0, upper=bound
            )
            over_name = over.name
            slack_indices.append(over.index)
            coefficients[over.index] = coefficients.get(over.index, 0.0) - 1.0
        if constraint.sense in (Sense.GE, Sense.EQ):
            under = model.add_variable(
                f"s_under{g_index}", VarType.REAL, lower=0.0, upper=bound
            )
            under_name = under.name
            slack_indices.append(under.index)
            coefficients[under.index] = coefficients.get(under.index, 0.0) + 1.0
        model.add_constraint(
            Constraint(
                LinExpr(coefficients, constraint.expr.constant),
                constraint.sense,
                constraint.rhs,
                constraint.name,
            )
        )
        for slack_name, tag in ((over_name, "over"), (under_name, "under")):
            if slack_name is None:
                continue
            slack_var = model.variable(slack_name)
            model.add_constraint(
                Constraint(
                    LinExpr({slack_var.index: 1.0, viol.index: -bound}),
                    Sense.LE,
                    0.0,
                    f"elastic{g_index}:{tag}",
                )
            )
        elastic.append((g_index, ground, over_name, under_name))

    report = RelaxationReport(relaxable=len(elastic))
    if not elastic:
        raise InfeasibleSystemError(
            "nothing to relax: the translation has no ground rows",
        )

    # Phase 1: fewest violated ground constraints.
    model.set_objective(LinExpr({index: 1.0 for index in viol_indices}))
    first = _solve_phase(model, "relax-count", backend, deadline, report)
    count = round(first.objective)
    model.add_constraint(
        Constraint(
            LinExpr({index: 1.0 for index in viol_indices}),
            Sense.LE,
            count + 0.5,
            "lex:count",
        )
    )

    # Phase 2: smallest total violation magnitude at that count.
    model.set_objective(LinExpr({index: 1.0 for index in slack_indices}))
    second = _solve_phase(model, "relax-magnitude", backend, deadline, report)
    magnitude = float(second.objective)
    model.add_constraint(
        Constraint(
            LinExpr({index: 1.0 for index in slack_indices}),
            Sense.LE,
            magnitude + max(1e-6, 1e-9 * abs(magnitude)),
            "lex:magnitude",
        )
    )

    # Phase 3: the original repair objective, e.g. card-minimality.
    # Base-variable indices are identical in the clone, so the original
    # objective expression is valid as-is.
    model.set_objective(
        LinExpr(dict(base.objective.coefficients), base.objective.constant)
    )
    third = _solve_phase(model, "relax-repair", backend, deadline, report)

    for g_index, ground, over_name, under_name in elastic:
        s_over = float(third.values.get(over_name, 0.0)) if over_name else 0.0
        s_under = float(third.values.get(under_name, 0.0)) if under_name else 0.0
        net = s_over - s_under
        if abs(net) <= VIOLATION_TOL:
            continue
        report.violations.append(
            ConstraintViolation(
                ground=ground,
                amount=abs(net),
                direction="over" if net > 0 else "under",
            )
        )

    repair = translation.extract_repair(third)
    return RelaxationOutcome(
        repair=repair,
        objective=float(third.objective),
        solution=third,
        report=report,
    )
