"""Durable content-addressed result store: cross-run solve reuse.

The LRU solve cache (:mod:`repro.milp.cache`) dies with the process,
so every CLI invocation re-pays full MILP cost for documents it has
already repaired.  :class:`ResultStore` promotes that cache to disk --
a SQLite database in WAL mode, keyed by the same canonical model
fingerprints (:mod:`repro.milp.fingerprint`) -- so duplicate documents
are free *across* runs, processes and tenants.  HoloClean persists its
grounding store for the same reason; EarlyRepairer journals every
repair result to SQLite.

Robustness contract (the reason this module exists at all):

- **atomic commit** -- every ``put`` is one SQLite transaction in WAL
  mode.  A ``kill -9`` mid-write can lose the row being written, never
  corrupt a committed one: WAL recovery discards the torn tail frames
  on the next open, exactly like the checkpoint journal's torn-line
  tolerance;
- **per-row integrity checksums** -- each payload is stored alongside
  a SHA-256 over ``key + payload``.  ``get`` recomputes it on every
  read; a mismatching row (bit rot, a tampered file, a torn page that
  escaped SQLite's own guards) is **evicted and re-solved, never
  served**.  The checksum covers the key too, so a row transplanted
  under a different key also fails;
- **whole-file self-healing** -- if SQLite itself reports the database
  unusable (``DatabaseError`` on open or query), the file is moved
  aside to ``<path>.corrupt`` and a fresh store is started: the
  service degrades to cold-cache behaviour instead of falling over.
  The event is counted (``corrupt_recoveries``) and surfaced through
  :meth:`ResultStore.info` so operators see it;
- **admission control** -- the store never decides what is safe to
  persist; callers do.  :class:`~repro.milp.cache.SolveCache` only
  forwards first-rung-**certified** results (see
  ``solve_with_stats(certify=True)``), and every hit is re-certified
  on read by the solver, so a poisoned-but-checksummed row still
  cannot reach a caller.

Concurrency: one :class:`ResultStore` instance per process (WAL allows
concurrent readers with a single writer; writers queue on SQLite's own
locking with ``busy_timeout``).  Within a process a single lock guards
the shared connection, so one instance may be shared by threads.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.milp.model import Solution, SolveStatus

logger = logging.getLogger(__name__)

#: Bump when the row layout or payload encoding changes; a store with
#: a different version is rebuilt rather than misread.
STORE_VERSION = 1

#: Seconds SQLite waits on a locked database before erroring.
BUSY_TIMEOUT = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    name TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    backend TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    payload TEXT NOT NULL,
    checksum TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_fingerprint
    ON results (fingerprint);
"""


def _render_key(key: Tuple[str, str, str]) -> str:
    """The canonical flat string for a cache key tuple."""
    return json.dumps(list(key), separators=(",", ":"))


def _checksum(rendered_key: str, payload: str) -> str:
    digest = hashlib.sha256()
    digest.update(rendered_key.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(payload.encode("utf-8"))
    return digest.hexdigest()


def solution_to_payload(solution: Solution) -> str:
    """Canonical JSON for one solution (deterministic, roundtrip-exact).

    ``sort_keys`` plus compact separators make the encoding a pure
    function of the solution's content, so the checksum is stable, and
    JSON's shortest-roundtrip float repr makes decode(encode(x))
    bitwise-identical -- the cross-run reuse tests rely on it.
    """
    return json.dumps(
        {
            "status": solution.status.value,
            "objective": solution.objective,
            "values": solution.values,
            "stats": solution.stats,
        },
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )


def payload_to_solution(payload: str) -> Solution:
    record = json.loads(payload)
    return Solution(
        status=SolveStatus(record["status"]),
        objective=record.get("objective"),
        values=record.get("values"),
        stats=record.get("stats") or {},
    )


@dataclass
class StoreIntegrityReport:
    """Outcome of one :meth:`ResultStore.integrity_scan`."""

    rows_checked: int = 0
    rows_evicted: int = 0
    #: SQLite's own ``PRAGMA integrity_check`` verdict ("ok" or the
    #: first reported problem).
    sqlite_verdict: str = "ok"
    #: Keys of the rows the scan evicted (checksum mismatch / garbage).
    evicted_keys: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.rows_evicted == 0 and self.sqlite_verdict == "ok"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rows_checked": self.rows_checked,
            "rows_evicted": self.rows_evicted,
            "sqlite_verdict": self.sqlite_verdict,
            "evicted_keys": list(self.evicted_keys),
            "ok": self.ok,
        }


@dataclass
class StoreInfo:
    """Counters for one store instance's lifetime."""

    path: str
    rows: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Rows served-then-evicted because their checksum failed on read.
    corrupt_evictions: int = 0
    #: Times the whole file was judged unusable and rebuilt.
    corrupt_recoveries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "rows": self.rows,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
            "corrupt_evictions": self.corrupt_evictions,
            "corrupt_recoveries": self.corrupt_recoveries,
        }


class ResultStore:
    """Disk-backed map ``cache key -> Solution`` with integrity checking.

    ``get``/``put`` mirror :class:`~repro.milp.cache.SolveCache` and
    are safe to call from multiple threads of one process; use one
    instance per process.  All failure handling is contained: a bad
    row returns ``None`` (miss), a bad file rebuilds itself -- callers
    never see an exception for corruption, only for genuine programmer
    errors.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt_evictions = 0
        self._corrupt_recoveries = 0
        self._connection = self._open()

    # -- lifecycle ---------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            return self._connect()
        except sqlite3.DatabaseError as exc:
            self._quarantine_file(exc)
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(
            self.path, timeout=BUSY_TIMEOUT, check_same_thread=False
        )
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            # NORMAL in WAL mode is durable against process death
            # (kill -9): committed transactions survive, the torn tail
            # is rolled back by WAL recovery.  Only an OS/power crash
            # can lose (never corrupt) the most recent commits.
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(f"PRAGMA busy_timeout={int(BUSY_TIMEOUT * 1000)}")
            connection.executescript(_SCHEMA)
            version = connection.execute(
                "SELECT value FROM meta WHERE name='version'"
            ).fetchone()
            if version is None:
                with connection:
                    connection.execute(
                        "INSERT OR REPLACE INTO meta (name, value) VALUES (?, ?)",
                        ("version", str(STORE_VERSION)),
                    )
            elif version[0] != str(STORE_VERSION):
                raise sqlite3.DatabaseError(
                    f"store version {version[0]!r} != {STORE_VERSION}"
                )
        except sqlite3.DatabaseError:
            connection.close()
            raise
        return connection

    def _quarantine_file(self, reason: Exception) -> None:
        """Move the unusable file aside and count the recovery."""
        self._corrupt_recoveries += 1
        quarantined = self.path.with_suffix(self.path.suffix + ".corrupt")
        logger.warning(
            "result store %s is unusable (%s); moving aside to %s and "
            "starting fresh",
            self.path, reason, quarantined,
        )
        try:
            if quarantined.exists():
                quarantined.unlink()
            if self.path.exists():
                self.path.replace(quarantined)
            # WAL sidecars of the damaged file must not resurrect it.
            for suffix in ("-wal", "-shm"):
                sidecar = Path(str(self.path) + suffix)
                if sidecar.exists():
                    sidecar.unlink()
        except OSError:
            # Last resort: plain unlink; losing a corrupt cache is
            # always acceptable, serving it never is.
            try:
                self.path.unlink()
            except OSError:
                pass

    def _rebuild(self, reason: Exception) -> None:
        try:
            self._connection.close()
        except sqlite3.Error:
            pass
        self._quarantine_file(reason)
        self._connection = self._connect()

    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the map -----------------------------------------------------------

    def get(self, key: Tuple[str, str, str]) -> Optional[Solution]:
        """The stored solution for *key*, or ``None``.

        A row whose checksum or payload fails verification is deleted
        (self-healing) and reported as a miss: the caller re-solves
        and overwrites it with a good row.
        """
        rendered = _render_key(key)
        with self._lock:
            try:
                row = self._connection.execute(
                    "SELECT payload, checksum FROM results WHERE key=?",
                    (rendered,),
                ).fetchone()
            except sqlite3.DatabaseError as exc:
                self._rebuild(exc)
                row = None
            if row is None:
                self._misses += 1
                return None
            payload, checksum = row
            if checksum != _checksum(rendered, payload):
                self._evict_locked(rendered, "checksum mismatch")
                self._misses += 1
                return None
            try:
                solution = payload_to_solution(payload)
            except (ValueError, KeyError, TypeError) as exc:
                self._evict_locked(rendered, f"undecodable payload ({exc})")
                self._misses += 1
                return None
            self._hits += 1
            return solution

    def _evict_locked(self, rendered_key: str, why: str) -> None:
        logger.warning(
            "result store %s: evicting corrupt row (%s)", self.path, why
        )
        self._corrupt_evictions += 1
        try:
            with self._connection:
                self._connection.execute(
                    "DELETE FROM results WHERE key=?", (rendered_key,)
                )
        except sqlite3.DatabaseError as exc:
            self._rebuild(exc)

    def put(self, key: Tuple[str, str, str], solution: Solution) -> None:
        """Atomically commit one result (last writer wins)."""
        rendered = _render_key(key)
        payload = solution_to_payload(solution)
        backend, _, fingerprint = key
        with self._lock:
            self._puts += 1
            try:
                with self._connection:
                    self._connection.execute(
                        "INSERT OR REPLACE INTO results "
                        "(key, backend, fingerprint, payload, checksum) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (
                            rendered,
                            backend,
                            fingerprint,
                            payload,
                            _checksum(rendered, payload),
                        ),
                    )
            except sqlite3.DatabaseError as exc:
                self._rebuild(exc)

    def evict(self, key: Tuple[str, str, str]) -> None:
        """Drop one row (used when a hit fails re-certification)."""
        rendered = _render_key(key)
        with self._lock:
            self._evict_locked(rendered, "caller-requested eviction")

    # -- maintenance -------------------------------------------------------

    def integrity_scan(self) -> StoreIntegrityReport:
        """Verify every row's checksum and SQLite's own file structure.

        Corrupt rows are evicted as they are found, so a scan both
        reports and repairs; after it returns, every remaining row is
        checksum-clean.
        """
        report = StoreIntegrityReport()
        with self._lock:
            try:
                verdict = self._connection.execute(
                    "PRAGMA integrity_check"
                ).fetchone()
                report.sqlite_verdict = str(verdict[0]) if verdict else "ok"
                rows = self._connection.execute(
                    "SELECT key, payload, checksum FROM results"
                ).fetchall()
            except sqlite3.DatabaseError as exc:
                self._rebuild(exc)
                report.sqlite_verdict = f"rebuilt ({exc})"
                return report
            for rendered, payload, checksum in rows:
                report.rows_checked += 1
                bad = checksum != _checksum(rendered, payload)
                if not bad:
                    try:
                        payload_to_solution(payload)
                    except (ValueError, KeyError, TypeError):
                        bad = True
                if bad:
                    report.rows_evicted += 1
                    report.evicted_keys.append(rendered)
                    self._evict_locked(rendered, "integrity scan")
        if report.sqlite_verdict != "ok":
            self._rebuild(
                sqlite3.DatabaseError(
                    f"integrity_check: {report.sqlite_verdict}"
                )
            )
        return report

    def __len__(self) -> int:
        with self._lock:
            try:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()
            except sqlite3.DatabaseError as exc:
                self._rebuild(exc)
                return 0
            return int(row[0])

    def info(self) -> StoreInfo:
        rows = len(self)
        with self._lock:
            return StoreInfo(
                path=str(self.path),
                rows=rows,
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                corrupt_evictions=self._corrupt_evictions,
                corrupt_recoveries=self._corrupt_recoveries,
            )

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"ResultStore({info.path!r}, rows={info.rows}, "
            f"hits={info.hits}, misses={info.misses})"
        )
