"""The input-document model.

A document contains tables; a table is a list of rows of cells; a cell
carries text and may span multiple rows and/or columns -- the paper's
Figure 1 uses a year cell spanning ten rows and section cells spanning
several.  Tables therefore have "variable structure": the number of
*physical* cells per row varies even when the *logical* grid is
rectangular.

:meth:`Table.logical_grid` expands spans into the rectangular logical
grid (each grid position holds the text of the covering cell), which is
what both the HTML renderer and tests use to reason about content
irrespective of the span layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence


class SourceFormat(enum.Enum):
    """Where a document came from; drives the acquisition pipeline."""

    PAPER = "paper"
    PDF = "pdf"
    MSWORD = "msword"
    RTF = "rtf"
    HTML = "html"

    @property
    def needs_ocr(self) -> bool:
        """Paper documents are digitised and OCR-processed first."""
        return self is SourceFormat.PAPER


@dataclass(frozen=True)
class Cell:
    """One physical table cell."""

    text: str
    rowspan: int = 1
    colspan: int = 1

    def __post_init__(self) -> None:
        if self.rowspan < 1 or self.colspan < 1:
            raise ValueError("cell spans must be >= 1")

    def with_text(self, text: str) -> "Cell":
        return replace(self, text=text)


@dataclass(frozen=True)
class Row:
    """One physical table row."""

    cells: Sequence[Cell]

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)


class TableStructureError(ValueError):
    """Raised when spans overlap or overflow the grid."""


@dataclass(frozen=True)
class Table:
    """A table with possibly multi-row / multi-column cells."""

    rows: Sequence[Row]
    caption: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    def logical_grid(self) -> List[List[Optional[str]]]:
        """Expand spans into the rectangular logical grid.

        Grid position (r, c) holds the text of the physical cell that
        covers it, or ``None`` if nothing covers it (ragged input).
        Mirrors the HTML table layout algorithm: each physical cell is
        placed at the first free column of its row, then its span block
        is marked occupied.
        """
        grid: List[List[Optional[str]]] = []
        occupied: List[List[bool]] = []

        def ensure_size(n_rows: int, n_columns: int) -> None:
            while len(grid) < n_rows:
                grid.append([])
                occupied.append([])
            for row_cells, row_flags in zip(grid, occupied):
                while len(row_cells) < n_columns:
                    row_cells.append(None)
                    row_flags.append(False)

        for row_index, row in enumerate(self.rows):
            ensure_size(row_index + 1, len(grid[0]) if grid else 0)
            column = 0
            for cell in row:
                # Find the first free column in this row.
                while True:
                    ensure_size(row_index + 1, column + 1)
                    if not occupied[row_index][column]:
                        break
                    column += 1
                ensure_size(row_index + cell.rowspan, column + cell.colspan)
                for r in range(row_index, row_index + cell.rowspan):
                    for c in range(column, column + cell.colspan):
                        if occupied[r][c]:
                            raise TableStructureError(
                                f"cell spans overlap at grid position ({r}, {c})"
                            )
                        occupied[r][c] = True
                        grid[r][c] = cell.text
                column += cell.colspan
        # Pad all rows to the final width.
        width = max((len(r) for r in grid), default=0)
        for row_cells, row_flags in zip(grid, occupied):
            while len(row_cells) < width:
                row_cells.append(None)
                row_flags.append(False)
        return grid

    def logical_width(self) -> int:
        grid = self.logical_grid()
        return len(grid[0]) if grid else 0

    def map_cells(self, transform) -> "Table":
        """A copy with every cell's text mapped through *transform*.

        *transform* receives ``(row_index, cell_index, cell)`` and
        returns the new text.
        """
        new_rows = []
        for row_index, row in enumerate(self.rows):
            new_cells = [
                cell.with_text(transform(row_index, cell_index, cell))
                for cell_index, cell in enumerate(row)
            ]
            new_rows.append(Row(new_cells))
        return Table(new_rows, caption=self.caption)


@dataclass(frozen=True)
class Document:
    """An input document: a titled collection of tables."""

    title: str
    tables: Sequence[Table]
    source_format: SourceFormat = SourceFormat.HTML

    def __post_init__(self) -> None:
        object.__setattr__(self, "tables", tuple(self.tables))

    def with_tables(self, tables: Sequence[Table]) -> "Document":
        return replace(self, tables=tuple(tables))
