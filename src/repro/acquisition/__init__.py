"""Acquisition module simulation (paper, Section 6.1).

DART's acquisition module turns input documents -- paper, PDF, MSWord,
RTF or HTML -- into HTML for the extraction module; paper documents
pass through an OCR tool first.  We reproduce that stage with:

- :mod:`repro.acquisition.documents` -- a document model: documents
  containing tables whose cells may span multiple rows and columns
  ("variable structure", the case existing wrappers handle poorly);
- :mod:`repro.acquisition.ocr` -- a seeded OCR error channel with
  digit- and character-confusion tables, plus direct database-level
  error injection for repair-only experiments;
- :mod:`repro.acquisition.conversion` -- the format-conversion tool:
  renders the document model to real HTML (and simulates the
  paper -> OCR -> PDF -> HTML chain by applying the error channel
  first for paper sources).
"""

from repro.acquisition.documents import Cell, Document, Row, SourceFormat, Table
from repro.acquisition.ocr import (
    ErrorRecord,
    OcrChannel,
    inject_value_errors,
)
from repro.acquisition.conversion import AcquisitionModule, to_html

__all__ = [
    "Cell",
    "Row",
    "Table",
    "Document",
    "SourceFormat",
    "OcrChannel",
    "ErrorRecord",
    "inject_value_errors",
    "to_html",
    "AcquisitionModule",
]
