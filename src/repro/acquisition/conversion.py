"""The format-conversion tool and the acquisition module facade.

Section 6.1: "input documents which are not already in [HTML] format
are converted into an HTML document by means of a format-conversion
tool ... paper documents are first digitized and processed by means of
an OCR tool (yielding PDF documents) whose output is then processed by
the converter."

:func:`to_html` renders the document model to genuine HTML (rowspan /
colspan attributes and all), and :class:`AcquisitionModule` simulates
the full chain: for paper sources the OCR channel corrupts the
document first; for electronic sources conversion is lossless (a
format conversion does not misread symbols).
"""

from __future__ import annotations

import html as html_escape
from dataclasses import dataclass, field
from typing import List, Optional, Tuple as PyTuple

from repro.acquisition.documents import Document, SourceFormat, Table
from repro.acquisition.ocr import ErrorRecord, OcrChannel


def to_html(document: Document) -> str:
    """Render *document* as an HTML page with one ``<table>`` per table."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html>",
        "<head>",
        f"  <title>{html_escape.escape(document.title)}</title>",
        "</head>",
        "<body>",
    ]
    for table in document.tables:
        parts.append('  <table border="1">')
        if table.caption:
            parts.append(
                f"    <caption>{html_escape.escape(table.caption)}</caption>"
            )
        for row in table.rows:
            parts.append("    <tr>")
            for cell in row:
                attributes = ""
                if cell.rowspan > 1:
                    attributes += f' rowspan="{cell.rowspan}"'
                if cell.colspan > 1:
                    attributes += f' colspan="{cell.colspan}"'
                parts.append(
                    f"      <td{attributes}>{html_escape.escape(cell.text)}</td>"
                )
            parts.append("    </tr>")
        parts.append("  </table>")
    parts.append("</body>")
    parts.append("</html>")
    return "\n".join(parts)


@dataclass
class AcquisitionResult:
    """Output of the acquisition module."""

    html: str
    #: the (possibly OCR-corrupted) document that was rendered
    acquired_document: Document
    #: errors the OCR channel injected (empty for electronic sources)
    injected_errors: List[ErrorRecord] = field(default_factory=list)


class AcquisitionModule:
    """Simulates DART's acquisition module.

    ``ocr_channel`` models the OCR tool used for paper documents; it
    is consulted only when ``document.source_format.needs_ocr``.
    """

    def __init__(self, ocr_channel: Optional[OcrChannel] = None) -> None:
        self.ocr_channel = ocr_channel or OcrChannel()

    def acquire(self, document: Document) -> AcquisitionResult:
        """Run the acquisition chain and return HTML plus provenance."""
        if document.source_format.needs_ocr:
            corrupted, errors = self.ocr_channel.corrupt_document(document)
            return AcquisitionResult(
                html=to_html(corrupted),
                acquired_document=corrupted,
                injected_errors=errors,
            )
        return AcquisitionResult(
            html=to_html(document),
            acquired_document=document,
            injected_errors=[],
        )
