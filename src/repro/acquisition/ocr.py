"""The OCR error channel.

The paper's acquisition errors are *symbol recognition* errors: a
numerical value is misread (220 acquired as 250) or a string is
misspelled ("beginning cash" acquired as "bgnning cesh").  We model
the OCR tool as a seeded noisy channel over cell text:

- numeric cells suffer digit-level substitutions drawn from a
  confusion table of classic OCR digit confusions (1<->7, 0<->8,
  3<->8, 5<->6, 2<->5(via deformed glyphs), 4<->9), digit deletions
  or digit duplications;
- string cells suffer character substitutions (e<->c, o<->a(via
  degraded print), i<->l, n<->h, u<->v), vowel deletions and the
  famous "rn" -> "m" ligature collapse.

Each corruption is recorded as an :class:`ErrorRecord`, giving every
experiment exact ground truth about what was injected where.  Records
carry the *per-cell confusion detail* -- which operation fired at which
position, and the channel probability of that exact misreading -- so
downstream consumers (the tier-1 confusion inversion of
:mod:`repro.repair.cascade`, the confidence-weighted repair objective)
can rank repair candidates by how plausible the corruption was.

The channel is also *invertible*: :func:`number_preimages` and
:func:`string_preimages` enumerate the plausible originals that the
channel could have corrupted into a given text, each with its channel
probability.  This is the knowledge the repair cascade's cheapest tier
runs on.

:func:`inject_value_errors` bypasses documents entirely and corrupts a
database instance directly: the repair-only experiments (benches E3-E5)
use it to control the *number* of errors precisely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.acquisition.documents import Cell, Document, Table
from repro.constraints.grounding import Cell as DbCell
from repro.relational.database import Database

#: Digit -> plausible OCR misreadings.
DIGIT_CONFUSIONS: Dict[str, str] = {
    "0": "86",
    "1": "74",
    "2": "57",
    "3": "85",
    "4": "91",
    "5": "62",
    "6": "58",
    "7": "12",
    "8": "03",
    "9": "47",
}

#: Character -> plausible OCR misreadings (lower-case letters).
CHAR_CONFUSIONS: Dict[str, str] = {
    "a": "eo",
    "c": "e",
    "e": "ca",
    "g": "q",
    "h": "n",
    "i": "l",
    "l": "i",
    "n": "h",
    "o": "ae",
    "q": "g",
    "u": "v",
    "v": "u",
}

_VOWELS = set("aeiou")

#: Channel operation priors: "substitute" is drawn twice as often as
#: "delete" or "duplicate" in :meth:`OcrChannel.corrupt_number`.
_NUMERIC_OP_PRIOR = {"substitute": 0.5, "delete": 0.25, "duplicate": 0.25}

#: String-edit priors inside :meth:`OcrChannel._one_string_edit`: the
#: "rn" -> "m" ligature fires with probability 0.5 when available;
#: otherwise substitutions outweigh vowel deletions 2:1.
_LIGATURE_PRIOR = 0.5
_STRING_OP_PRIOR = {"substitute": 2.0 / 3.0, "delete_vowel": 1.0 / 3.0}


@dataclass(frozen=True)
class CorruptionDetail:
    """One channel operation: what fired, where, and how likely it was.

    ``probability`` is the channel's probability of producing exactly
    this misreading of the original text (operation prior x position
    choice x replacement choice).  The weights are the channel's own
    sampling distribution, so ranking repair candidates by them is
    maximum-likelihood decoding of the channel.
    """

    operation: str  # "substitute" | "delete" | "duplicate" | "ligature" | "delete_vowel"
    position: int
    original: str  # the character(s) replaced ("" for pure deletions)
    replacement: str  # what they became ("" for pure deletions)
    probability: float


@dataclass(frozen=True)
class ErrorRecord:
    """One injected acquisition error.

    ``operations`` lists every channel operation that contributed to
    the corruption (numeric cells take exactly one; string cells may
    take up to three), and ``probability`` is their product -- the
    channel probability of this exact cell-level confusion.  Both
    default to "unknown" so records built by older call sites stay
    valid.
    """

    table_index: int
    row_index: int
    cell_index: int
    original: str
    corrupted: str
    kind: str  # "numeric" | "string"
    operations: PyTuple[CorruptionDetail, ...] = ()
    probability: float = 0.0


class OcrChannel:
    """A seeded noisy channel over document cell text."""

    def __init__(
        self,
        *,
        numeric_error_rate: float = 0.05,
        string_error_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= numeric_error_rate <= 1.0:
            raise ValueError("numeric_error_rate must be in [0, 1]")
        if not 0.0 <= string_error_rate <= 1.0:
            raise ValueError("string_error_rate must be in [0, 1]")
        self.numeric_error_rate = numeric_error_rate
        self.string_error_rate = string_error_rate
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Single-text corruption
    # ------------------------------------------------------------------

    def corrupt_number(self, text: str) -> str:
        """Apply one digit-level misreading; guaranteed to change *text*."""
        return self.corrupt_number_detailed(text)[0]

    def corrupt_number_detailed(
        self, text: str
    ) -> PyTuple[str, Optional[CorruptionDetail]]:
        """Like :meth:`corrupt_number`, also reporting what fired.

        The RNG call sequence is byte-identical to the historical
        :meth:`corrupt_number`, so seeded corpora are unchanged.
        """
        digits = [i for i, ch in enumerate(text) if ch.isdigit()]
        if not digits:
            return text, None
        operation = self._rng.choice(["substitute", "substitute", "delete", "duplicate"])
        position = self._rng.choice(digits)
        position_prob = 1.0 / len(digits)
        if operation == "substitute":
            original = text[position]
            replacement = self._rng.choice(DIGIT_CONFUSIONS[original])
            detail = CorruptionDetail(
                operation="substitute",
                position=position,
                original=original,
                replacement=replacement,
                probability=_NUMERIC_OP_PRIOR["substitute"]
                * position_prob
                / len(DIGIT_CONFUSIONS[original]),
            )
            return text[:position] + replacement + text[position + 1:], detail
        if operation == "delete" and len(digits) > 1:
            detail = CorruptionDetail(
                operation="delete",
                position=position,
                original=text[position],
                replacement="",
                probability=_NUMERIC_OP_PRIOR["delete"] * position_prob,
            )
            return text[:position] + text[position + 1:], detail
        # duplicate (also the fallback for single-digit deletes)
        detail = CorruptionDetail(
            operation="duplicate",
            position=position,
            original=text[position],
            replacement=text[position] * 2,
            probability=_NUMERIC_OP_PRIOR["duplicate"] * position_prob,
        )
        return text[:position] + text[position] + text[position:], detail

    def corrupt_string(self, text: str) -> str:
        """Apply 1-3 character-level misreadings to *text*."""
        return self.corrupt_string_detailed(text)[0]

    def corrupt_string_detailed(
        self, text: str
    ) -> PyTuple[str, List[CorruptionDetail]]:
        """Like :meth:`corrupt_string`, also reporting every edit.

        The RNG call sequence is byte-identical to the historical
        :meth:`corrupt_string`, so seeded corpora are unchanged.
        """
        if not text:
            return text, []
        details: List[CorruptionDetail] = []
        result = text
        n_edits = self._rng.randint(1, 3)
        for _ in range(n_edits):
            result, detail = self._one_string_edit(result)
            if detail is not None:
                details.append(detail)
        if result == text:
            # Ensure the channel actually corrupted something.
            if not text.strip():
                result, detail = self._one_string_edit(result + " ")
            else:
                result, detail = self._force_edit(result)
            if detail is not None:
                details.append(detail)
        return result, details

    def _one_string_edit(
        self, text: str
    ) -> PyTuple[str, Optional[CorruptionDetail]]:
        if "rn" in text and self._rng.random() < 0.5:
            index = text.index("rn")
            detail = CorruptionDetail(
                operation="ligature",
                position=index,
                original="rn",
                replacement="m",
                probability=_LIGATURE_PRIOR,
            )
            return text[:index] + "m" + text[index + 2:], detail
        ligature_miss = _LIGATURE_PRIOR if "rn" in text else 1.0
        operation = self._rng.choice(["substitute", "substitute", "delete_vowel"])
        if operation == "delete_vowel":
            vowels = [i for i, ch in enumerate(text) if ch.lower() in _VOWELS]
            if vowels:
                position = self._rng.choice(vowels)
                detail = CorruptionDetail(
                    operation="delete_vowel",
                    position=position,
                    original=text[position],
                    replacement="",
                    probability=ligature_miss
                    * _STRING_OP_PRIOR["delete_vowel"]
                    / len(vowels),
                )
                return text[:position] + text[position + 1:], detail
        positions = [i for i, ch in enumerate(text) if ch.lower() in CHAR_CONFUSIONS]
        if not positions:
            return text, None
        position = self._rng.choice(positions)
        original = text[position]
        replacement = self._rng.choice(CHAR_CONFUSIONS[original.lower()])
        if original.isupper():
            replacement = replacement.upper()
        detail = CorruptionDetail(
            operation="substitute",
            position=position,
            original=original,
            replacement=replacement,
            probability=ligature_miss
            * _STRING_OP_PRIOR["substitute"]
            / len(positions)
            / len(CHAR_CONFUSIONS[original.lower()]),
        )
        return text[:position] + replacement + text[position + 1:], detail

    def _force_edit(
        self, text: str
    ) -> PyTuple[str, Optional[CorruptionDetail]]:
        for position, character in enumerate(text):
            if character.lower() in CHAR_CONFUSIONS:
                replacement = CHAR_CONFUSIONS[character.lower()][0]
                if character.isupper():
                    replacement = replacement.upper()
                detail = CorruptionDetail(
                    operation="substitute",
                    position=position,
                    original=character,
                    replacement=replacement,
                    probability=1.0 / len(CHAR_CONFUSIONS[character.lower()]),
                )
                return text[:position] + replacement + text[position + 1:], detail
        # Nothing confusable: simulate a stray mark.
        detail = CorruptionDetail(
            operation="substitute",
            position=len(text),
            original="",
            replacement=".",
            probability=1.0,
        )
        return text + ".", detail

    # ------------------------------------------------------------------
    # Whole-document corruption
    # ------------------------------------------------------------------

    def corrupt_document(
        self, document: Document
    ) -> PyTuple[Document, List[ErrorRecord]]:
        """Pass every cell of every table through the channel."""
        errors: List[ErrorRecord] = []
        new_tables: List[Table] = []
        for table_index, table in enumerate(document.tables):

            def transform(row_index: int, cell_index: int, cell: Cell) -> str:
                text = cell.text
                is_numeric = _is_numeric(text)
                rate = self.numeric_error_rate if is_numeric else self.string_error_rate
                if rate <= 0.0 or self._rng.random() >= rate:
                    return text
                if is_numeric:
                    corrupted, detail = self.corrupt_number_detailed(text)
                    operations = (detail,) if detail is not None else ()
                else:
                    corrupted, details = self.corrupt_string_detailed(text)
                    operations = tuple(details)
                if corrupted != text:
                    probability = 1.0
                    for operation in operations:
                        probability *= operation.probability
                    errors.append(
                        ErrorRecord(
                            table_index=table_index,
                            row_index=row_index,
                            cell_index=cell_index,
                            original=text,
                            corrupted=corrupted,
                            kind="numeric" if is_numeric else "string",
                            operations=operations,
                            probability=probability if operations else 0.0,
                        )
                    )
                return corrupted

            new_tables.append(table.map_cells(transform))
        return document.with_tables(new_tables), errors


def _is_numeric(text: str) -> bool:
    stripped = text.strip().lstrip("-")
    return bool(stripped) and stripped.replace(".", "", 1).isdigit()


# ----------------------------------------------------------------------
# Channel inversion (pre-image enumeration)
# ----------------------------------------------------------------------

#: Misread digit -> digits it could have been misread *from*.
_DIGIT_INVERSE: Dict[str, str] = {}
for _original, _misreadings in DIGIT_CONFUSIONS.items():
    for _misread in _misreadings:
        _DIGIT_INVERSE[_misread] = _DIGIT_INVERSE.get(_misread, "") + _original

#: Misread character -> characters it could have been misread from.
_CHAR_INVERSE: Dict[str, str] = {}
for _original, _misreadings in CHAR_CONFUSIONS.items():
    for _misread in _misreadings:
        _CHAR_INVERSE[_misread] = _CHAR_INVERSE.get(_misread, "") + _original


def number_preimages(text: str) -> List[PyTuple[str, float]]:
    """Plausible originals the numeric channel could have turned into *text*.

    Inverts single substitutions (any digit of *text* may be the
    misreading of another digit under :data:`DIGIT_CONFUSIONS`), single
    duplications (an adjacent doubled digit may be a channel duplicate)
    and single deletions (any digit the channel might have dropped is
    re-inserted at every position), each weighted by the channel
    probability of producing *text* from that candidate.  The deletion
    inverse multiplies the candidate count roughly tenfold per
    position, which is still tiny for cell-sized numerals -- and the
    cascade's acceptance test (the candidate must clear every ground
    constraint touching the cell) discards nearly all of them, so
    enumerating them buys back the quarter of channel errors that are
    deletions at negligible cost.

    Returns ``[(candidate, probability), ...]`` sorted by descending
    probability (ties broken lexically for determinism); *text* itself
    is never a candidate.
    """
    digits = [i for i, ch in enumerate(text) if ch.isdigit()]
    if not digits:
        return []
    candidates: Dict[str, float] = {}
    # Substitution inverse: the channel picks a digit position uniformly
    # (substitution preserves length, so the candidate has the same
    # digit count as *text*), then a misreading uniformly.
    for i in digits:
        for original_digit in _DIGIT_INVERSE.get(text[i], ""):
            candidate = text[:i] + original_digit + text[i + 1:]
            probability = (
                _NUMERIC_OP_PRIOR["substitute"]
                / len(digits)
                / len(DIGIT_CONFUSIONS[original_digit])
            )
            candidates[candidate] = candidates.get(candidate, 0.0) + probability
    # Duplication inverse: drop one half of an adjacent doubled digit.
    for index, i in enumerate(digits[:-1]):
        j = digits[index + 1]
        if j == i + 1 and text[i] == text[j]:
            candidate = text[:i] + text[i + 1:]
            n_original_digits = len(digits) - 1
            probability = _NUMERIC_OP_PRIOR["duplicate"] / n_original_digits
            candidates[candidate] = candidates.get(candidate, 0.0) + probability
    # Deletion inverse: the channel only deletes when the original has
    # more than one digit, so the candidate (one digit longer) always
    # qualifies.  Insert every digit at every digit position (including
    # just past the last digit).
    insert_at = digits + [digits[-1] + 1]
    n_original_digits = len(digits) + 1
    for i in insert_at:
        for digit in "0123456789":
            candidate = text[:i] + digit + text[i:]
            probability = _NUMERIC_OP_PRIOR["delete"] / n_original_digits
            candidates[candidate] = candidates.get(candidate, 0.0) + probability
    candidates.pop(text, None)
    return sorted(candidates.items(), key=lambda item: (-item[1], item[0]))


def string_preimages(text: str) -> List[PyTuple[str, float]]:
    """Plausible originals the string channel could have produced *text* from.

    Inverts the ``rn -> m`` ligature collapse and single character
    substitutions under :data:`CHAR_CONFUSIONS`.  Vowel-deletion
    inverses are omitted for the same candidate-explosion reason as
    numeric deletions.  Returns ``[(candidate, probability), ...]``
    sorted by descending probability.
    """
    if not text:
        return []
    candidates: Dict[str, float] = {}
    for position, character in enumerate(text):
        if character.lower() == "m":
            replacement = "RN" if character.isupper() else "rn"
            candidate = text[:position] + replacement + text[position + 1:]
            candidates[candidate] = candidates.get(candidate, 0.0) + _LIGATURE_PRIOR
        confusable = [i for i, ch in enumerate(text) if ch.lower() in CHAR_CONFUSIONS]
        for original_char in _CHAR_INVERSE.get(character.lower(), ""):
            if character.isupper():
                original_char = original_char.upper()
            candidate = text[:position] + original_char + text[position + 1:]
            probability = (
                _STRING_OP_PRIOR["substitute"]
                / max(1, len(confusable))
                / len(CHAR_CONFUSIONS[original_char.lower()])
            )
            candidates[candidate] = candidates.get(candidate, 0.0) + probability
    candidates.pop(text, None)
    return sorted(candidates.items(), key=lambda item: (-item[1], item[0]))


def inject_value_errors(
    database: Database,
    n_errors: int,
    *,
    seed: int = 0,
    cells: Optional[Sequence[DbCell]] = None,
) -> PyTuple[Database, List[PyTuple[DbCell, float, float]]]:
    """Corrupt exactly *n_errors* distinct measure cells of a copy of
    *database* using digit-level misreadings.

    Returns ``(corrupted copy, [(cell, old, new), ...])``.  The repair
    benches use this to control the injected error count exactly.
    """
    rng = random.Random(seed)
    channel = OcrChannel(numeric_error_rate=1.0, seed=rng.randrange(1 << 30))
    available = list(cells) if cells is not None else database.measure_cells()
    if n_errors > len(available):
        raise ValueError(
            f"cannot inject {n_errors} errors into {len(available)} measure cells"
        )
    chosen = rng.sample(available, n_errors)
    corrupted = database.copy()
    injected: List[PyTuple[DbCell, float, float]] = []
    for cell in chosen:
        relation, tuple_id, attribute = cell
        old_value = corrupted.get_value(relation, tuple_id, attribute)
        new_text = channel.corrupt_number(str(int(old_value)))
        # Guard against pathological outputs (empty / sign-only text).
        attempts = 0
        while (not new_text.lstrip("-").isdigit() or int(new_text) == old_value):
            new_text = channel.corrupt_number(str(int(old_value)))
            attempts += 1
            if attempts > 20:
                new_text = str(int(old_value) + 1)
        new_value = int(new_text)
        corrupted.set_value(relation, tuple_id, attribute, new_value)
        injected.append((cell, float(old_value), float(new_value)))
    return corrupted, injected
