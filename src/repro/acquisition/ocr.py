"""The OCR error channel.

The paper's acquisition errors are *symbol recognition* errors: a
numerical value is misread (220 acquired as 250) or a string is
misspelled ("beginning cash" acquired as "bgnning cesh").  We model
the OCR tool as a seeded noisy channel over cell text:

- numeric cells suffer digit-level substitutions drawn from a
  confusion table of classic OCR digit confusions (1<->7, 0<->8,
  3<->8, 5<->6, 2<->5(via deformed glyphs), 4<->9), digit deletions
  or digit duplications;
- string cells suffer character substitutions (e<->c, o<->a(via
  degraded print), i<->l, n<->h, u<->v), vowel deletions and the
  famous "rn" -> "m" ligature collapse.

Each corruption is recorded as an :class:`ErrorRecord`, giving every
experiment exact ground truth about what was injected where.

:func:`inject_value_errors` bypasses documents entirely and corrupts a
database instance directly: the repair-only experiments (benches E3-E5)
use it to control the *number* of errors precisely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.acquisition.documents import Cell, Document, Table
from repro.constraints.grounding import Cell as DbCell
from repro.relational.database import Database

#: Digit -> plausible OCR misreadings.
DIGIT_CONFUSIONS: Dict[str, str] = {
    "0": "86",
    "1": "74",
    "2": "57",
    "3": "85",
    "4": "91",
    "5": "62",
    "6": "58",
    "7": "12",
    "8": "03",
    "9": "47",
}

#: Character -> plausible OCR misreadings (lower-case letters).
CHAR_CONFUSIONS: Dict[str, str] = {
    "a": "eo",
    "c": "e",
    "e": "ca",
    "g": "q",
    "h": "n",
    "i": "l",
    "l": "i",
    "n": "h",
    "o": "ae",
    "q": "g",
    "u": "v",
    "v": "u",
}

_VOWELS = set("aeiou")


@dataclass(frozen=True)
class ErrorRecord:
    """One injected acquisition error."""

    table_index: int
    row_index: int
    cell_index: int
    original: str
    corrupted: str
    kind: str  # "numeric" | "string"


class OcrChannel:
    """A seeded noisy channel over document cell text."""

    def __init__(
        self,
        *,
        numeric_error_rate: float = 0.05,
        string_error_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= numeric_error_rate <= 1.0:
            raise ValueError("numeric_error_rate must be in [0, 1]")
        if not 0.0 <= string_error_rate <= 1.0:
            raise ValueError("string_error_rate must be in [0, 1]")
        self.numeric_error_rate = numeric_error_rate
        self.string_error_rate = string_error_rate
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Single-text corruption
    # ------------------------------------------------------------------

    def corrupt_number(self, text: str) -> str:
        """Apply one digit-level misreading; guaranteed to change *text*."""
        digits = [i for i, ch in enumerate(text) if ch.isdigit()]
        if not digits:
            return text
        operation = self._rng.choice(["substitute", "substitute", "delete", "duplicate"])
        position = self._rng.choice(digits)
        if operation == "substitute":
            original = text[position]
            replacement = self._rng.choice(DIGIT_CONFUSIONS[original])
            return text[:position] + replacement + text[position + 1:]
        if operation == "delete" and len(digits) > 1:
            return text[:position] + text[position + 1:]
        # duplicate (also the fallback for single-digit deletes)
        return text[:position] + text[position] + text[position:]

    def corrupt_string(self, text: str) -> str:
        """Apply 1-3 character-level misreadings to *text*."""
        if not text:
            return text
        result = text
        n_edits = self._rng.randint(1, 3)
        for _ in range(n_edits):
            result = self._one_string_edit(result)
        if result == text:
            # Ensure the channel actually corrupted something.
            result = self._one_string_edit(result + " ") if not text.strip() else (
                self._force_edit(result)
            )
        return result

    def _one_string_edit(self, text: str) -> str:
        if "rn" in text and self._rng.random() < 0.5:
            index = text.index("rn")
            return text[:index] + "m" + text[index + 2:]
        operation = self._rng.choice(["substitute", "substitute", "delete_vowel"])
        if operation == "delete_vowel":
            vowels = [i for i, ch in enumerate(text) if ch.lower() in _VOWELS]
            if vowels:
                position = self._rng.choice(vowels)
                return text[:position] + text[position + 1:]
        positions = [i for i, ch in enumerate(text) if ch.lower() in CHAR_CONFUSIONS]
        if not positions:
            return text
        position = self._rng.choice(positions)
        original = text[position]
        replacement = self._rng.choice(CHAR_CONFUSIONS[original.lower()])
        if original.isupper():
            replacement = replacement.upper()
        return text[:position] + replacement + text[position + 1:]

    def _force_edit(self, text: str) -> str:
        for position, character in enumerate(text):
            if character.lower() in CHAR_CONFUSIONS:
                replacement = CHAR_CONFUSIONS[character.lower()][0]
                if character.isupper():
                    replacement = replacement.upper()
                return text[:position] + replacement + text[position + 1:]
        return text + "."  # nothing confusable: simulate a stray mark

    # ------------------------------------------------------------------
    # Whole-document corruption
    # ------------------------------------------------------------------

    def corrupt_document(
        self, document: Document
    ) -> PyTuple[Document, List[ErrorRecord]]:
        """Pass every cell of every table through the channel."""
        errors: List[ErrorRecord] = []
        new_tables: List[Table] = []
        for table_index, table in enumerate(document.tables):

            def transform(row_index: int, cell_index: int, cell: Cell) -> str:
                text = cell.text
                is_numeric = _is_numeric(text)
                rate = self.numeric_error_rate if is_numeric else self.string_error_rate
                if rate <= 0.0 or self._rng.random() >= rate:
                    return text
                corrupted = (
                    self.corrupt_number(text) if is_numeric else self.corrupt_string(text)
                )
                if corrupted != text:
                    errors.append(
                        ErrorRecord(
                            table_index=table_index,
                            row_index=row_index,
                            cell_index=cell_index,
                            original=text,
                            corrupted=corrupted,
                            kind="numeric" if is_numeric else "string",
                        )
                    )
                return corrupted

            new_tables.append(table.map_cells(transform))
        return document.with_tables(new_tables), errors


def _is_numeric(text: str) -> bool:
    stripped = text.strip().lstrip("-")
    return bool(stripped) and stripped.replace(".", "", 1).isdigit()


def inject_value_errors(
    database: Database,
    n_errors: int,
    *,
    seed: int = 0,
    cells: Optional[Sequence[DbCell]] = None,
) -> PyTuple[Database, List[PyTuple[DbCell, float, float]]]:
    """Corrupt exactly *n_errors* distinct measure cells of a copy of
    *database* using digit-level misreadings.

    Returns ``(corrupted copy, [(cell, old, new), ...])``.  The repair
    benches use this to control the injected error count exactly.
    """
    rng = random.Random(seed)
    channel = OcrChannel(numeric_error_rate=1.0, seed=rng.randrange(1 << 30))
    available = list(cells) if cells is not None else database.measure_cells()
    if n_errors > len(available):
        raise ValueError(
            f"cannot inject {n_errors} errors into {len(available)} measure cells"
        )
    chosen = rng.sample(available, n_errors)
    corrupted = database.copy()
    injected: List[PyTuple[DbCell, float, float]] = []
    for cell in chosen:
        relation, tuple_id, attribute = cell
        old_value = corrupted.get_value(relation, tuple_id, attribute)
        new_text = channel.corrupt_number(str(int(old_value)))
        # Guard against pathological outputs (empty / sign-only text).
        attempts = 0
        while (not new_text.lstrip("-").isdigit() or int(new_text) == old_value):
            new_text = channel.corrupt_number(str(int(old_value)))
            attempts += 1
            if attempts > 20:
                new_text = str(int(old_value) + 1)
        new_value = int(new_text)
        corrupted.set_value(relation, tuple_id, attribute, new_value)
        injected.append((cell, float(old_value), float(new_value)))
    return corrupted, injected
