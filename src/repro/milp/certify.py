"""Exact-arithmetic certification and the numerics degradation ladder.

The sparse revised simplex, the cut separators, and the warm-started
node LPs (PR 6) are exactly the machinery where floating-point drift
can silently produce a *wrong* repair: a GMI cut derived from a noisy
tableau row can shave off the true optimum, a stale eta-file basis can
declare an infeasible incumbent feasible.  DART's contract is a
*card-minimal* repair, and a minimality claim is only worth anything
if the answer is exact — so every answer re-verifies itself here, in
:mod:`fractions` rational arithmetic, against the **original** model
(pre-presolve, pre-cut, pre-warm-start).  A bug anywhere in the
lowering / presolve / cut / search stack then cannot escape as a
silently wrong repair: it surfaces as a failed certificate.

Two layers of defence:

- :func:`certify_solution` replays an incumbent against every row,
  bound, and integrality requirement of the :class:`MILPModel` in
  ``Fraction`` arithmetic (``Fraction(float)`` is exact), and
  re-derives the objective.
- :func:`certify_repair` / :func:`certify_database` independently
  re-check the *document*: the repaired cell values against the
  paper-level ground constraints, pins, and integer-typed cells.  This
  layer does not trust the MILP translation either — a bug in the
  lowering itself is caught here.

When certification fails, :class:`NumericsGovernor` steps down a
declared degradation ladder — fancy pricing → Dantzig → Bland,
cuts on → cuts off, sparse core → dense tableau, and finally the
independent scipy/HiGHS backend — re-solving with the suspect
artifact disabled instead of raising.  Only a fully exhausted ladder
raises (:class:`repro.diagnostics.NumericInstabilityError`).

Tolerances are *scale-relative*: a row is accepted when::

    violation <= feas_tol * (1 + |rhs| + sum|a_ij| + sum|a_ij * x_j|)

The ``sum|a_ij|`` term covers the up-to-``int_tol`` snap applied to
each integral variable; the ``sum|a_ij * x_j|`` term covers honest
accumulation noise in the floats the solver handed back.  All the
comparisons themselves are exact rational arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.milp.model import MILPModel, Sense, Solution

#: Default certification tolerances, matched to the solvers' own
#: 1e-6-flavoured feasibility / integrality tolerances.
CERT_FEAS_TOL = Fraction(1, 10**6)
CERT_INT_TOL = Fraction(1, 10**6)

#: The maximum number of failure messages kept on a certificate.
_MAX_FAILURES = 8

#: Ladder steps in order; each entry is ``(name, option_overrides)``.
#: Overrides accumulate down the ladder: by the time the cuts are
#: disabled the pricing has already been pinned to Bland's rule.
_PRICING_LADDER: Tuple[Tuple[str, str], ...] = (
    ("pricing:dantzig", "dantzig"),
    ("pricing:bland", "bland"),
)

#: Options meaningful only to the branch-and-bound backends; stripped
#: when the ladder falls all the way back to the scipy/HiGHS backend.
_BNB_ONLY_OPTIONS = frozenset(
    {
        "max_nodes",
        "gap_tolerance",
        "presolve",
        "warm_start",
        "branching",
        "pricing",
        "incumbent",
        "sparse",
        "cuts",
    }
)


@dataclass
class Certificate:
    """The outcome of one exact-arithmetic verification pass.

    ``level`` says what was verified: ``"milp"`` (solver incumbent vs
    the original model), ``"document"`` (repaired cells vs the ground
    constraints via the translation), ``"database"`` (a finished
    database vs ground constraints, used by the cascade), or
    ``"not-applicable"`` (nothing to verify — e.g. an INFEASIBLE
    verdict carries no incumbent).  ``checks`` counts individual facts
    verified; ``failures`` holds human-readable descriptions of the
    first few violations.  ``objective_exact`` is the re-derived
    objective as an exact rational string (``"7"``, ``"3/2"``).
    """

    certified: bool
    level: str
    checks: int = 0
    failures: List[str] = field(default_factory=list)
    objective_exact: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "certified": self.certified,
            "level": self.level,
            "checks": self.checks,
            "failures": list(self.failures),
            "objective_exact": self.objective_exact,
        }

    def __str__(self) -> str:
        verdict = "certified" if self.certified else "REJECTED"
        detail = f"; {self.failures[0]}" if self.failures else ""
        return f"{verdict} ({self.level}, {self.checks} check(s){detail})"


def _frac(value: object) -> Fraction:
    """Exact rational image of a float/int (``Fraction(float)`` is exact)."""
    return Fraction(value)  # type: ignore[arg-type]


def _nearest_int(value: Fraction) -> int:
    """Round half away from zero (matches ``round()`` on .5 floats closely
    enough for snap purposes: the snapped value only has to be *an*
    integer within ``int_tol``)."""
    floor = value.numerator // value.denominator
    return int(floor) if value - floor < Fraction(1, 2) else int(floor) + 1


def _row_tolerance(
    feas_tol: Fraction,
    rhs: Fraction,
    terms: Iterable[Tuple[Fraction, Fraction]],
) -> Fraction:
    """Scale-relative acceptance slack for one row (see module docstring)."""
    scale = Fraction(1) + abs(rhs)
    for coefficient, value in terms:
        scale += abs(coefficient) + abs(coefficient * value)
    return feas_tol * scale


def certify_solution(
    model: MILPModel,
    solution: Solution,
    *,
    feas_tol: Fraction = CERT_FEAS_TOL,
    int_tol: Fraction = CERT_INT_TOL,
) -> Certificate:
    """Replay *solution* against the original *model* in rationals.

    Verifies, for every variable and every constraint of the model as
    the caller built it (before presolve, cuts, or any backend saw
    it): integrality of integer/binary variables (values are snapped
    to the nearest integer when within ``int_tol``), variable bounds,
    row feasibility under a scale-relative tolerance, and the reported
    objective value.  Solutions without a usable incumbent
    (INFEASIBLE, UNBOUNDED, budget-expired without an incumbent) have
    nothing to verify and certify trivially at level
    ``"not-applicable"``.
    """
    if not solution.is_usable:
        return Certificate(certified=True, level="not-applicable")

    failures: List[str] = []
    checks = 0

    def fail(message: str) -> None:
        if len(failures) < _MAX_FAILURES:
            failures.append(message)

    values: Dict[int, Fraction] = {}
    for variable in model.variables:
        checks += 1
        raw = solution.values.get(variable.name)
        if raw is None:
            fail(f"variable {variable.name!r} missing from the solution")
            values[variable.index] = Fraction(0)
            continue
        value = _frac(raw)
        if variable.var_type.is_integral:
            nearest = _nearest_int(value)
            if abs(value - nearest) > int_tol:
                fail(
                    f"integer variable {variable.name!r} = {float(value)!r} "
                    f"is {float(abs(value - nearest)):.3e} from integral"
                )
            else:
                value = Fraction(nearest)
        lower, upper = variable.lower, variable.upper
        bound_tol = feas_tol * (Fraction(1) + abs(value))
        if lower != float("-inf") and value < _frac(lower) - bound_tol:
            fail(f"variable {variable.name!r} below lower bound {lower}")
        if upper != float("inf") and value > _frac(upper) + bound_tol:
            fail(f"variable {variable.name!r} above upper bound {upper}")
        values[variable.index] = value

    for constraint in model.constraints:
        checks += 1
        terms = [
            (_frac(coefficient), values[index])
            for index, coefficient in constraint.expr.coefficients.items()
        ]
        lhs = _frac(constraint.expr.constant)
        for coefficient, value in terms:
            lhs += coefficient * value
        rhs = _frac(constraint.rhs)
        tolerance = _row_tolerance(feas_tol, rhs, terms)
        if constraint.sense is Sense.LE:
            bad = lhs > rhs + tolerance
        elif constraint.sense is Sense.GE:
            bad = lhs < rhs - tolerance
        else:
            bad = abs(lhs - rhs) > tolerance
        if bad:
            name = constraint.name or "<unnamed>"
            fail(
                f"row {name!r} violated: lhs={float(lhs)!r} "
                f"{constraint.sense.value} rhs={float(rhs)!r}"
            )

    objective = _frac(model.objective.constant)
    obj_terms = []
    for index, coefficient in model.objective.coefficients.items():
        term = (_frac(coefficient), values[index])
        obj_terms.append(term)
        objective += term[0] * term[1]
    if solution.objective is not None:
        checks += 1
        tolerance = _row_tolerance(feas_tol, objective, obj_terms)
        if abs(objective - _frac(solution.objective)) > tolerance:
            fail(
                f"objective mismatch: reported {solution.objective!r}, "
                f"exact recompute {float(objective)!r}"
            )

    return Certificate(
        certified=not failures,
        level="milp",
        checks=checks,
        failures=failures,
        objective_exact=str(objective),
    )


def _certify_grounds(
    grounds: Sequence[object],
    cell_values: Dict[Tuple[str, int, str], Fraction],
    *,
    feas_tol: Fraction,
    failures: List[str],
) -> int:
    """Check every ground constraint over exact *cell_values*; returns
    the number of rows checked, appending failures in place."""
    # Imported here: repro.constraints imports sit above repro.milp in
    # the layering and a module-level import would be cyclic.
    from repro.constraints.constraint import Relop

    checks = 0
    for ground in grounds:
        checks += 1
        terms = []
        lhs = _frac(ground.constant)
        for cell, coefficient in ground.coefficients.items():
            term = (_frac(coefficient), cell_values[cell])
            terms.append(term)
            lhs += term[0] * term[1]
        rhs = _frac(ground.rhs)
        tolerance = _row_tolerance(feas_tol, rhs, terms)
        if ground.relop == Relop.LE:
            bad = lhs > rhs + tolerance
        elif ground.relop == Relop.GE:
            bad = lhs < rhs - tolerance
        else:
            bad = abs(lhs - rhs) > tolerance
        if bad and len(failures) < _MAX_FAILURES:
            failures.append(
                f"ground constraint {ground.source!r} violated: "
                f"lhs={float(lhs)!r} {ground.relop} rhs={float(rhs)!r}"
            )
    return checks


def certify_repair(
    translation: object,
    repair: object,
    *,
    feas_tol: Fraction = CERT_FEAS_TOL,
) -> Certificate:
    """Document-level certificate: the repaired cells vs the grounds.

    Takes the :class:`~repro.repair.translation.MILPTranslation` (for
    the original cell values, ground constraints, pins, and integer
    typing) and the extracted :class:`~repro.repair.updates.Repair`,
    applies the repair over exact rational images of the original
    values, and verifies every paper-level ground constraint, pin, and
    integer-typed cell.  This is deliberately independent of
    :func:`certify_solution`: it would catch a bug in the MILP
    translation itself.
    """
    failures: List[str] = []
    checks = 0

    cell_values: Dict[Tuple[str, int, str], Fraction] = {
        cell: _frac(value)
        for cell, value in zip(translation.cells, translation.values)
    }
    integral = {
        cell: flag
        for cell, flag in zip(translation.cells, translation.integer_cells)
    }
    for update in repair.updates:
        cell = update.cell
        value = _frac(update.new_value)
        cell_values[cell] = value
        checks += 1
        if integral.get(cell) and value.denominator != 1:
            if len(failures) < _MAX_FAILURES:
                failures.append(
                    f"integer cell {cell!r} repaired to non-integer "
                    f"{update.new_value!r}"
                )

    for cell, pinned in translation.pins.items():
        checks += 1
        if cell in cell_values and cell_values[cell] != _frac(pinned):
            if len(failures) < _MAX_FAILURES:
                failures.append(
                    f"pin on {cell!r} not preserved: "
                    f"{float(cell_values[cell])!r} != {pinned!r}"
                )

    checks += _certify_grounds(
        translation.grounds, cell_values, feas_tol=feas_tol, failures=failures
    )
    return Certificate(
        certified=not failures,
        level="document",
        checks=checks,
        failures=failures,
    )


def certify_database(
    grounds: Sequence[object],
    database: object,
    *,
    feas_tol: Fraction = CERT_FEAS_TOL,
) -> Certificate:
    """Certify a finished database against ground constraints.

    Used by the cascade (whose tiers mutate a working database rather
    than extracting a single MILP repair) for the final exactness
    gate.  Every cell mentioned by any ground constraint is read back
    from *database* and each ground row verified in rationals.
    """
    failures: List[str] = []
    cell_values: Dict[Tuple[str, int, str], Fraction] = {}
    for ground in grounds:
        for cell in ground.coefficients:
            if cell not in cell_values:
                relation, tuple_id, attribute = cell
                cell_values[cell] = _frac(
                    float(database.get_value(relation, tuple_id, attribute))
                )
    checks = _certify_grounds(
        grounds, cell_values, feas_tol=feas_tol, failures=failures
    )
    return Certificate(
        certified=not failures,
        level="database",
        checks=checks,
        failures=failures,
    )


# ----------------------------------------------------------------------
# Cut admission: exact witness replay
# ----------------------------------------------------------------------


def cut_excludes_point(
    coefficients: Iterable[Tuple[int, float]],
    rhs: float,
    point: Sequence[float],
    *,
    tol: Fraction = CERT_FEAS_TOL,
) -> bool:
    """Exact test: does the ``<=`` cut exclude integer *point*?

    Replayed in rationals so tableau noise in the cut cannot hide a
    violation.  Used at cut admission: a separated GMI/cover row that
    excludes a known integer-feasible witness (the incumbent) is
    provably invalid and must be rejected — cuts may only remove
    fractional points.
    """
    lhs = Fraction(0)
    scale = Fraction(1) + abs(_frac(rhs))
    for index, coefficient in coefficients:
        c = _frac(coefficient)
        v = _frac(float(point[index]))
        lhs += c * v
        scale += abs(c * v)
    return lhs > _frac(rhs) + tol * scale


# ----------------------------------------------------------------------
# The degradation ladder
# ----------------------------------------------------------------------


class NumericsGovernor:
    """The declared numerics degradation ladder for one solve.

    Yields ``(step_name, backend, options)`` triples, starting from
    the solve exactly as requested and then disabling one numerical
    risk at a time, cumulatively:

    ========================  ================================================
    step                      what is disabled
    ========================  ================================================
    ``as-requested``          nothing — the solve as configured
    ``pricing:dantzig``       steepest-edge pricing (textbook Dantzig)
    ``pricing:bland``         Dantzig pricing (Bland's anti-cycling rule)
    ``cuts:off``              GMI/cover cutting planes
    ``sparse:off``            the sparse revised simplex / eta files
                              (dense tableau, full refactorizations)
    ``backend:scipy``         our solver entirely (independent HiGHS)
    ========================  ================================================

    Steps that do not apply to the requested backend are skipped: the
    pricing/cut/sparse rungs only exist for the branch-and-bound
    backends, and a solve already running on ``scipy`` has an empty
    ladder (it *is* the last resort).  The governor is consumed by
    :func:`repro.milp.solver.solve_with_stats` under ``certify=True``,
    which re-solves down the ladder until a rung's answer passes
    :func:`certify_solution`.
    """

    def __init__(self, backend: str, options: Dict[str, object]) -> None:
        self.backend = backend
        self.options = dict(options)
        self.taken: List[str] = []

    def steps(self):
        yield "as-requested", self.backend, dict(self.options)
        current = dict(self.options)
        if self.backend in ("bnb", "bnb-simplex"):
            if self.backend == "bnb-simplex":
                for name, rule in _PRICING_LADDER:
                    if current.get("pricing", "dantzig") != rule:
                        current = {**current, "pricing": rule}
                        yield name, self.backend, dict(current)
            if current.get("cuts", True):
                current = {**current, "cuts": False}
                yield "cuts:off", self.backend, dict(current)
            if current.get("sparse", True):
                current = {**current, "sparse": False}
                yield "sparse:off", self.backend, dict(current)
        if self.backend != "scipy":
            scipy_options = {
                key: value
                for key, value in current.items()
                if key not in _BNB_ONLY_OPTIONS
            }
            yield "backend:scipy", "scipy", scipy_options

    def ladder(self) -> List[str]:
        """The step names this governor would walk, in order."""
        return [name for name, _backend, _options in self.steps()]
