"""Cutting planes over the sparse MILP core.

Two cut families, both separated from LP relaxation optima and both
expressed as ``<=`` rows in the *structural* variable space so they
append directly onto :class:`~repro.milp.sparse.SparseArrays`:

**Gomory mixed-integer (GMI) cuts** read fractional rows straight out
of the revised simplex basis (:meth:`RevisedSimplex.tableau_row`).
For a basic integer variable with fractional value ``b`` and tableau
row ``x_B + sum alpha_j x_j``, nonbasic variables are shifted to their
active bound (``t_j = x_j - l_j`` at lower, ``u_j - x_j`` at upper) and
the standard GMI coefficients applied::

    integer t_j:     f_j           if f_j <= f0 else f0 (1-f_j)/(1-f0)
    continuous t_j:  abar_j        if abar_j >= 0 else f0 (-abar_j)/(1-f0)

with ``f0 = frac(b)``.  Row slacks picked up along the way are
substituted back through their defining rows, so the emitted cut only
mentions structural columns.  Cuts derived at the *root* bound box are
globally valid; cuts derived under branching bounds are valid only in
that subtree and are stored in the :class:`CutPool` keyed by the
node's fixed-variable set.

**Cover cuts** target the big-M link rows that presolve already
tightens: each ``<=`` row is projected onto its binary support (other
columns are relaxed to their worst-case bound contribution, negative
binary coefficients are complemented away), and a greedy
most-fractional cover ``C`` with ``sum a_j > rhs`` yields
``sum_{j in C} x_j <= |C| - 1`` when the LP point violates it.

The **root cut loop** (:func:`root_cut_loop`) alternates separation
and re-solves until no violated cut is found (or the round/count caps
hit), returning the extended arrays shared by the whole search tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.milp.revised import (
    AT_LOWER,
    AT_UPPER,
    BASIC,
    IS_FREE,
    PRICING_DANTZIG,
    RevisedSimplex,
)
from repro.milp.simplex import LPResult
from repro.milp.sparse import SparseArrays

INF = math.inf

#: Only separate GMI cuts from rows at least this fractional.
GOMORY_MIN_FRACTION = 0.01
#: A cut must be violated by at least this much to be kept.
VIOLATION_TOL = 1e-6
#: Reject cuts whose coefficient dynamic range exceeds this.
MAX_DYNAMISM = 1e7
#: Stricter dynamism cap for GMI cuts.  Their coefficients come out of
#: a factorized tableau row: on big-M models the row mixes O(1) entries
#: with entries of magnitude ``big_m * machine_eps`` that are pure
#: floating-point noise, and the GMI formula happily turns that noise
#: into a (slightly invalid) cut.  A wide coefficient spread is the
#: reliable symptom, so GMI cuts are held to a much tighter range than
#: the combinatorial (exact +/-1) cover cuts.
GOMORY_MAX_DYNAMISM = 1e4
#: Coefficients below this are absorbed into the RHS (bounds permitting).
DROP_TOL = 1e-9
#: Coefficients below this fraction of the cut's largest coefficient
#: are likewise absorbed -- they are below the noise floor of the
#: tableau arithmetic that produced the cut.
RELATIVE_DROP = 1e-6

#: Default caps for the root loop.
MAX_ROUNDS = 8
MAX_CUTS_PER_ROUND = 20


@dataclass(frozen=True)
class Cut:
    """One valid inequality ``sum coefficients . x <= rhs``."""

    coefficients: Tuple[Tuple[int, float], ...]  # sorted (index, coeff)
    rhs: float
    family: str  # "gomory" | "cover"

    def as_row_dict(self) -> Dict[int, float]:
        return dict(self.coefficients)

    def violation(self, x: np.ndarray) -> float:
        lhs = sum(c * x[j] for j, c in self.coefficients)
        return lhs - self.rhs

    def signature(self) -> Tuple:
        """Dedup key: coefficients and RHS rounded to 9 places."""
        return (
            tuple((j, round(c, 9)) for j, c in self.coefficients),
            round(self.rhs, 9),
        )


def _make_cut(
    coefficients: Dict[int, float],
    rhs: float,
    family: str,
    lower: np.ndarray,
    upper: np.ndarray,
) -> Optional[Cut]:
    """Clean up a raw ``<=`` inequality into a :class:`Cut`.

    Near-zero coefficients are absorbed into the RHS (relaxing by the
    worst-case bound contribution keeps the cut valid); cuts with an
    unbounded tiny-coefficient column, an empty support, or extreme
    coefficient dynamism are rejected.
    """
    largest = max((abs(c) for c in coefficients.values()), default=0.0)
    drop_below = max(DROP_TOL, RELATIVE_DROP * largest)
    kept: Dict[int, float] = {}
    adjusted_rhs = rhs
    for j, c in coefficients.items():
        if abs(c) <= drop_below:
            if c == 0.0:
                continue
            # Dropping c*x_j from the LHS stays valid iff the RHS is
            # relaxed by max(c*x_j) over the box.
            worst = c * (upper[j] if c > 0.0 else lower[j])
            if not np.isfinite(worst):
                return None
            adjusted_rhs -= worst
            continue
        kept[j] = c
    if not kept:
        return None
    magnitudes = [abs(c) for c in kept.values()]
    limit = GOMORY_MAX_DYNAMISM if family == "gomory" else MAX_DYNAMISM
    if max(magnitudes) / min(magnitudes) > limit:
        return None
    return Cut(
        coefficients=tuple(sorted(kept.items())),
        rhs=float(adjusted_rhs),
        family=family,
    )


# ----------------------------------------------------------------------
# Gomory mixed-integer cuts
# ----------------------------------------------------------------------


def gomory_cuts(
    engine: RevisedSimplex,
    *,
    max_cuts: int = MAX_CUTS_PER_ROUND,
    int_tol: float = 1e-6,
) -> List[Cut]:
    """Derive GMI cuts from the engine's current optimal basis."""
    arrays = engine.arrays
    n, m, m_ub = engine.n, engine.m, engine.m_ub
    integral = np.zeros(n, dtype=bool)
    integral[list(arrays.integral)] = True
    lo, hi = engine.lo, engine.hi
    status = engine.status

    # Integer columns only qualify for the integer GMI coefficient when
    # their bounds are integral (guaranteed post-presolve; checked
    # anyway because validity depends on it).
    int_ok = np.zeros(n, dtype=bool)
    for j in np.flatnonzero(integral):
        lo_ok = not np.isfinite(lo[j]) or abs(lo[j] - round(lo[j])) <= int_tol
        hi_ok = not np.isfinite(hi[j]) or abs(hi[j] - round(hi[j])) <= int_tol
        int_ok[j] = lo_ok and hi_ok

    candidates: List[Tuple[float, int]] = []
    for row in range(m):
        basic = int(engine.basic[row])
        if basic >= n or not integral[basic]:
            continue
        value = float(engine.xB[row])
        fraction = value - math.floor(value)
        if min(fraction, 1.0 - fraction) < GOMORY_MIN_FRACTION:
            continue
        candidates.append((min(fraction, 1.0 - fraction), row))
    # Most fractional rows first: they give the deepest cuts.
    candidates.sort(reverse=True)

    cuts: List[Cut] = []
    for _, row in candidates:
        if len(cuts) >= max_cuts:
            break
        alpha, _rho = engine.tableau_row(row)
        b_bar = float(engine.xB[row])
        f0 = b_bar - math.floor(b_bar)

        # t-space pass: gamma_j over shifted nonbasics.
        terms: List[Tuple[int, float, float, float]] = []  # (j, gamma, delta, bound)
        valid = True
        for j in np.flatnonzero(np.abs(alpha) > DROP_TOL):
            j = int(j)
            code = status[j]
            if code == BASIC:
                continue
            if lo[j] >= hi[j]:  # fixed: t_j == 0 contributes nothing
                continue
            if code == IS_FREE:
                # A free nonbasic breaks the t_j >= 0 premise.
                valid = False
                break
            if code == AT_LOWER:
                delta, bound = 1.0, float(lo[j])
                a_bar = float(alpha[j])
            else:
                delta, bound = -1.0, float(hi[j])
                a_bar = -float(alpha[j])
            if j < n and int_ok[j]:
                f_j = a_bar - math.floor(a_bar)
                if f_j <= f0 + 1e-12:
                    gamma = f_j
                else:
                    gamma = f0 * (1.0 - f_j) / (1.0 - f0)
            else:
                if a_bar >= 0.0:
                    gamma = a_bar
                else:
                    gamma = f0 * (-a_bar) / (1.0 - f0)
            if gamma > DROP_TOL:
                terms.append((j, gamma, delta, bound))
        if not valid or not terms:
            continue

        # Back-substitute to structural space:
        #   sum gamma_j t_j >= f0,  t_j = delta_j (x_j - bound_j)
        coefficients: Dict[int, float] = {}
        rhs_ge = f0
        ok = True
        for j, gamma, delta, bound in terms:
            c = gamma * delta
            rhs_ge += c * bound
            if j < n:
                coefficients[j] = coefficients.get(j, 0.0) + c
            elif j < n + m_ub:
                # ub-row slack: s_i = b_i - A_i x.
                i = j - n
                cols, vals = arrays.a_ub.row(i)
                for column, coefficient in zip(cols, vals):
                    coefficients[int(column)] = (
                        coefficients.get(int(column), 0.0) - c * float(coefficient)
                    )
                rhs_ge -= c * float(arrays.b_ub[i])
            else:
                # eq slacks and artificials are fixed -- filtered above.
                ok = False
                break
        if not ok:
            continue
        # >= form to <= form.
        cut = _make_cut(
            {j: -c for j, c in coefficients.items()},
            -rhs_ge,
            "gomory",
            lo[:n],
            hi[:n],
        )
        if cut is not None:
            cuts.append(cut)
    return cuts


# ----------------------------------------------------------------------
# Cover cuts
# ----------------------------------------------------------------------


def cover_cuts(
    arrays: SparseArrays,
    x: np.ndarray,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
    *,
    max_cuts: int = MAX_CUTS_PER_ROUND,
    max_row_nnz: int = 64,
) -> List[Cut]:
    """Greedy knapsack-cover separation over the ``<=`` rows.

    Non-binary columns in a row are relaxed to their worst-case bound
    contribution (how the big-M link rows become knapsacks on their
    binary indicators); negative binary coefficients are complemented.
    """
    lo = arrays.lower if lower is None else lower
    hi = arrays.upper if upper is None else upper
    integral = np.zeros(arrays.n, dtype=bool)
    integral[list(arrays.integral)] = True
    binary = integral & (lo == 0.0) & (hi == 1.0)

    cuts: List[Cut] = []
    for i in range(arrays.m_ub):
        if len(cuts) >= max_cuts:
            break
        cols, vals = arrays.a_ub.row(i)
        if cols.shape[0] == 0 or cols.shape[0] > max_row_nnz:
            continue
        rhs = float(arrays.b_ub[i])
        items: List[Tuple[int, float, bool]] = []  # (index, weight, complemented)
        usable = True
        has_binary = False
        for column, coefficient in zip(cols, vals):
            j = int(column)
            a = float(coefficient)
            if binary[j]:
                has_binary = True
                if a > 0.0:
                    items.append((j, a, False))
                else:
                    # a*x = a - a*(1-x): complement to weight -a > 0.
                    items.append((j, -a, True))
                    rhs -= a
            else:
                # Relax to the smallest possible contribution.
                best = a * (lo[j] if a > 0.0 else hi[j])
                if not np.isfinite(best):
                    usable = False
                    break
                rhs -= best
        if not usable or not has_binary or len(items) < 2:
            continue
        total = sum(weight for _, weight, _ in items)
        if total <= rhs + VIOLATION_TOL:
            continue  # no cover exists

        # Greedy cover: most-fractional-first (largest complemented LP
        # value), weight as tie-break.
        def tilde(item: Tuple[int, float, bool]) -> float:
            j, _, complemented = item
            value = float(x[j])
            return 1.0 - value if complemented else value

        ordered = sorted(items, key=lambda item: (-tilde(item), -item[1]))
        cover: List[Tuple[int, float, bool]] = []
        cover_weight = 0.0
        for item in ordered:
            cover.append(item)
            cover_weight += item[1]
            if cover_weight > rhs + VIOLATION_TOL:
                break
        if cover_weight <= rhs + VIOLATION_TOL:
            continue
        violation = sum(tilde(item) for item in cover) - (len(cover) - 1)
        if violation <= VIOLATION_TOL:
            continue

        coefficients: Dict[int, float] = {}
        cut_rhs = float(len(cover) - 1)
        for j, _, complemented in cover:
            if complemented:
                coefficients[j] = coefficients.get(j, 0.0) - 1.0
                cut_rhs -= 1.0
            else:
                coefficients[j] = coefficients.get(j, 0.0) + 1.0
        cut = _make_cut(coefficients, cut_rhs, "cover", lo, hi)
        if cut is not None:
            cuts.append(cut)
    return cuts


# ----------------------------------------------------------------------
# The cut pool
# ----------------------------------------------------------------------


#: A node's identity for cut scoping: the set of branching decisions
#: fixed on its path, as ``(index, side, value)`` entries.
FixedSet = FrozenSet[Tuple[int, str, float]]


class CutPool:
    """Cuts keyed by the branching context they are valid under.

    The empty key holds globally valid cuts (root GMI / cover).  A cut
    stored under key ``K`` may be applied at any node whose
    fixed-variable set is a superset of ``K`` -- exactly the subtree
    below the node that derived it.
    """

    def __init__(self) -> None:
        self._cuts: Dict[FixedSet, List[Cut]] = {}
        self._signatures: set = set()

    def add(self, key: FixedSet, cut: Cut) -> bool:
        signature = (key, cut.signature())
        if signature in self._signatures:
            return False
        self._signatures.add(signature)
        self._cuts.setdefault(key, []).append(cut)
        return True

    def cuts_for(self, fixed: FixedSet) -> List[Cut]:
        """Every pooled cut valid at a node with fixed set *fixed*."""
        out: List[Cut] = []
        for key, cuts in self._cuts.items():
            if key <= fixed:
                out.extend(cuts)
        return out

    def __len__(self) -> int:
        return sum(len(cuts) for cuts in self._cuts.values())


# ----------------------------------------------------------------------
# The root cut loop
# ----------------------------------------------------------------------


@dataclass
class RootCutResult:
    """Outcome of :func:`root_cut_loop`."""

    arrays: SparseArrays  # base arrays extended with the applied cuts
    lp: LPResult  # relaxation optimum of the extended arrays
    cuts: List[Cut] = field(default_factory=list)
    rounds: int = 0
    lp_iterations: int = 0
    gomory_count: int = 0
    cover_count: int = 0
    #: Cuts rejected at admission by the exact witness replay.
    rejected: int = 0


def cut_rejected_by_witness(
    cut: Cut, witnesses: Optional[Sequence[np.ndarray]]
) -> bool:
    """Exact admission gate: does *cut* exclude a known integer point?

    Each witness is an integer-feasible point of the model (in the
    cut's variable space).  A valid cut may only remove fractional
    points, so excluding a witness proves the cut wrong — the replay
    runs in rational arithmetic (:func:`repro.milp.certify.
    cut_excludes_point`) so the tableau noise that produced the bad
    cut cannot also hide it.  The test is one-sided: it never
    *validates* a cut, it only vetoes provably invalid ones, so a
    witness that is itself slightly off can at worst drop a valid cut
    (a performance loss, never a correctness loss).
    """
    if not witnesses:
        return False
    from repro.milp.certify import cut_excludes_point

    return any(
        cut_excludes_point(cut.coefficients, cut.rhs, witness)
        for witness in witnesses
    )


def root_cut_loop(
    arrays: SparseArrays,
    *,
    max_rounds: int = MAX_ROUNDS,
    max_cuts_per_round: int = MAX_CUTS_PER_ROUND,
    max_total_cuts: Optional[int] = None,
    pricing: str = PRICING_DANTZIG,
    max_iterations: int = 50_000,
    witnesses: Optional[Sequence[np.ndarray]] = None,
) -> RootCutResult:
    """Tighten the root relaxation by repeated separate-and-resolve.

    Returns the extended arrays (base + applied cut rows) and the final
    root LP.  When the first relaxation is already integral, infeasible
    or unbounded, the arrays come back untouched.  *witnesses* are
    integer-feasible points used to veto provably invalid cuts on
    admission (see :func:`cut_rejected_by_witness`).
    """
    if max_total_cuts is None:
        max_total_cuts = max(arrays.m_ub + arrays.m_eq, 32)
    result = RootCutResult(arrays=arrays, lp=LPResult(status="infeasible"))
    seen: set = set()
    for _round in range(max_rounds + 1):
        engine = RevisedSimplex(
            result.arrays, pricing=pricing, max_iterations=max_iterations
        )
        lp = engine.solve()
        result.lp = lp
        result.lp_iterations += lp.iterations
        if lp.status != "optimal" or _round == max_rounds:
            return result
        assert lp.x is not None
        if len(result.cuts) >= max_total_cuts:
            return result

        integral = list(arrays.integral)
        fractional = [
            j for j in integral if abs(lp.x[j] - round(lp.x[j])) > 1e-6
        ]
        if not fractional:
            return result  # relaxation already integral: nothing to cut

        fresh: List[Cut] = []
        budget = min(
            max_cuts_per_round, max_total_cuts - len(result.cuts)
        )
        for cut in gomory_cuts(engine, max_cuts=budget) + cover_cuts(
            result.arrays, lp.x, max_cuts=budget
        ):
            if cut.violation(lp.x) <= VIOLATION_TOL:
                continue
            signature = cut.signature()
            if signature in seen:
                continue
            seen.add(signature)
            if cut_rejected_by_witness(cut, witnesses):
                result.rejected += 1
                continue
            fresh.append(cut)
            if len(fresh) >= budget:
                break
        if not fresh:
            return result
        result.cuts.extend(fresh)
        result.gomory_count += sum(1 for c in fresh if c.family == "gomory")
        result.cover_count += sum(1 for c in fresh if c.family == "cover")
        result.rounds += 1
        result.arrays = result.arrays.with_extra_ub_rows(
            [cut.as_row_dict() for cut in fresh],
            [cut.rhs for cut in fresh],
        )
    return result
