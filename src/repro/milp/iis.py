"""Irreducible Infeasible Subsystem (IIS) extraction.

When the grounded repair MILP ``S*(AC)`` is infeasible the interesting
question is *which* constraints cannot hold together -- DART's operator
needs a conflict set small enough to read, not a 400-row model dump.
This module implements the classic **deletion filter**: starting from
the full (infeasible) constraint set, try dropping each row; if the
rest is still infeasible the row was not needed for the contradiction
and stays out, otherwise it is a proven member of the conflict and
stays in.  The invariant -- the working set is infeasible after every
step -- makes the final set an IIS: infeasible as a whole, feasible
after removing any single member.

Two accelerations keep the probe count far below ``n_rows``:

- **group prefilter**: callers pass batches of rows (e.g. the purely
  structural ``y``/link/abs rows of a repair translation) that can be
  probed -- and usually discarded -- in one shot;
- **presolve short-circuit**: each probe first runs
  :func:`~repro.milp.presolve.presolve_arrays`; its ``"infeasible"``
  proof (sound by construction) answers the probe without building an
  LP, and its implicated row is used to order the deletion filter so
  likely members are tested last (members are kept, so testing
  non-members first shrinks the model fastest).

Feasibility probes call :func:`repro.milp.solver.solve` directly and
never touch any :class:`~repro.milp.cache.SolveCache` -- probe models
are throwaway subsets and their verdicts must not pollute the cache.

Probes whose verdict is ambiguous (solver error, iteration limit,
per-probe deadline expiry) conservatively *keep* the row and clear
``proven_minimal``: the returned set is still infeasible (the
invariant never relied on the ambiguous probe) but may not be
irreducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diagnostics import SolveTimeoutError
from repro.milp.deadline import Deadline
from repro.milp.lowering import lower_model_sparse
from repro.milp.model import (
    Constraint,
    LinExpr,
    MILPModel,
    Sense,
    SolveStatus,
)
from repro.milp.presolve import presolve_sparse
from repro.milp.solver import DEFAULT_BACKEND, solve


class IISError(ValueError):
    """Raised when no IIS exists or the initial probe is inconclusive."""


@dataclass(frozen=True)
class IISMember:
    """One constraint in the conflict: index into ``model.constraints``."""

    index: int
    name: str

    def __str__(self) -> str:
        return self.name or f"row#{self.index}"


@dataclass
class IISResult:
    """A (usually irreducible) infeasible subsystem of a model.

    ``members`` is always infeasible as a whole.  ``proven_minimal``
    is True when every deletion probe returned a definite verdict, in
    which case dropping any single member leaves a feasible system.
    """

    members: List[IISMember] = field(default_factory=list)
    proven_minimal: bool = True
    probes: int = 0
    presolve_short_circuits: int = 0

    @property
    def names(self) -> List[str]:
        return [member.name for member in self.members]

    @property
    def indices(self) -> List[int]:
        return [member.index for member in self.members]

    def as_dict(self) -> Dict[str, object]:
        return {
            "members": [
                {"index": m.index, "name": m.name} for m in self.members
            ],
            "proven_minimal": self.proven_minimal,
            "probes": self.probes,
            "presolve_short_circuits": self.presolve_short_circuits,
        }

    def __str__(self) -> str:
        flag = "minimal" if self.proven_minimal else "not proven minimal"
        return (
            f"IIS({len(self.members)} constraints, {flag}, "
            f"{self.probes} probes)"
        )


def _clone_subsystem(model: MILPModel, keep: Sequence[int]) -> MILPModel:
    """A fresh model with all variables but only the *keep* constraints.

    The objective is zeroed: probes ask about feasibility only, and a
    constant objective lets presolve fix unconstrained columns freely.
    """
    sub = MILPModel(name=f"{model.name}/probe" if model.name else "probe")
    for variable in model.variables:
        sub.add_variable(
            variable.name, variable.var_type, variable.lower, variable.upper
        )
    for index in keep:
        source = model.constraints[index]
        sub.add_constraint(
            Constraint(
                LinExpr(dict(source.expr.coefficients), source.expr.constant),
                source.sense,
                source.rhs,
                source.name,
            )
        )
    return sub


def _lowered_row_to_member(
    model: MILPModel, keep: Sequence[int], row: Tuple[str, int]
) -> Optional[int]:
    """Map a presolve ``("ub"|"eq", i)`` row back to a kept-constraint index.

    Lowering appends LE/GE constraints (in model order) to the ub
    block and EQ constraints (in model order) to the eq block, so the
    i-th ub row is the i-th kept non-equality constraint.
    """
    family, position = row
    wanted = 0
    for index in keep:
        sense = model.constraints[index].sense
        is_eq = sense is Sense.EQ
        if (family == "eq") == is_eq:
            if wanted == position:
                return index
            wanted += 1
    return None


def _probe(
    model: MILPModel,
    keep: Sequence[int],
    backend: str,
    deadline: Deadline,
    result: IISResult,
) -> Tuple[Optional[bool], Optional[int]]:
    """Is the subsystem over *keep* feasible?

    Returns ``(verdict, implicated)`` where verdict is True
    (feasible), False (infeasible) or None (ambiguous), and
    ``implicated`` is the kept-constraint index presolve blamed for an
    infeasibility, when it named one.
    """
    sub = _clone_subsystem(model, keep)
    result.probes += 1
    # Probes run off the sparse lowering: deletion filtering re-lowers
    # the subsystem once per probe, and the CSR path skips the (m, n)
    # zero-fill that dominated small-probe lowering time.
    reduction, _ = presolve_sparse(lower_model_sparse(sub))
    if reduction.status == "infeasible":
        result.presolve_short_circuits += 1
        implicated = None
        if reduction.infeasible_row is not None:
            implicated = _lowered_row_to_member(
                model, keep, reduction.infeasible_row
            )
        return False, implicated
    if reduction.status == "solved":
        result.presolve_short_circuits += 1
        return True, None
    # "reduced": presolve could not decide; run a real solve.
    options = {}
    remaining = deadline.remaining()
    if remaining is not None:
        options["time_limit"] = remaining
    try:
        solution = solve(sub, backend=backend, **options)
    except SolveTimeoutError:
        return None, None
    if solution.status in (
        SolveStatus.OPTIMAL,
        SolveStatus.FEASIBLE_GAP,
        SolveStatus.UNBOUNDED,
    ):
        return True, None
    if solution.status is SolveStatus.INFEASIBLE:
        return False, None
    return None, None


def extract_iis(
    model: MILPModel,
    *,
    backend: str = DEFAULT_BACKEND,
    deadline: Optional[Deadline] = None,
    groups: Optional[Sequence[Sequence[int]]] = None,
) -> IISResult:
    """Extract an IIS from an infeasible *model* by deletion filtering.

    ``groups`` is an optional list of row-index batches to probe
    wholesale before the per-row filter (rows absent from every group
    are filtered individually); a group whose removal leaves the
    system infeasible is discarded in one probe.  Honors *deadline*
    cooperatively: expiry before the initial probe raises
    :class:`~repro.diagnostics.SolveTimeoutError`; expiry mid-filter
    returns the current (still infeasible) working set with
    ``proven_minimal=False``.

    Raises :class:`IISError` when the model is feasible (no IIS
    exists) or the initial probe cannot establish infeasibility.
    """
    deadline = deadline or Deadline(None)
    deadline.check("IIS extraction")
    result = IISResult()
    n_rows = len(model.constraints)
    working = list(range(n_rows))

    verdict, implicated = _probe(model, working, backend, deadline, result)
    if verdict is True:
        raise IISError("model is feasible; no IIS exists")
    if verdict is None:
        raise IISError(
            "could not establish infeasibility (probe solve was "
            "inconclusive); no IIS extracted"
        )

    # Group prefilter: drop whole batches that the contradiction does
    # not need.  Never drop the presolve-implicated row with its group.
    for group in groups or []:
        batch = {int(i) for i in group if 0 <= int(i) < n_rows} & set(working)
        if implicated is not None:
            batch.discard(implicated)
        if not batch:
            continue
        if deadline.expired:
            result.proven_minimal = False
            break
        candidate = [i for i in working if i not in batch]
        sub_verdict, sub_implicated = _probe(
            model, candidate, backend, deadline, result
        )
        if sub_verdict is False:
            working = candidate
            if sub_implicated is not None:
                implicated = sub_implicated
        elif sub_verdict is None:
            result.proven_minimal = False

    # Per-row deletion filter.  The presolve-implicated row is almost
    # certainly a member; testing it last keeps intermediate models
    # small (every confirmed member stays in all later probes).
    order = [i for i in working if i != implicated]
    if implicated is not None and implicated in working:
        order.append(implicated)
    members: List[int] = []
    pending = set(order)
    for row in order:
        pending.discard(row)
        if deadline.expired:
            # Invariant: members + pending (+ row) is still infeasible.
            members.extend([row, *sorted(pending)])
            result.proven_minimal = False
            break
        candidate = sorted(set(members) | pending)
        verdict, _ = _probe(model, candidate, backend, deadline, result)
        if verdict is False:
            continue  # contradiction survives without `row`: drop it
        if verdict is None:
            result.proven_minimal = False
        members.append(row)  # feasible (or unknown) without it: keep

    members.sort()
    result.members = [
        IISMember(index=i, name=model.constraints[i].name) for i in members
    ]
    return result
