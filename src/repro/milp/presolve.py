"""MILP presolve: shrink the lowered arrays before any LP is built.

The grounded repair instances ``S*(AC)`` carry a lot of exploitable
structure: ``y_i = z_i - v_i`` equality rows give every difference
variable finite implied bounds, the Big-M link rows
``+/-y_i - M d_i <= 0`` have coefficients wildly larger than the data
(tightenable once ``y``'s real range is known), and violated ground
equalities force touch-indicators to 1 outright.  This module applies
the classic reductions in a fixpoint loop:

- **bound propagation** from row activity bounds (and its special case,
  singleton rows, which become bounds and disappear);
- **integral bound rounding** (``ceil``/``floor`` of fractional bounds
  on integer variables);
- **fixing** of variables whose bounds have closed (including binaries
  forced by row activities), with substitution into every row;
- **empty and redundant row elimination** (a ``<=`` row whose maximum
  activity cannot exceed the RHS proves nothing);
- **big-M coefficient tightening** on binary columns: in a row
  ``a x_rest + a_j d <= b`` with ``a_j < 0`` and maximum rest-activity
  ``U``, any ``a_j < b - U <= 0`` can be raised to ``b - U`` without
  cutting a feasible point -- this is exactly what shrinks DART's link
  rows from the Big-M scale to the data scale;
- **cost-based fixing** of variables no surviving row mentions.

Everything here is sound for the *mixed-integer* problem: continuous
relaxation points may be cut (that is the point -- tighter LP bounds),
integer-feasible points never are.

:class:`PresolveResult` carries the reduced arrays plus the postsolve
map (kept columns + fixed values) to translate solutions back, and
:meth:`PresolveResult.reduce_point` projects a full-space point (e.g.
a heuristic incumbent) into the reduced space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.milp.lowering import DenseArrays

INF = math.inf

#: Feasibility tolerance (matches the simplex FEAS_TOL scale).
FEAS_TOL = 1e-7
#: Minimum improvement for a bound/coefficient change to count as
#: progress -- avoids fixpoint loops on epsilon-sized improvements.
TIGHTEN_TOL = 1e-6
#: Upper bound on fixpoint sweeps; DART instances settle in 2-4.
MAX_PASSES = 12


@dataclass
class PresolveStats:
    """Reduction counters, folded into ``Solution.stats`` downstream."""

    rows_dropped: int = 0
    vars_fixed: int = 0
    bounds_tightened: int = 0
    coeffs_tightened: int = 0
    passes: int = 0

    def as_solution_stats(self) -> Dict[str, float]:
        return {
            "presolve_rows_dropped": float(self.rows_dropped),
            "presolve_vars_fixed": float(self.vars_fixed),
            "presolve_bounds_tightened": float(self.bounds_tightened),
            "presolve_coeffs_tightened": float(self.coeffs_tightened),
        }


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve_arrays` plus the postsolve map.

    ``status`` is one of:

    - ``"reduced"`` -- ``arrays`` holds the (possibly smaller) problem
      over the ``kept`` original columns;
    - ``"solved"`` -- every variable was fixed; ``restore()`` yields
      the unique surviving point (callers should still verify it);
    - ``"infeasible"`` -- a contradiction was proven; no arrays.
      ``infeasible_row`` then names the lowered row whose reduction
      raised the contradiction, as ``("ub" | "eq", row index)`` into
      the *original* lowered arrays, when a specific row is to blame
      (bound-box contradictions have no single row and leave it
      ``None``).  IIS extraction uses it as an ordering hint.
    """

    status: str
    n_original: int
    kept: List[int] = field(default_factory=list)
    fixed: Dict[int, float] = field(default_factory=dict)
    stats: PresolveStats = field(default_factory=PresolveStats)
    arrays: Optional[DenseArrays] = None
    infeasible_row: Optional[Tuple[str, int]] = None

    def restore(self, x_reduced: Optional[Sequence[float]] = None) -> np.ndarray:
        """Lift a reduced-space point back to the original variables."""
        x = np.zeros(self.n_original)
        for index, value in self.fixed.items():
            x[index] = value
        if x_reduced is not None:
            for position, index in enumerate(self.kept):
                x[index] = float(x_reduced[position])
        return x

    def reduce_point(
        self, x_full: Sequence[float], tolerance: float = 1e-6
    ) -> Optional[np.ndarray]:
        """Project a full-space point into the reduced space.

        Returns ``None`` when the point contradicts a fixing (it then
        cannot seed the reduced search).
        """
        for index, value in self.fixed.items():
            if abs(float(x_full[index]) - value) > tolerance:
                return None
        return np.array([float(x_full[index]) for index in self.kept])


class _Infeasible(Exception):
    """Internal signal: a reduction proved the instance infeasible.

    ``row`` carries the implicated lowered row (``("ub"|"eq", index)``)
    when the contradiction surfaced while scanning a specific row.
    """

    def __init__(self, row: Optional[Tuple[str, int]] = None) -> None:
        super().__init__()
        self.row = row


def presolve_arrays(arrays: DenseArrays) -> PresolveResult:
    """Run the presolve fixpoint on *arrays* (which is left untouched)."""
    n = arrays.n
    costs = arrays.costs.astype(float).copy()
    a_ub = arrays.a_ub.astype(float).copy()
    b_ub = arrays.b_ub.astype(float).copy()
    a_eq = arrays.a_eq.astype(float).copy()
    b_eq = arrays.b_eq.astype(float).copy()
    lower = arrays.lower.astype(float).copy()
    upper = arrays.upper.astype(float).copy()
    integral = np.zeros(n, dtype=bool)
    integral[list(arrays.integral)] = True

    col_alive = np.ones(n, dtype=bool)
    ub_alive = np.ones(a_ub.shape[0], dtype=bool)
    eq_alive = np.ones(a_eq.shape[0], dtype=bool)
    fixed: Dict[int, float] = {}
    constant = float(arrays.objective_constant)
    stats = PresolveStats()

    def tol_for(value: float) -> float:
        return FEAS_TOL * (1.0 + abs(value))

    def is_binary(j: int) -> bool:
        return bool(integral[j]) and lower[j] >= -FEAS_TOL and upper[j] <= 1.0 + FEAS_TOL

    def fix_variable(j: int, value: float) -> None:
        nonlocal constant
        if integral[j]:
            rounded = float(round(value))
            if abs(rounded - value) > tol_for(value):
                raise _Infeasible  # integral variable pinned to a fraction
            value = rounded
        if value < lower[j] - tol_for(value) or value > upper[j] + tol_for(value):
            raise _Infeasible
        constant += costs[j] * value
        if value != 0.0:
            live_ub = ub_alive & (a_ub[:, j] != 0.0)
            if live_ub.any():
                b_ub[live_ub] -= a_ub[live_ub, j] * value
            live_eq = eq_alive & (a_eq[:, j] != 0.0)
            if live_eq.any():
                b_eq[live_eq] -= a_eq[live_eq, j] * value
        a_ub[:, j] = 0.0
        a_eq[:, j] = 0.0
        col_alive[j] = False
        fixed[j] = value
        stats.vars_fixed += 1

    def activity_bounds(
        row: np.ndarray, support: np.ndarray
    ) -> Tuple[float, float, Dict[int, float], Dict[int, float]]:
        """Activity range of ``row . x`` over the current bound box.

        Returns ``(min_act, max_act, mins, maxs)`` where ``mins[j]`` /
        ``maxs[j]`` are the per-column contributions *from the same
        bounds snapshot* as the totals -- propagation must subtract a
        contribution consistent with the total it subtracts from, even
        after an earlier column's bound was tightened mid-row.
        """
        min_act = 0.0
        max_act = 0.0
        mins: Dict[int, float] = {}
        maxs: Dict[int, float] = {}
        for j in support:
            a = float(row[j])
            # Plain Python floats: the callers' rest-of-row subtractions
            # may hit inf - inf, which is a quiet nan (caught by their
            # isfinite guards) rather than a numpy RuntimeWarning.
            if a > 0:
                contribution_min = a * float(lower[j])
                contribution_max = a * float(upper[j])
            else:
                contribution_min = a * float(upper[j])
                contribution_max = a * float(lower[j])
            mins[int(j)] = contribution_min
            maxs[int(j)] = contribution_max
            min_act += contribution_min
            max_act += contribution_max
        return min_act, max_act, mins, maxs

    def round_integral_bounds() -> bool:
        changed = False
        for j in np.flatnonzero(col_alive & integral):
            if lower[j] != -INF:
                rounded = float(math.ceil(lower[j] - FEAS_TOL))
                if rounded > lower[j] + TIGHTEN_TOL:
                    stats.bounds_tightened += 1
                    changed = True
                if rounded > lower[j]:
                    lower[j] = rounded
            if upper[j] != INF:
                rounded = float(math.floor(upper[j] + FEAS_TOL))
                if rounded < upper[j] - TIGHTEN_TOL:
                    stats.bounds_tightened += 1
                    changed = True
                if rounded < upper[j]:
                    upper[j] = rounded
        return changed

    def close_bounds() -> bool:
        changed = False
        for j in np.flatnonzero(col_alive):
            if lower[j] > upper[j] + FEAS_TOL:
                raise _Infeasible
            if upper[j] - lower[j] <= FEAS_TOL:
                fix_variable(j, 0.5 * (lower[j] + upper[j]))
                changed = True
        return changed

    def scan_ub_rows() -> bool:
        changed = False
        for i in np.flatnonzero(ub_alive):
            row = a_ub[i]
            b = float(b_ub[i])
            support = np.flatnonzero(row != 0.0)
            if support.size == 0:
                if b < -tol_for(b):
                    raise _Infeasible(("ub", int(i)))
                ub_alive[i] = False
                stats.rows_dropped += 1
                changed = True
                continue
            min_act, max_act, mins, maxs = activity_bounds(row, support)
            if min_act > b + tol_for(b):
                raise _Infeasible(("ub", int(i)))
            if max_act <= b + tol_for(b):
                # Redundant: satisfied by every point in the bound box.
                ub_alive[i] = False
                stats.rows_dropped += 1
                changed = True
                continue
            if support.size == 1:
                j = int(support[0])
                a = row[j]
                bound = b / a
                if a > 0:
                    if bound < upper[j] - TIGHTEN_TOL * (1.0 + abs(bound)):
                        upper[j] = bound
                        stats.bounds_tightened += 1
                else:
                    if bound > lower[j] + TIGHTEN_TOL * (1.0 + abs(bound)):
                        lower[j] = bound
                        stats.bounds_tightened += 1
                ub_alive[i] = False
                stats.rows_dropped += 1
                changed = True
                continue
            for j in support:
                a = row[j]
                rest_min = min_act - mins[int(j)]
                if not math.isfinite(rest_min):
                    continue
                implied = (b - rest_min) / a
                margin = TIGHTEN_TOL * (1.0 + abs(implied))
                if a > 0:
                    if implied < upper[j] - margin:
                        upper[j] = implied
                        stats.bounds_tightened += 1
                        changed = True
                else:
                    if implied > lower[j] + margin:
                        lower[j] = implied
                        stats.bounds_tightened += 1
                        changed = True
            # Binary-column work: forced values and big-M tightening.
            min_act, max_act, mins, maxs = activity_bounds(row, support)
            for j in support:
                if not is_binary(int(j)):
                    continue
                a = row[j]
                rest_min = min_act - mins[int(j)]
                rest_max = max_act - maxs[int(j)]
                if a > 0 and math.isfinite(rest_min) and rest_min + a > b + tol_for(b):
                    # Setting the binary would overshoot the row: force 0.
                    if upper[j] > FEAS_TOL:
                        upper[j] = 0.0
                        stats.bounds_tightened += 1
                        changed = True
                elif a < 0:
                    if math.isfinite(rest_min) and rest_min > b + tol_for(b):
                        # The row needs the binary's negative term: force 1.
                        if lower[j] < 1.0 - FEAS_TOL:
                            lower[j] = 1.0
                            stats.bounds_tightened += 1
                            changed = True
                    if math.isfinite(rest_max):
                        new_coefficient = b - rest_max
                        margin = TIGHTEN_TOL * (1.0 + abs(a))
                        if a + margin < new_coefficient <= 0.0:
                            # Big-M tightening: with the binary at 1 the
                            # row can never need more slack than b - U.
                            a_ub[i, j] = new_coefficient
                            stats.coeffs_tightened += 1
                            changed = True
        return changed

    def scan_eq_rows() -> bool:
        changed = False
        for i in np.flatnonzero(eq_alive):
            row = a_eq[i]
            b = float(b_eq[i])
            support = np.flatnonzero(row != 0.0)
            if support.size == 0:
                if abs(b) > tol_for(b):
                    raise _Infeasible(("eq", int(i)))
                eq_alive[i] = False
                stats.rows_dropped += 1
                changed = True
                continue
            min_act, max_act, mins, maxs = activity_bounds(row, support)
            if min_act > b + tol_for(b) or max_act < b - tol_for(b):
                raise _Infeasible(("eq", int(i)))
            if support.size == 1:
                j = int(support[0])
                try:
                    fix_variable(j, b / row[j])
                except _Infeasible as conflict:
                    if conflict.row is None:
                        conflict.row = ("eq", int(i))
                    raise
                eq_alive[i] = False
                stats.rows_dropped += 1
                changed = True
                continue
            for j in support:
                a = row[j]
                rest_min = min_act - mins[int(j)]
                rest_max = max_act - maxs[int(j)]
                # a x_j = b - rest  with  rest in [rest_min, rest_max].
                if math.isfinite(rest_min):
                    implied = (b - rest_min) / a
                    margin = TIGHTEN_TOL * (1.0 + abs(implied))
                    if a > 0:
                        if implied < upper[j] - margin:
                            upper[j] = implied
                            stats.bounds_tightened += 1
                            changed = True
                    else:
                        if implied > lower[j] + margin:
                            lower[j] = implied
                            stats.bounds_tightened += 1
                            changed = True
                if math.isfinite(rest_max):
                    implied = (b - rest_max) / a
                    margin = TIGHTEN_TOL * (1.0 + abs(implied))
                    if a > 0:
                        if implied > lower[j] + margin:
                            lower[j] = implied
                            stats.bounds_tightened += 1
                            changed = True
                    else:
                        if implied < upper[j] - margin:
                            upper[j] = implied
                            stats.bounds_tightened += 1
                            changed = True
        return changed

    def fix_unconstrained_columns() -> bool:
        changed = False
        live_ub_matrix = a_ub[ub_alive]
        live_eq_matrix = a_eq[eq_alive]
        for j in np.flatnonzero(col_alive):
            in_ub = live_ub_matrix.size and np.any(live_ub_matrix[:, j] != 0.0)
            in_eq = live_eq_matrix.size and np.any(live_eq_matrix[:, j] != 0.0)
            if in_ub or in_eq:
                continue

            # An unconstrained column sits at whichever bound its cost
            # prefers; integral bounds are rounded inward first (they
            # may have been tightened to a fraction later in the pass).
            def bound_value(side: str) -> float:
                if side == "lower":
                    value = lower[j]
                    if integral[j]:
                        value = float(math.ceil(value - FEAS_TOL))
                else:
                    value = upper[j]
                    if integral[j]:
                        value = float(math.floor(value + FEAS_TOL))
                if value < lower[j] - tol_for(value) or value > upper[j] + tol_for(value):
                    raise _Infeasible  # no integer point between the bounds
                return value

            c = costs[j]
            if c > 0 and lower[j] != -INF:
                fix_variable(j, bound_value("lower"))
                changed = True
            elif c < 0 and upper[j] != INF:
                fix_variable(j, bound_value("upper"))
                changed = True
            elif c == 0:
                if lower[j] != -INF:
                    fix_variable(j, bound_value("lower"))
                elif upper[j] != INF:
                    fix_variable(j, bound_value("upper"))
                else:
                    fix_variable(j, 0.0)
                changed = True
            # c != 0 with the improving direction unbounded: leave the
            # column so the LP reports unboundedness.
        return changed

    try:
        for pass_index in range(MAX_PASSES):
            stats.passes = pass_index + 1
            changed = round_integral_bounds()
            changed |= close_bounds()
            changed |= scan_ub_rows()
            changed |= scan_eq_rows()
            changed |= fix_unconstrained_columns()
            if not changed:
                break

        if not col_alive.any():
            # Fully fixed.  Any row still alive must now be empty;
            # verify its residual right-hand side.
            for i in np.flatnonzero(ub_alive):
                if b_ub[i] < -tol_for(b_ub[i]):
                    raise _Infeasible(("ub", int(i)))
            for i in np.flatnonzero(eq_alive):
                if abs(b_eq[i]) > tol_for(b_eq[i]):
                    raise _Infeasible(("eq", int(i)))
            return PresolveResult(
                status="solved", n_original=n, fixed=dict(fixed), stats=stats
            )
    except _Infeasible as conflict:
        return PresolveResult(
            status="infeasible", n_original=n, fixed=dict(fixed), stats=stats,
            infeasible_row=conflict.row,
        )

    kept = [int(j) for j in np.flatnonzero(col_alive)]
    position_of = {j: position for position, j in enumerate(kept)}
    kept_array = np.array(kept, dtype=int)
    reduced = DenseArrays(
        costs=costs[kept_array],
        a_ub=a_ub[np.flatnonzero(ub_alive)][:, kept_array]
        if ub_alive.any()
        else np.zeros((0, len(kept))),
        b_ub=b_ub[np.flatnonzero(ub_alive)] if ub_alive.any() else np.zeros(0),
        a_eq=a_eq[np.flatnonzero(eq_alive)][:, kept_array]
        if eq_alive.any()
        else np.zeros((0, len(kept))),
        b_eq=b_eq[np.flatnonzero(eq_alive)] if eq_alive.any() else np.zeros(0),
        lower=lower[kept_array],
        upper=upper[kept_array],
        integral=[position_of[int(j)] for j in np.flatnonzero(integral & col_alive)],
        objective_constant=constant,
    )
    return PresolveResult(
        status="reduced",
        n_original=n,
        kept=kept,
        fixed=dict(fixed),
        stats=stats,
        arrays=reduced,
    )


def presolve_sparse(arrays) -> Tuple[PresolveResult, Optional[object]]:
    """Presolve a sparse-lowered problem (:class:`SparseArrays`).

    The fixpoint loop itself runs on the dense view -- presolve is a
    one-shot pass whose cost is dwarfed by the search, and the dense
    reductions are battle-tested -- but both endpoints stay sparse:
    the caller hands in CSR blocks and, when the problem survives with
    status ``"reduced"``, gets the reduced problem back as
    :class:`SparseArrays` (second element; ``None`` otherwise).  The
    :class:`PresolveResult` keeps its usual dense ``arrays`` field so
    ``restore``/``reduce_point`` behave identically.
    """
    from repro.milp.sparse import SparseArrays

    result = presolve_arrays(arrays.to_dense_arrays())
    reduced: Optional[SparseArrays] = None
    if result.status == "reduced" and result.arrays is not None:
        reduced = SparseArrays.from_dense_arrays(result.arrays)
    return result, reduced
