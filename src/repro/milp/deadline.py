"""A portable monotonic-clock deadline for cooperative budget checks.

The batch engine used to interrupt stuck solves with a ``SIGALRM``
itimer.  That mechanism only works on POSIX, only on the main thread
of a process, and silently disarms any outer alarm when nested -- three
ways to lose the deadline exactly when it matters.  :class:`Deadline`
replaces it with a value checked *inside* the solver loops
(branch-and-bound pops, simplex-backed relaxations, the greedy
heuristic's improvement rounds): portable, nestable, and thread-safe
by construction because it is just arithmetic on ``time.monotonic()``.

The trade-off is cooperativeness: code that never checks cannot be
interrupted.  Every repository solve path checks at least once per
node/iteration; for genuinely wedged *worker processes* the batch
orchestrator adds a hard watchdog on top (see
:mod:`repro.repair.batch`).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.diagnostics import SolveTimeoutError


class Deadline:
    """A wall-clock budget anchored to ``time.monotonic()``.

    ``Deadline(None)`` (or a non-positive budget) never expires, so
    callers can thread one object through unconditionally.  Deadlines
    nest trivially: derive a child with :meth:`remaining` and the
    tighter budget wins.
    """

    __slots__ = ("budget", "_expires_at")

    def __init__(self, budget: Optional[float]) -> None:
        self.budget = budget if budget and budget > 0 else None
        self._expires_at = (
            time.monotonic() + self.budget if self.budget is not None else None
        )

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left, clamped at 0; ``None`` for the unbounded deadline."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def check(self, what: str = "solve") -> None:
        """Raise :class:`~repro.diagnostics.SolveTimeoutError` if expired."""
        if self.expired:
            raise SolveTimeoutError(
                f"{what} exceeded its {self.budget:g}s budget",
                budget=self.budget,
            )

    def __repr__(self) -> str:
        if self._expires_at is None:
            return "Deadline(unbounded)"
        return f"Deadline(budget={self.budget:g}s, remaining={self.remaining():.3f}s)"
