"""Best-first branch-and-bound for MILP.

The classic scheme:

1. solve the LP relaxation of the node (integrality dropped, node
   bounds applied);
2. prune if infeasible or worse than the incumbent;
3. if the relaxation is integral, it becomes the new incumbent;
4. otherwise branch on the most fractional integral variable, adding
   ``x <= floor(v)`` / ``x >= ceil(v)`` children.

Nodes are explored best-first (lowest relaxation bound first), which
makes the incumbent's optimality certificate immediate when the node
queue empties or the best open bound meets the incumbent.

The LP relaxation backend is pluggable: ``"simplex"`` uses the
from-scratch solver in :mod:`repro.milp.simplex`, ``"scipy"`` uses
``scipy.optimize.linprog`` (HiGHS).  Both see exactly the same arrays.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.milp.model import MILPModel, Sense, Solution, SolveStatus, VarType
from repro.milp.simplex import LPResult, solve_lp

INF = math.inf

#: Integrality tolerance: a relaxation value within this of an integer
#: counts as integral.
INT_TOL = 1e-6


@dataclass
class _Arrays:
    """The model lowered to dense arrays, shared by all nodes."""

    costs: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integral: List[int]
    objective_constant: float


def _lower_model(model: MILPModel) -> _Arrays:
    n = model.n_variables
    costs = np.zeros(n)
    for index, coefficient in model.objective.coefficients.items():
        costs[index] = coefficient
    ub_rows: List[np.ndarray] = []
    ub_rhs: List[float] = []
    eq_rows: List[np.ndarray] = []
    eq_rhs: List[float] = []
    for constraint in model.constraints:
        row = np.zeros(n)
        for index, coefficient in constraint.expr.coefficients.items():
            row[index] = coefficient
        if constraint.sense is Sense.LE:
            ub_rows.append(row)
            ub_rhs.append(constraint.rhs)
        elif constraint.sense is Sense.GE:
            ub_rows.append(-row)
            ub_rhs.append(-constraint.rhs)
        else:
            eq_rows.append(row)
            eq_rhs.append(constraint.rhs)
    lower = np.array([v.lower for v in model.variables])
    upper = np.array([v.upper for v in model.variables])
    integral = [v.index for v in model.variables if v.var_type.is_integral]
    return _Arrays(
        costs=costs,
        a_ub=np.array(ub_rows) if ub_rows else np.zeros((0, n)),
        b_ub=np.array(ub_rhs),
        a_eq=np.array(eq_rows) if eq_rows else np.zeros((0, n)),
        b_eq=np.array(eq_rhs),
        lower=lower,
        upper=upper,
        integral=integral,
        objective_constant=model.objective.constant,
    )


LPSolver = Callable[[_Arrays, np.ndarray, np.ndarray], LPResult]


def _lp_simplex(arrays: _Arrays, lower: np.ndarray, upper: np.ndarray) -> LPResult:
    return solve_lp(
        arrays.costs,
        a_ub=arrays.a_ub,
        b_ub=arrays.b_ub,
        a_eq=arrays.a_eq,
        b_eq=arrays.b_eq,
        lower=lower,
        upper=upper,
    )


def _lp_scipy(arrays: _Arrays, lower: np.ndarray, upper: np.ndarray) -> LPResult:
    from scipy.optimize import linprog

    result = linprog(
        arrays.costs,
        A_ub=arrays.a_ub if arrays.a_ub.size else None,
        b_ub=arrays.b_ub if arrays.b_ub.size else None,
        A_eq=arrays.a_eq if arrays.a_eq.size else None,
        b_eq=arrays.b_eq if arrays.b_eq.size else None,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    if result.status == 0:
        return LPResult(
            status="optimal",
            x=np.asarray(result.x),
            objective=float(result.fun),
            iterations=int(result.nit or 0),
        )
    if result.status == 2:
        return LPResult(status="infeasible")
    if result.status == 3:
        return LPResult(status="unbounded")
    return LPResult(status="iteration_limit")


_LP_BACKENDS: Dict[str, LPSolver] = {
    "simplex": _lp_simplex,
    "scipy": _lp_scipy,
}


def solve_branch_and_bound(
    model: MILPModel,
    *,
    lp_backend: str = "scipy",
    max_nodes: int = 100_000,
    gap_tolerance: float = 1e-9,
) -> Solution:
    """Solve *model* to optimality by branch-and-bound."""
    if lp_backend not in _LP_BACKENDS:
        raise ValueError(
            f"unknown LP backend {lp_backend!r}; choose from "
            f"{sorted(_LP_BACKENDS)}"
        )
    relax = _LP_BACKENDS[lp_backend]
    arrays = _lower_model(model)

    counter = itertools.count()
    root = relax(arrays, arrays.lower, arrays.upper)
    nodes_explored = 1
    lp_iterations = root.iterations
    if root.status == "infeasible":
        return Solution(SolveStatus.INFEASIBLE, stats={"nodes": 1})
    if root.status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED, stats={"nodes": 1})
    if root.status != "optimal":
        return Solution(SolveStatus.ERROR, stats={"nodes": 1})

    incumbent_x: Optional[np.ndarray] = None
    incumbent_objective = INF

    # Heap of (bound, tiebreak, lower, upper, lp_result)
    heap: List[Tuple[float, int, np.ndarray, np.ndarray, LPResult]] = []
    heapq.heappush(
        heap, (root.objective, next(counter), arrays.lower, arrays.upper, root)
    )

    while heap:
        bound, _, lower, upper, lp = heapq.heappop(heap)
        if bound >= incumbent_objective - gap_tolerance:
            break  # best-first: every open node is at least this bad
        assert lp.x is not None
        fractional_index = -1
        worst_fraction = INT_TOL
        for index in arrays.integral:
            value = lp.x[index]
            fraction = abs(value - round(value))
            if fraction > worst_fraction:
                worst_fraction = fraction
                fractional_index = index
        if fractional_index < 0:
            # Integral: candidate incumbent (round away LP noise).
            candidate = lp.x.copy()
            for index in arrays.integral:
                candidate[index] = round(candidate[index])
            objective = float(arrays.costs @ candidate)
            if objective < incumbent_objective - gap_tolerance:
                incumbent_objective = objective
                incumbent_x = candidate
            continue
        if nodes_explored >= max_nodes:
            break
        value = lp.x[fractional_index]
        for direction in ("down", "up"):
            child_lower = lower
            child_upper = upper
            if direction == "down":
                child_upper = upper.copy()
                child_upper[fractional_index] = math.floor(value)
            else:
                child_lower = lower.copy()
                child_lower[fractional_index] = math.ceil(value)
            if child_lower[fractional_index] > child_upper[fractional_index]:
                continue
            child = relax(arrays, child_lower, child_upper)
            nodes_explored += 1
            lp_iterations += child.iterations
            if child.status != "optimal":
                continue
            if child.objective is not None and (
                child.objective < incumbent_objective - gap_tolerance
            ):
                heapq.heappush(
                    heap,
                    (child.objective, next(counter), child_lower, child_upper, child),
                )

    stats = {"nodes": float(nodes_explored), "lp_iterations": float(lp_iterations)}
    if incumbent_x is None:
        if nodes_explored >= max_nodes:
            return Solution(SolveStatus.ITERATION_LIMIT, stats=stats)
        return Solution(SolveStatus.INFEASIBLE, stats=stats)
    return Solution(
        SolveStatus.OPTIMAL,
        objective=incumbent_objective + arrays.objective_constant,
        values=model.solution_values(incumbent_x),
        stats=stats,
    )
