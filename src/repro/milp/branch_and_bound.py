"""Best-first branch-and-bound for MILP.

The classic scheme, with the hot-path machinery added by the solver
overhaul:

1. **presolve** the lowered arrays (bound propagation, big-M
   tightening, forced fixings -- see :mod:`repro.milp.presolve`); the
   search runs on the reduced problem and postsolves the answer;
2. solve the LP relaxation of each node -- **warm-started** from the
   parent basis when the ``simplex`` LP backend is active (one bound
   changes per child, so a couple of dual pivots usually suffice; see
   :mod:`repro.milp.warmstart`);
3. prune if infeasible or worse than the incumbent -- an **incumbent
   seed** (e.g. from the greedy repair heuristic) makes pruning start
   at node 1, and when the objective is provably integral the node
   bound is rounded up before comparing;
4. if the relaxation is integral, it becomes the new incumbent;
5. otherwise branch -- **pseudo-cost** scoring by default (estimated
   objective degradation per unit of fraction, learned from observed
   child bounds), ``"most-fractional"`` available for comparison.

Nodes are explored best-first (lowest relaxation bound first), which
makes the incumbent's optimality certificate immediate when the node
queue empties or the best open bound meets the incumbent.  Per-node
bounds are *not* stored as full arrays: each node keeps a delta chain
(one ``(index, side, value)`` entry per ancestor) against the shared
root arrays and materialises bounds only when a cold LP needs them.

The LP relaxation backend is pluggable: ``"simplex"`` uses the
from-scratch solver in :mod:`repro.milp.simplex`, ``"scipy"`` uses
``scipy.optimize.linprog`` (HiGHS).  Both see exactly the same arrays.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.milp.deadline import Deadline
from repro.milp.lowering import DenseArrays, lower_model
from repro.milp.model import MILPModel, Solution, SolveStatus
from repro.milp.presolve import PresolveResult, presolve_arrays
from repro.milp.simplex import LPResult, PRICING_DANTZIG, solve_lp
from repro.milp.warmstart import TreeNodeState, WarmStartTree, WarmStartUnavailable

INF = math.inf

#: Integrality tolerance: a relaxation value within this of an integer
#: counts as integral.
INT_TOL = 1e-6

#: Branching rules accepted by :func:`solve_branch_and_bound`.
BRANCHING_RULES = ("pseudocost", "most-fractional")

# Backwards-compatible aliases: the lowered-array types moved to
# :mod:`repro.milp.lowering` so presolve can share them.
_Arrays = DenseArrays
_lower_model = lower_model


@dataclass
class _BoundDelta:
    """One branching decision, chained up to the root.

    Nodes share the root bound arrays and record only their own change;
    materialising a node's bounds walks the (depth-length) chain.  Order
    of application is irrelevant because bounds only ever tighten along
    a path (min/max absorbs ancestors).
    """

    parent: Optional["_BoundDelta"]
    index: int
    side: str  # "lower" | "upper"
    value: float


def _materialise_bounds(
    arrays: DenseArrays, delta: Optional[_BoundDelta]
) -> Tuple[np.ndarray, np.ndarray]:
    lower = arrays.lower.copy()
    upper = arrays.upper.copy()
    node = delta
    while node is not None:
        if node.side == "upper":
            if node.value < upper[node.index]:
                upper[node.index] = node.value
        else:
            if node.value > lower[node.index]:
                lower[node.index] = node.value
        node = node.parent
    return lower, upper


def _bounds_of_variable(
    arrays: DenseArrays, delta: Optional[_BoundDelta], index: int
) -> Tuple[float, float]:
    low = float(arrays.lower[index])
    high = float(arrays.upper[index])
    node = delta
    while node is not None:
        if node.index == index:
            if node.side == "upper":
                high = min(high, node.value)
            else:
                low = max(low, node.value)
        node = node.parent
    return low, high


class _PseudoCosts:
    """Per-variable objective-degradation estimates for branching.

    For each branch direction the observed ``(child bound - parent
    bound) / fraction`` is averaged; unseen variables borrow the global
    average, and with no history at all the score degrades to the
    fraction itself (i.e. most-fractional).
    """

    def __init__(self) -> None:
        self._down: Dict[int, Tuple[float, int]] = {}
        self._up: Dict[int, Tuple[float, int]] = {}

    def update(
        self, index: int, direction: str, fraction: float, degradation: float
    ) -> None:
        table = self._down if direction == "down" else self._up
        weight = fraction if direction == "down" else 1.0 - fraction
        if weight <= INT_TOL:
            return
        per_unit = max(degradation, 0.0) / weight
        total, count = table.get(index, (0.0, 0))
        table[index] = (total + per_unit, count + 1)

    def _estimate(self, table: Dict[int, Tuple[float, int]], index: int) -> Tuple[float, bool]:
        entry = table.get(index)
        if entry is not None and entry[1] > 0:
            return entry[0] / entry[1], True
        averages = [total / count for total, count in table.values() if count]
        if averages:
            return sum(averages) / len(averages), False
        return 1.0, False

    def score(self, index: int, fraction: float) -> Tuple[float, int]:
        """(product score, how many directions have real history)."""
        down, down_known = self._estimate(self._down, index)
        up, up_known = self._estimate(self._up, index)
        epsilon = 1e-6
        product = max(down * fraction, epsilon) * max(up * (1.0 - fraction), epsilon)
        return product, int(down_known) + int(up_known)


def _select_branch_variable(
    x: np.ndarray,
    integral: Sequence[int],
    branching: str,
    pseudo: _PseudoCosts,
) -> Tuple[int, float]:
    """Pick the branching variable; returns ``(index, fraction)``.

    ``index`` is -1 when the point is integral.  ``fraction`` is the
    distance above ``floor(x)`` (used by pseudo-cost updates).
    """
    best_index = -1
    best_key: Optional[Tuple] = None
    best_fraction = 0.0
    for index in integral:
        value = x[index]
        distance = abs(value - round(value))
        if distance <= INT_TOL:
            continue
        fraction = value - math.floor(value)
        if branching == "most-fractional":
            key = (distance,)
        else:
            product, known = pseudo.score(index, fraction)
            key = (product, known, distance)
        if best_key is None or key > best_key:
            best_key = key
            best_index = index
            best_fraction = fraction
    return best_index, best_fraction


@dataclass
class _Node:
    delta: Optional[_BoundDelta]
    lp: LPResult
    state: Optional[TreeNodeState]


LPSolver = Callable[[DenseArrays, np.ndarray, np.ndarray], LPResult]


def _lp_simplex(arrays: DenseArrays, lower: np.ndarray, upper: np.ndarray) -> LPResult:
    return solve_lp(
        arrays.costs,
        a_ub=arrays.a_ub,
        b_ub=arrays.b_ub,
        a_eq=arrays.a_eq,
        b_eq=arrays.b_eq,
        lower=lower,
        upper=upper,
    )


def _lp_scipy(arrays: DenseArrays, lower: np.ndarray, upper: np.ndarray) -> LPResult:
    from scipy.optimize import linprog

    result = linprog(
        arrays.costs,
        A_ub=arrays.a_ub if arrays.a_ub.size else None,
        b_ub=arrays.b_ub if arrays.b_ub.size else None,
        A_eq=arrays.a_eq if arrays.a_eq.size else None,
        b_eq=arrays.b_eq if arrays.b_eq.size else None,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    if result.status == 0:
        return LPResult(
            status="optimal",
            x=np.asarray(result.x),
            objective=float(result.fun),
            iterations=int(result.nit or 0),
        )
    if result.status == 2:
        return LPResult(status="infeasible")
    if result.status == 3:
        return LPResult(status="unbounded")
    return LPResult(status="iteration_limit")


_LP_BACKENDS: Dict[str, LPSolver] = {
    "simplex": _lp_simplex,
    "scipy": _lp_scipy,
}


def solve_branch_and_bound(
    model: MILPModel,
    *,
    lp_backend: str = "scipy",
    max_nodes: int = 100_000,
    gap_tolerance: float = 1e-9,
    presolve: bool = True,
    warm_start: bool = True,
    branching: str = "pseudocost",
    pricing: str = PRICING_DANTZIG,
    incumbent: Optional[Sequence[float]] = None,
    time_limit: Optional[float] = None,
) -> Solution:
    """Solve *model* to optimality by branch-and-bound.

    **Anytime semantics**: ``time_limit`` (wall-clock seconds, checked
    once per node against a monotonic deadline) and ``max_nodes`` bound
    the search.  When either budget expires while open nodes remain,
    the best incumbent is returned with status
    :attr:`~repro.milp.model.SolveStatus.FEASIBLE_GAP` and a certified
    optimality gap in ``stats`` (``gap_absolute`` = incumbent objective
    minus the best open node bound, which lower-bounds every
    still-reachable solution because the search is best-first;
    ``gap_relative`` and ``best_bound`` accompany it).  Only when the
    budget expires with *no* incumbent does the solve report
    ``ITERATION_LIMIT`` -- with ``stats["deadline_expired"]`` set when
    the wall clock (rather than the node budget) ran out.

    Performance options (none of them changes the optimal objective):

    - ``presolve`` -- run :func:`repro.milp.presolve.presolve_arrays`
      first and search the reduced problem;
    - ``warm_start`` -- with ``lp_backend="simplex"``, re-solve child
      nodes from the parent basis by dual simplex instead of cold
      two-phase solves;
    - ``branching`` -- ``"pseudocost"`` (default) or
      ``"most-fractional"`` (the pre-overhaul rule);
    - ``pricing`` -- entering-column rule for cold simplex solves
      (``"dantzig"`` default, ``"bland"`` for the pre-overhaul rule);
    - ``incumbent`` -- a full-space feasible point (e.g. from the
      repair heuristic) used as the initial upper bound so pruning
      starts at node 1.  Infeasible seeds are silently ignored.
    """
    if lp_backend not in _LP_BACKENDS:
        raise ValueError(
            f"unknown LP backend {lp_backend!r}; choose from "
            f"{sorted(_LP_BACKENDS)}"
        )
    if branching not in BRANCHING_RULES:
        raise ValueError(
            f"unknown branching rule {branching!r}; choose from "
            f"{list(BRANCHING_RULES)}"
        )
    if lp_backend == "simplex":
        def relax(arrays: DenseArrays, lower: np.ndarray, upper: np.ndarray) -> LPResult:
            return solve_lp(
                arrays.costs,
                a_ub=arrays.a_ub,
                b_ub=arrays.b_ub,
                a_eq=arrays.a_eq,
                b_eq=arrays.b_eq,
                lower=lower,
                upper=upper,
                pricing=pricing,
            )
    else:
        relax = _LP_BACKENDS[lp_backend]

    deadline = Deadline(time_limit)
    arrays = lower_model(model)
    stats: Dict[str, float] = {}

    reduction: Optional[PresolveResult] = None
    work = arrays
    if presolve:
        reduction = presolve_arrays(arrays)
        stats.update(reduction.stats.as_solution_stats())
        if reduction.status == "infeasible":
            stats.update({"nodes": 0.0, "lp_iterations": 0.0})
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if reduction.status == "solved":
            x_full = reduction.restore()
            if model.check_feasible(x_full):
                stats.update(
                    {"nodes": 0.0, "lp_iterations": 0.0, "presolve_solved": 1.0}
                )
                return Solution(
                    SolveStatus.OPTIMAL,
                    objective=float(arrays.costs @ x_full) + arrays.objective_constant,
                    values=model.solution_values(x_full),
                    stats=stats,
                )
            # Paranoia: the presolve point failed the model's own check
            # (tolerance interplay); fall back to the full search.
            return solve_branch_and_bound(
                model,
                lp_backend=lp_backend,
                max_nodes=max_nodes,
                gap_tolerance=gap_tolerance,
                presolve=False,
                warm_start=warm_start,
                branching=branching,
                pricing=pricing,
                incumbent=incumbent,
                time_limit=deadline.remaining(),
            )
        work = reduction.arrays

    # Seed the incumbent from a caller-supplied feasible point.
    incumbent_x: Optional[np.ndarray] = None
    incumbent_objective = INF
    if incumbent is not None:
        point = np.asarray(incumbent, dtype=float)
        if point.shape[0] == model.n_variables and model.check_feasible(point):
            reduced_point = (
                reduction.reduce_point(point) if reduction is not None else point.copy()
            )
            if reduced_point is not None:
                incumbent_x = reduced_point
                incumbent_objective = float(work.costs @ reduced_point)
                stats["incumbent_seeded"] = 1.0

    # When the objective's support is integral with integer coefficients
    # every attainable objective is an integer: node bounds can be
    # rounded up before pruning comparisons.
    integral_set = set(work.integral)
    objective_is_integral = all(
        coefficient == 0.0
        or (index in integral_set and float(coefficient).is_integer())
        for index, coefficient in enumerate(work.costs)
    )

    def pruning_bound(bound: float) -> float:
        if objective_is_integral:
            return math.ceil(bound - 1e-6)
        return bound

    tree: Optional[WarmStartTree] = None
    if warm_start and lp_backend == "simplex":
        try:
            tree = WarmStartTree(work)
        except WarmStartUnavailable:
            tree = None

    counter = itertools.count()
    root_state: Optional[TreeNodeState] = None
    if tree is not None:
        root, root_state = tree.solve_root()
        if root.status == "iteration_limit" and root_state is None:
            tree = None
            root = relax(work, work.lower, work.upper)
    else:
        root = relax(work, work.lower, work.upper)
    nodes_explored = 1
    lp_iterations = root.iterations
    warm_hits = 0
    warm_fallbacks = 0
    pruned_by_incumbent = 0
    #: Best open node bound at an early (budget) exit; None = proven.
    interrupted_bound: Optional[float] = None

    def finish(status: SolveStatus) -> Solution:
        stats.update(
            {
                "nodes": float(nodes_explored),
                "lp_iterations": float(lp_iterations),
                "warm_start_hits": float(warm_hits),
                "warm_start_fallbacks": float(warm_fallbacks),
                "pruned_by_incumbent": float(pruned_by_incumbent),
            }
        )
        if deadline.expired:
            stats["deadline_expired"] = 1.0
        if status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE_GAP):
            return Solution(status, stats=stats)
        assert incumbent_x is not None
        if status is SolveStatus.FEASIBLE_GAP:
            assert interrupted_bound is not None
            bound = min(interrupted_bound, incumbent_objective)
            gap = max(0.0, incumbent_objective - bound)
            scale = max(1.0, abs(incumbent_objective))
            stats["gap_absolute"] = gap
            stats["gap_relative"] = gap / scale
            stats["best_bound"] = bound + work.objective_constant
        else:
            stats["gap_absolute"] = 0.0
            stats["gap_relative"] = 0.0
        x_full = (
            reduction.restore(incumbent_x) if reduction is not None else incumbent_x
        )
        return Solution(
            status,
            objective=incumbent_objective + work.objective_constant,
            values=model.solution_values(x_full),
            stats=stats,
        )

    if root.status == "infeasible":
        # A feasible seed contradicts an infeasible relaxation only
        # through numerics; trust the relaxation as before.
        return finish(SolveStatus.INFEASIBLE)
    if root.status == "unbounded":
        return finish(SolveStatus.UNBOUNDED)
    if root.status != "optimal":
        return finish(SolveStatus.ERROR)

    pseudo = _PseudoCosts()

    # Heap of (bound, tiebreak, node)
    heap: List[Tuple[float, int, _Node]] = []
    heapq.heappush(
        heap, (root.objective, next(counter), _Node(None, root, root_state))
    )

    while heap:
        bound, _, node = heapq.heappop(heap)
        if pruning_bound(bound) >= incumbent_objective - gap_tolerance:
            break  # best-first: every open node is at least this bad
        if deadline.expired:
            # Anytime exit: best-first order makes this node's bound a
            # valid lower bound on every open solution.
            interrupted_bound = bound
            break
        lp = node.lp
        assert lp.x is not None
        branch_index, branch_fraction = _select_branch_variable(
            lp.x, work.integral, branching, pseudo
        )
        if branch_index < 0:
            # Integral: candidate incumbent (round away LP noise).
            candidate = lp.x.copy()
            for index in work.integral:
                candidate[index] = round(candidate[index])
            objective = float(work.costs @ candidate)
            if objective < incumbent_objective - gap_tolerance:
                incumbent_objective = objective
                incumbent_x = candidate
            continue
        if nodes_explored >= max_nodes:
            interrupted_bound = bound
            break
        value = lp.x[branch_index]
        node_low, node_high = _bounds_of_variable(work, node.delta, branch_index)
        parent_objective = lp.objective if lp.objective is not None else bound
        for direction in ("down", "up"):
            if direction == "down":
                side, branch_bound = "upper", float(math.floor(value))
                if branch_bound < node_low:
                    continue
            else:
                side, branch_bound = "lower", float(math.ceil(value))
                if branch_bound > node_high:
                    continue
            child_delta = _BoundDelta(node.delta, branch_index, side, branch_bound)
            child_state: Optional[TreeNodeState] = None
            if tree is not None and node.state is not None:
                child, child_state = tree.solve_child(
                    node.state, branch_index, side, branch_bound
                )
                if child.status == "iteration_limit" and child_state is None:
                    # Warm path capped out; cold-solve this node.
                    warm_fallbacks += 1
                    lp_iterations += child.iterations
                    child_lower, child_upper = _materialise_bounds(work, child_delta)
                    child = relax(work, child_lower, child_upper)
                else:
                    warm_hits += 1
            else:
                child_lower, child_upper = _materialise_bounds(work, child_delta)
                child = relax(work, child_lower, child_upper)
            nodes_explored += 1
            lp_iterations += child.iterations
            if child.status != "optimal":
                continue
            assert child.objective is not None
            pseudo.update(
                branch_index,
                direction,
                branch_fraction,
                child.objective - parent_objective,
            )
            if pruning_bound(child.objective) >= incumbent_objective - gap_tolerance:
                pruned_by_incumbent += 1
                continue
            heapq.heappush(
                heap,
                (
                    child.objective,
                    next(counter),
                    _Node(child_delta, child, child_state),
                ),
            )

    if incumbent_x is None:
        if interrupted_bound is not None or nodes_explored >= max_nodes:
            return finish(SolveStatus.ITERATION_LIMIT)
        return finish(SolveStatus.INFEASIBLE)
    if interrupted_bound is not None:
        return finish(SolveStatus.FEASIBLE_GAP)
    return finish(SolveStatus.OPTIMAL)
