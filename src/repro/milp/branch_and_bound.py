"""Best-first branch-and-bound for MILP.

The classic scheme, with the hot-path machinery added by the solver
overhaul:

1. **presolve** the lowered arrays (bound propagation, big-M
   tightening, forced fixings -- see :mod:`repro.milp.presolve`); the
   search runs on the reduced problem and postsolves the answer;
2. solve the LP relaxation of each node -- **warm-started** from the
   parent basis when the ``simplex`` LP backend is active (one bound
   changes per child, so a couple of dual pivots usually suffice; see
   :mod:`repro.milp.warmstart`);
3. prune if infeasible or worse than the incumbent -- an **incumbent
   seed** (e.g. from the greedy repair heuristic) makes pruning start
   at node 1, and when the objective is provably integral the node
   bound is rounded up before comparing;
4. if the relaxation is integral, it becomes the new incumbent;
5. otherwise branch -- **pseudo-cost** scoring by default (estimated
   objective degradation per unit of fraction, learned from observed
   child bounds), ``"most-fractional"`` available for comparison.

Nodes are explored best-first (lowest relaxation bound first), which
makes the incumbent's optimality certificate immediate when the node
queue empties or the best open bound meets the incumbent.  Per-node
bounds are *not* stored as full arrays: each node keeps a delta chain
(one ``(index, side, value)`` entry per ancestor) against the shared
root arrays and materialises bounds only when a cold LP needs them.

The LP relaxation backend is pluggable: ``"simplex"`` uses the
from-scratch solver, ``"scipy"`` uses HiGHS.  Both see exactly the
same arrays.

The **sparse core** (default, ``sparse=True``) runs the whole search
on CSR blocks (:mod:`repro.milp.sparse`): the ``simplex`` backend
becomes the revised simplex (:mod:`repro.milp.revised`) with
factorized-basis warm starts, and the ``scipy`` backend keeps one
persistent HiGHS instance per tree (:mod:`repro.milp.node_lp`)
instead of rebuilding ``linprog`` inputs at every node.  ``cuts=True``
additionally tightens the root with Gomory + cover rounds and pools
node-scoped cover cuts keyed by each node's fixed-variable set
(:mod:`repro.milp.cuts`).  ``sparse=False`` preserves the pre-overhaul
dense path bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.milp.cuts import (
    CutPool,
    FixedSet,
    cover_cuts,
    cut_rejected_by_witness,
    root_cut_loop,
)
from repro.milp.deadline import Deadline
from repro.milp.lowering import DenseArrays, lower_model, lower_model_sparse
from repro.milp.model import MILPModel, Solution, SolveStatus
from repro.milp.node_lp import (
    PersistentNodeLP,
    persistent_available,
    solve_lp_linprog,
)
from repro.milp.presolve import PresolveResult, presolve_arrays, presolve_sparse
from repro.milp.revised import solve_lp_sparse
from repro.milp.simplex import LPResult, PRICING_DANTZIG, solve_lp
from repro.milp.sparse import SparseArrays
from repro.milp.warmstart import (
    SparseWarmStartTree,
    TreeNodeState,
    WarmStartTree,
    WarmStartUnavailable,
)

INF = math.inf

#: Caps on node-level cut separation: stop pooling once this many cuts
#: are stored / this many nodes have been explored (separation cost
#: stops paying for itself deep in the tree).
NODE_CUT_POOL_CAP = 64
NODE_CUT_NODE_CAP = 500
NODE_CUTS_PER_NODE = 4

#: Integrality tolerance: a relaxation value within this of an integer
#: counts as integral.
INT_TOL = 1e-6

#: Branching rules accepted by :func:`solve_branch_and_bound`.
BRANCHING_RULES = ("pseudocost", "most-fractional")

# Backwards-compatible aliases: the lowered-array types moved to
# :mod:`repro.milp.lowering` so presolve can share them.
_Arrays = DenseArrays
_lower_model = lower_model


@dataclass
class _BoundDelta:
    """One branching decision, chained up to the root.

    Nodes share the root bound arrays and record only their own change;
    materialising a node's bounds walks the (depth-length) chain.  Order
    of application is irrelevant because bounds only ever tighten along
    a path (min/max absorbs ancestors).
    """

    parent: Optional["_BoundDelta"]
    index: int
    side: str  # "lower" | "upper"
    value: float


def _materialise_bounds(
    arrays: DenseArrays, delta: Optional[_BoundDelta]
) -> Tuple[np.ndarray, np.ndarray]:
    lower = arrays.lower.copy()
    upper = arrays.upper.copy()
    node = delta
    while node is not None:
        if node.side == "upper":
            if node.value < upper[node.index]:
                upper[node.index] = node.value
        else:
            if node.value > lower[node.index]:
                lower[node.index] = node.value
        node = node.parent
    return lower, upper


def _fixed_set(delta: Optional[_BoundDelta]) -> FixedSet:
    """A node's identity for cut scoping: its branching decisions."""
    decisions = set()
    node = delta
    while node is not None:
        decisions.add((node.index, node.side, node.value))
        node = node.parent
    return frozenset(decisions)


def _bounds_of_variable(
    arrays: DenseArrays, delta: Optional[_BoundDelta], index: int
) -> Tuple[float, float]:
    low = float(arrays.lower[index])
    high = float(arrays.upper[index])
    node = delta
    while node is not None:
        if node.index == index:
            if node.side == "upper":
                high = min(high, node.value)
            else:
                low = max(low, node.value)
        node = node.parent
    return low, high


class _PseudoCosts:
    """Per-variable objective-degradation estimates for branching.

    For each branch direction the observed ``(child bound - parent
    bound) / fraction`` is averaged; unseen variables borrow the global
    average, and with no history at all the score degrades to the
    fraction itself (i.e. most-fractional).
    """

    def __init__(self) -> None:
        self._down: Dict[int, Tuple[float, int]] = {}
        self._up: Dict[int, Tuple[float, int]] = {}

    def update(
        self, index: int, direction: str, fraction: float, degradation: float
    ) -> None:
        table = self._down if direction == "down" else self._up
        weight = fraction if direction == "down" else 1.0 - fraction
        if weight <= INT_TOL:
            return
        per_unit = max(degradation, 0.0) / weight
        total, count = table.get(index, (0.0, 0))
        table[index] = (total + per_unit, count + 1)

    def _estimate(self, table: Dict[int, Tuple[float, int]], index: int) -> Tuple[float, bool]:
        entry = table.get(index)
        if entry is not None and entry[1] > 0:
            return entry[0] / entry[1], True
        averages = [total / count for total, count in table.values() if count]
        if averages:
            return sum(averages) / len(averages), False
        return 1.0, False

    def score(self, index: int, fraction: float) -> Tuple[float, int]:
        """(product score, how many directions have real history)."""
        down, down_known = self._estimate(self._down, index)
        up, up_known = self._estimate(self._up, index)
        epsilon = 1e-6
        product = max(down * fraction, epsilon) * max(up * (1.0 - fraction), epsilon)
        return product, int(down_known) + int(up_known)


def _select_branch_variable(
    x: np.ndarray,
    integral: Sequence[int],
    branching: str,
    pseudo: _PseudoCosts,
) -> Tuple[int, float]:
    """Pick the branching variable; returns ``(index, fraction)``.

    ``index`` is -1 when the point is integral.  ``fraction`` is the
    distance above ``floor(x)`` (used by pseudo-cost updates).
    """
    best_index = -1
    best_key: Optional[Tuple] = None
    best_fraction = 0.0
    for index in integral:
        value = x[index]
        distance = abs(value - round(value))
        if distance <= INT_TOL:
            continue
        fraction = value - math.floor(value)
        if branching == "most-fractional":
            key = (distance,)
        else:
            product, known = pseudo.score(index, fraction)
            key = (product, known, distance)
        if best_key is None or key > best_key:
            best_key = key
            best_index = index
            best_fraction = fraction
    return best_index, best_fraction


@dataclass
class _Node:
    delta: Optional[_BoundDelta]
    lp: LPResult
    #: Warm-start state: :class:`TreeNodeState` (dense tree) or
    #: :class:`~repro.milp.warmstart.SparseNodeState` (sparse tree).
    state: Optional[object]


LPSolver = Callable[[DenseArrays, np.ndarray, np.ndarray], LPResult]


def _lp_simplex(arrays: DenseArrays, lower: np.ndarray, upper: np.ndarray) -> LPResult:
    return solve_lp(
        arrays.costs,
        a_ub=arrays.a_ub,
        b_ub=arrays.b_ub,
        a_eq=arrays.a_eq,
        b_eq=arrays.b_eq,
        lower=lower,
        upper=upper,
    )


def _lp_scipy(arrays: DenseArrays, lower: np.ndarray, upper: np.ndarray) -> LPResult:
    from scipy.optimize import linprog

    result = linprog(
        arrays.costs,
        A_ub=arrays.a_ub if arrays.a_ub.size else None,
        b_ub=arrays.b_ub if arrays.b_ub.size else None,
        A_eq=arrays.a_eq if arrays.a_eq.size else None,
        b_eq=arrays.b_eq if arrays.b_eq.size else None,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    if result.status == 0:
        return LPResult(
            status="optimal",
            x=np.asarray(result.x),
            objective=float(result.fun),
            iterations=int(result.nit or 0),
        )
    if result.status == 2:
        return LPResult(status="infeasible")
    if result.status == 3:
        return LPResult(status="unbounded")
    return LPResult(status="iteration_limit")


_LP_BACKENDS: Dict[str, LPSolver] = {
    "simplex": _lp_simplex,
    "scipy": _lp_scipy,
}


def solve_branch_and_bound(
    model: MILPModel,
    *,
    lp_backend: str = "scipy",
    max_nodes: int = 100_000,
    gap_tolerance: float = 1e-9,
    presolve: bool = True,
    warm_start: bool = True,
    branching: str = "pseudocost",
    pricing: str = PRICING_DANTZIG,
    incumbent: Optional[Sequence[float]] = None,
    time_limit: Optional[float] = None,
    sparse: bool = True,
    cuts: bool = True,
) -> Solution:
    """Solve *model* to optimality by branch-and-bound.

    **Anytime semantics**: ``time_limit`` (wall-clock seconds, checked
    once per node against a monotonic deadline) and ``max_nodes`` bound
    the search.  When either budget expires while open nodes remain,
    the best incumbent is returned with status
    :attr:`~repro.milp.model.SolveStatus.FEASIBLE_GAP` and a certified
    optimality gap in ``stats`` (``gap_absolute`` = incumbent objective
    minus the best open node bound, which lower-bounds every
    still-reachable solution because the search is best-first;
    ``gap_relative`` and ``best_bound`` accompany it).  Only when the
    budget expires with *no* incumbent does the solve report
    ``ITERATION_LIMIT`` -- with ``stats["deadline_expired"]`` set when
    the wall clock (rather than the node budget) ran out.

    Performance options (none of them changes the optimal objective):

    - ``presolve`` -- run :func:`repro.milp.presolve.presolve_arrays`
      first and search the reduced problem;
    - ``warm_start`` -- with ``lp_backend="simplex"``, re-solve child
      nodes from the parent basis by dual simplex instead of cold
      two-phase solves;
    - ``branching`` -- ``"pseudocost"`` (default) or
      ``"most-fractional"`` (the pre-overhaul rule);
    - ``pricing`` -- entering-column rule for cold simplex solves
      (``"dantzig"`` default, ``"bland"`` for the pre-overhaul rule);
    - ``incumbent`` -- a full-space feasible point (e.g. from the
      repair heuristic) used as the initial upper bound so pruning
      starts at node 1.  Infeasible seeds are silently ignored;
    - ``sparse`` -- run the search on CSR blocks with the revised
      simplex / persistent-HiGHS node solvers (default); ``False``
      selects the pre-overhaul dense path;
    - ``cuts`` -- (sparse path only) Gomory + cover rounds at the root
      and a node-scoped cover-cut pool keyed by fixed-variable sets.

    Per-phase wall-clock seconds are reported in ``stats`` as
    ``phase_lower`` / ``phase_presolve`` / ``phase_root_lp`` /
    ``phase_cuts`` / ``phase_bnb``.
    """
    if lp_backend not in _LP_BACKENDS:
        raise ValueError(
            f"unknown LP backend {lp_backend!r}; choose from "
            f"{sorted(_LP_BACKENDS)}"
        )
    if branching not in BRANCHING_RULES:
        raise ValueError(
            f"unknown branching rule {branching!r}; choose from "
            f"{list(BRANCHING_RULES)}"
        )
    deadline = Deadline(time_limit)
    stats: Dict[str, float] = {}

    mark = time.perf_counter()
    sparse_root: Optional[SparseArrays] = None
    if sparse:
        sparse_root = lower_model_sparse(model)
        arrays = sparse_root.to_dense_arrays()
    else:
        arrays = lower_model(model)
    stats["phase_lower"] = time.perf_counter() - mark

    reduction: Optional[PresolveResult] = None
    work = arrays
    sparse_work: Optional[SparseArrays] = sparse_root
    if presolve:
        mark = time.perf_counter()
        if sparse:
            assert sparse_root is not None
            reduction, sparse_reduced = presolve_sparse(sparse_root)
            if sparse_reduced is not None:
                sparse_work = sparse_reduced
        else:
            reduction = presolve_arrays(arrays)
        stats["phase_presolve"] = time.perf_counter() - mark
        stats.update(reduction.stats.as_solution_stats())
        if reduction.status == "infeasible":
            stats.update({"nodes": 0.0, "lp_iterations": 0.0})
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if reduction.status == "solved":
            x_full = reduction.restore()
            if model.check_feasible(x_full):
                stats.update(
                    {"nodes": 0.0, "lp_iterations": 0.0, "presolve_solved": 1.0}
                )
                return Solution(
                    SolveStatus.OPTIMAL,
                    objective=float(arrays.costs @ x_full) + arrays.objective_constant,
                    values=model.solution_values(x_full),
                    stats=stats,
                )
            # Paranoia: the presolve point failed the model's own check
            # (tolerance interplay); fall back to the full search.
            return solve_branch_and_bound(
                model,
                lp_backend=lp_backend,
                max_nodes=max_nodes,
                gap_tolerance=gap_tolerance,
                presolve=False,
                warm_start=warm_start,
                branching=branching,
                pricing=pricing,
                incumbent=incumbent,
                time_limit=deadline.remaining(),
                sparse=sparse,
                cuts=cuts,
            )
        work = reduction.arrays
    if sparse:
        assert sparse_work is not None
        # Every consumer below (bounds, costs, integral set) works on
        # the same attributes either way; in sparse mode the shared
        # node arrays are the CSR blocks.
        work = sparse_work

    # Seed the incumbent from a caller-supplied feasible point.
    incumbent_x: Optional[np.ndarray] = None
    incumbent_objective = INF
    if incumbent is not None:
        point = np.asarray(incumbent, dtype=float)
        if point.shape[0] == model.n_variables and model.check_feasible(point):
            reduced_point = (
                reduction.reduce_point(point) if reduction is not None else point.copy()
            )
            if reduced_point is not None:
                incumbent_x = reduced_point
                incumbent_objective = float(work.costs @ reduced_point)
                stats["incumbent_seeded"] = 1.0

    # When the objective's support is integral with integer coefficients
    # every attainable objective is an integer: node bounds can be
    # rounded up before pruning comparisons.
    integral_set = set(work.integral)
    objective_is_integral = all(
        coefficient == 0.0
        or (index in integral_set and float(coefficient).is_integer())
        for index, coefficient in enumerate(work.costs)
    )

    def pruning_bound(bound: float) -> float:
        if objective_is_integral:
            return math.ceil(bound - 1e-6)
        return bound

    # ------------------------------------------------------------------
    # Root cutting planes (sparse path): tighten the shared arrays with
    # globally valid Gomory + cover rounds before any node is created,
    # and open a pool for node-scoped cuts found during the search.
    # ------------------------------------------------------------------
    pool: Optional[CutPool] = None
    lp_iterations = 0
    cuts_rejected = 0
    numeric_drift = 0.0
    if sparse and cuts:
        mark = time.perf_counter()
        # The seeded incumbent doubles as the exact-arithmetic witness
        # for cut admission: any separated cut that would exclude a
        # known integer-feasible point is provably invalid.
        witnesses = [incumbent_x] if incumbent_x is not None else None
        cut_result = root_cut_loop(work, pricing=pricing, witnesses=witnesses)
        stats["phase_cuts"] = time.perf_counter() - mark
        stats["cut_rounds"] = float(cut_result.rounds)
        stats["cuts_gomory"] = float(cut_result.gomory_count)
        stats["cuts_cover"] = float(cut_result.cover_count)
        cuts_rejected += cut_result.rejected
        lp_iterations += cut_result.lp_iterations
        if cut_result.cuts:
            work = cut_result.arrays
        pool = CutPool()

    # ------------------------------------------------------------------
    # The per-node relaxation solver.  ``fixed`` carries the node's
    # branching decisions so pooled subtree cuts can be applied.
    # ------------------------------------------------------------------
    node_lp: Optional[PersistentNodeLP] = None
    if sparse:
        if lp_backend == "simplex":
            def relax(
                arrays: SparseArrays,
                lower: np.ndarray,
                upper: np.ndarray,
                fixed: FixedSet = frozenset(),
            ) -> LPResult:
                target = arrays
                if pool is not None and fixed:
                    extra = pool.cuts_for(fixed)
                    if extra:
                        target = arrays.with_extra_ub_rows(
                            [cut.as_row_dict() for cut in extra],
                            [cut.rhs for cut in extra],
                        )
                return solve_lp_sparse(target, lower, upper, pricing=pricing)
        elif persistent_available():
            node_lp = PersistentNodeLP(work)

            def relax(
                arrays: SparseArrays,
                lower: np.ndarray,
                upper: np.ndarray,
                fixed: FixedSet = frozenset(),
            ) -> LPResult:
                assert node_lp is not None
                extra = pool.cuts_for(fixed) if (pool is not None and fixed) else []
                if extra:
                    return node_lp.solve(
                        lower,
                        upper,
                        extra_rows=[cut.as_row_dict() for cut in extra],
                        extra_rhs=[cut.rhs for cut in extra],
                    )
                return node_lp.solve(lower, upper)
        else:
            def relax(
                arrays: SparseArrays,
                lower: np.ndarray,
                upper: np.ndarray,
                fixed: FixedSet = frozenset(),
            ) -> LPResult:
                target = arrays
                if pool is not None and fixed:
                    extra = pool.cuts_for(fixed)
                    if extra:
                        target = arrays.with_extra_ub_rows(
                            [cut.as_row_dict() for cut in extra],
                            [cut.rhs for cut in extra],
                        )
                return solve_lp_linprog(target, lower, upper)
    else:
        if lp_backend == "simplex":
            def relax(
                arrays: DenseArrays,
                lower: np.ndarray,
                upper: np.ndarray,
                fixed: FixedSet = frozenset(),
            ) -> LPResult:
                return solve_lp(
                    arrays.costs,
                    a_ub=arrays.a_ub,
                    b_ub=arrays.b_ub,
                    a_eq=arrays.a_eq,
                    b_eq=arrays.b_eq,
                    lower=lower,
                    upper=upper,
                    pricing=pricing,
                )
        else:
            _base_relax = _LP_BACKENDS[lp_backend]

            def relax(
                arrays: DenseArrays,
                lower: np.ndarray,
                upper: np.ndarray,
                fixed: FixedSet = frozenset(),
            ) -> LPResult:
                return _base_relax(arrays, lower, upper)

    tree: Optional[object] = None
    if warm_start and lp_backend == "simplex":
        if sparse:
            tree = SparseWarmStartTree(work, pricing=pricing)
        else:
            try:
                tree = WarmStartTree(work)
            except WarmStartUnavailable:
                tree = None

    counter = itertools.count()
    mark = time.perf_counter()
    root_state: Optional[object] = None
    if tree is not None:
        root, root_state = tree.solve_root()
        if root.status == "iteration_limit" and root_state is None:
            tree = None
            root = relax(work, work.lower, work.upper)
    else:
        root = relax(work, work.lower, work.upper)
    stats["phase_root_lp"] = time.perf_counter() - mark
    nodes_explored = 1
    lp_iterations += root.iterations
    numeric_drift = max(numeric_drift, root.rhs_violation)
    warm_hits = 0
    warm_fallbacks = 0
    pruned_by_incumbent = 0
    #: Best open node bound at an early (budget) exit; None = proven.
    interrupted_bound: Optional[float] = None
    search_mark = time.perf_counter()

    def finish(status: SolveStatus) -> Solution:
        stats.update(
            {
                "nodes": float(nodes_explored),
                "lp_iterations": float(lp_iterations),
                "warm_start_hits": float(warm_hits),
                "warm_start_fallbacks": float(warm_fallbacks),
                "pruned_by_incumbent": float(pruned_by_incumbent),
            }
        )
        stats["phase_bnb"] = time.perf_counter() - search_mark
        if numeric_drift > 0.0:
            stats["numeric_drift"] = numeric_drift
        if pool is not None:
            stats["node_cuts_pooled"] = float(len(pool))
            stats["cuts_rejected"] = float(cuts_rejected)
        if node_lp is not None:
            stats["node_lp_solves"] = float(node_lp.solves)
        if sparse and isinstance(tree, SparseWarmStartTree):
            stats["refactorizations"] = float(tree.engine.refactorizations)
            stats["bland_fallbacks"] = float(tree.engine.bland_fallbacks)
        if deadline.expired:
            stats["deadline_expired"] = 1.0
        if status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE_GAP):
            return Solution(status, stats=stats)
        assert incumbent_x is not None
        if status is SolveStatus.FEASIBLE_GAP:
            assert interrupted_bound is not None
            bound = min(interrupted_bound, incumbent_objective)
            gap = max(0.0, incumbent_objective - bound)
            scale = max(1.0, abs(incumbent_objective))
            stats["gap_absolute"] = gap
            stats["gap_relative"] = gap / scale
            stats["best_bound"] = bound + work.objective_constant
        else:
            stats["gap_absolute"] = 0.0
            stats["gap_relative"] = 0.0
        x_full = (
            reduction.restore(incumbent_x) if reduction is not None else incumbent_x
        )
        return Solution(
            status,
            objective=incumbent_objective + work.objective_constant,
            values=model.solution_values(x_full),
            stats=stats,
        )

    if root.status == "infeasible":
        # A feasible seed contradicts an infeasible relaxation only
        # through numerics; trust the relaxation as before.
        return finish(SolveStatus.INFEASIBLE)
    if root.status == "unbounded":
        return finish(SolveStatus.UNBOUNDED)
    if root.status != "optimal":
        return finish(SolveStatus.ERROR)

    pseudo = _PseudoCosts()

    # Heap of (bound, tiebreak, node)
    heap: List[Tuple[float, int, _Node]] = []
    heapq.heappush(
        heap, (root.objective, next(counter), _Node(None, root, root_state))
    )

    while heap:
        bound, _, node = heapq.heappop(heap)
        if pruning_bound(bound) >= incumbent_objective - gap_tolerance:
            break  # best-first: every open node is at least this bad
        if deadline.expired:
            # Anytime exit: best-first order makes this node's bound a
            # valid lower bound on every open solution.
            interrupted_bound = bound
            break
        lp = node.lp
        assert lp.x is not None
        branch_index, branch_fraction = _select_branch_variable(
            lp.x, work.integral, branching, pseudo
        )
        if branch_index < 0:
            # Integral: candidate incumbent (round away LP noise).
            candidate = lp.x.copy()
            for index in work.integral:
                candidate[index] = round(candidate[index])
            objective = float(work.costs @ candidate)
            if objective < incumbent_objective - gap_tolerance:
                incumbent_objective = objective
                incumbent_x = candidate
            continue
        if nodes_explored >= max_nodes:
            interrupted_bound = bound
            break
        value = lp.x[branch_index]
        node_low, node_high = _bounds_of_variable(work, node.delta, branch_index)
        parent_objective = lp.objective if lp.objective is not None else bound
        node_fixed: FixedSet = frozenset()
        if pool is not None:
            node_fixed = _fixed_set(node.delta)
            if (
                node.delta is not None
                and len(pool) < NODE_CUT_POOL_CAP
                and nodes_explored <= NODE_CUT_NODE_CAP
            ):
                # Separate cover cuts under this node's bound box; they
                # are valid for (and pooled under) exactly its subtree.
                sep_lower, sep_upper = _materialise_bounds(work, node.delta)
                # A node cut only claims validity inside this subtree's
                # bound box, so the incumbent witness applies exactly
                # when it lives in that box.
                node_witnesses = None
                if incumbent_x is not None and bool(
                    np.all(incumbent_x >= sep_lower - 1e-9)
                    and np.all(incumbent_x <= sep_upper + 1e-9)
                ):
                    node_witnesses = [incumbent_x]
                for cut in cover_cuts(
                    work,
                    lp.x,
                    sep_lower,
                    sep_upper,
                    max_cuts=NODE_CUTS_PER_NODE,
                ):
                    if cut_rejected_by_witness(cut, node_witnesses):
                        cuts_rejected += 1
                        continue
                    pool.add(node_fixed, cut)
        for direction in ("down", "up"):
            if direction == "down":
                side, branch_bound = "upper", float(math.floor(value))
                if branch_bound < node_low:
                    continue
            else:
                side, branch_bound = "lower", float(math.ceil(value))
                if branch_bound > node_high:
                    continue
            child_delta = _BoundDelta(node.delta, branch_index, side, branch_bound)
            child_fixed: FixedSet = frozenset()
            if pool is not None:
                child_fixed = node_fixed | {(branch_index, side, branch_bound)}
            child_state: Optional[object] = None
            if tree is not None and node.state is not None:
                child, child_state = tree.solve_child(
                    node.state, branch_index, side, branch_bound
                )
                if child.status == "iteration_limit" and child_state is None:
                    # Warm path capped out; cold-solve this node.
                    warm_fallbacks += 1
                    lp_iterations += child.iterations
                    child_lower, child_upper = _materialise_bounds(work, child_delta)
                    child = relax(work, child_lower, child_upper, child_fixed)
                else:
                    warm_hits += 1
            else:
                child_lower, child_upper = _materialise_bounds(work, child_delta)
                child = relax(work, child_lower, child_upper, child_fixed)
            nodes_explored += 1
            lp_iterations += child.iterations
            numeric_drift = max(numeric_drift, child.rhs_violation)
            if child.status != "optimal":
                continue
            assert child.objective is not None
            pseudo.update(
                branch_index,
                direction,
                branch_fraction,
                child.objective - parent_objective,
            )
            if pruning_bound(child.objective) >= incumbent_objective - gap_tolerance:
                pruned_by_incumbent += 1
                continue
            heapq.heappush(
                heap,
                (
                    child.objective,
                    next(counter),
                    _Node(child_delta, child, child_state),
                ),
            )

    if incumbent_x is None:
        if interrupted_bound is not None or nodes_explored >= max_nodes:
            return finish(SolveStatus.ITERATION_LIMIT)
        return finish(SolveStatus.INFEASIBLE)
    if interrupted_bound is not None:
        return finish(SolveStatus.FEASIBLE_GAP)
    return finish(SolveStatus.OPTIMAL)
