"""Lowering a :class:`~repro.milp.model.MILPModel` to dense arrays.

Both the branch-and-bound search and the presolve pass work on the
same dense representation::

    min  costs . x  (+ objective_constant)
    s.t. a_ub x <= b_ub
         a_eq x  = b_eq
         lower <= x <= upper
         x_j integral  for j in integral

``>=`` rows are negated into ``<=`` rows during lowering, so consumers
only ever see the two row families above.  The arrays are lowered
*once* per solve and shared by every node of the search tree; nodes
describe themselves as bound deltas against these shared arrays (see
:mod:`repro.milp.branch_and_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.milp.model import MILPModel, Sense
from repro.milp.sparse import CSRMatrix, SparseArrays


@dataclass
class DenseArrays:
    """The model lowered to dense arrays, shared by all nodes."""

    costs: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integral: List[int]
    objective_constant: float

    @property
    def n(self) -> int:
        return self.costs.shape[0]


def lower_model(model: MILPModel) -> DenseArrays:
    """Densify *model* into a :class:`DenseArrays` instance."""
    n = model.n_variables
    costs = np.zeros(n)
    for index, coefficient in model.objective.coefficients.items():
        costs[index] = coefficient
    ub_rows: List[np.ndarray] = []
    ub_rhs: List[float] = []
    eq_rows: List[np.ndarray] = []
    eq_rhs: List[float] = []
    for constraint in model.constraints:
        row = np.zeros(n)
        for index, coefficient in constraint.expr.coefficients.items():
            row[index] = coefficient
        if constraint.sense is Sense.LE:
            ub_rows.append(row)
            ub_rhs.append(constraint.rhs)
        elif constraint.sense is Sense.GE:
            ub_rows.append(-row)
            ub_rhs.append(-constraint.rhs)
        else:
            eq_rows.append(row)
            eq_rhs.append(constraint.rhs)
    lower = np.array([v.lower for v in model.variables])
    upper = np.array([v.upper for v in model.variables])
    integral = [v.index for v in model.variables if v.var_type.is_integral]
    return DenseArrays(
        costs=costs,
        a_ub=np.array(ub_rows) if ub_rows else np.zeros((0, n)),
        b_ub=np.array(ub_rhs),
        a_eq=np.array(eq_rows) if eq_rows else np.zeros((0, n)),
        b_eq=np.array(eq_rhs),
        lower=lower,
        upper=upper,
        integral=integral,
        objective_constant=model.objective.constant,
    )


def lower_model_sparse(model: MILPModel) -> SparseArrays:
    """Lower *model* to CSR blocks without materialising dense rows.

    Deliberately an independent implementation from :func:`lower_model`
    (it never allocates an ``(m, n)`` array), so the equivalence
    property tests in ``tests/test_sparse_lowering.py`` compare two
    genuinely different code paths.  The contract is identical:
    constraint order is preserved within each block and ``>=`` rows are
    negated into ``<=`` rows.
    """
    n = model.n_variables
    costs = np.zeros(n)
    for index, coefficient in model.objective.coefficients.items():
        costs[index] = coefficient
    ub_rows: List[Dict[int, float]] = []
    ub_rhs: List[float] = []
    eq_rows: List[Dict[int, float]] = []
    eq_rhs: List[float] = []
    for constraint in model.constraints:
        coefficients = constraint.expr.coefficients
        if constraint.sense is Sense.LE:
            ub_rows.append(dict(coefficients))
            ub_rhs.append(constraint.rhs)
        elif constraint.sense is Sense.GE:
            ub_rows.append({j: -c for j, c in coefficients.items()})
            ub_rhs.append(-constraint.rhs)
        else:
            eq_rows.append(dict(coefficients))
            eq_rhs.append(constraint.rhs)
    return SparseArrays(
        costs=costs,
        a_ub=CSRMatrix.from_row_dicts(ub_rows, n),
        b_ub=np.asarray(ub_rhs, dtype=float),
        a_eq=CSRMatrix.from_row_dicts(eq_rows, n),
        b_eq=np.asarray(eq_rhs, dtype=float),
        lower=np.array([v.lower for v in model.variables]),
        upper=np.array([v.upper for v in model.variables]),
        integral=[v.index for v in model.variables if v.var_type.is_integral],
        objective_constant=model.objective.constant,
    )
