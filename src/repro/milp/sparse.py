"""Compressed sparse row (CSR) matrices for the MILP solve path.

The grounded repair instances ``S*(AC)`` are naturally sparse: each
ground row touches a handful of cells (a steadiness row mentions two
periods, a Big-M link row one measure and one touch indicator), so the
constraint matrices run at 1-3% density even on small documents and
get *sparser* as instances grow.  The dense ``(m, n)`` arrays of
:mod:`repro.milp.lowering` were adequate for the paper-sized examples
but waste memory and per-pivot work quadratically at the e4/e5 scale.

This module is the shared sparse substrate:

- :class:`CSRMatrix` -- the classic ``indptr`` / ``indices`` / ``data``
  triplet over numpy arrays, with vectorised ``matvec`` / ``rmatvec``
  and deterministic (sorted-column) row storage;
- :class:`CSCView` -- the column-major companion built once per matrix
  for pricing loops that walk columns (revised simplex, cut
  separation);
- :class:`SparseArrays` -- the sparse twin of
  :class:`~repro.milp.lowering.DenseArrays`, shared by presolve, the
  revised simplex, the warm-start tree, the cutting-plane layer and
  the persistent HiGHS node LP.

Everything here is numpy-only; conversion helpers to
``scipy.sparse`` exist for the scipy-backed solvers but import scipy
lazily so the from-scratch path stays dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

INF = math.inf


class CSRMatrix:
    """An immutable CSR matrix: ``indptr`` / ``indices`` / ``data``.

    Row ``i`` holds its column indices in
    ``indices[indptr[i]:indptr[i+1]]`` (strictly increasing -- the
    constructor canonicalises) and the matching coefficients in
    ``data``.  Explicit zeros are dropped so equality of the triplet
    arrays is equality of the matrices.
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_row_ids", "_csc")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=float)
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError("indptr length must be n_rows + 1")
        if self.indices.shape[0] != self.data.shape[0]:
            raise ValueError("indices and data must have equal length")
        self._row_ids: Optional[np.ndarray] = None
        self._csc: Optional["CSCView"] = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_row_dicts(
        cls, rows: Sequence[Dict[int, float]], n_columns: int
    ) -> "CSRMatrix":
        """Build from per-row ``{column: coefficient}`` dicts.

        Columns are sorted within each row and zero coefficients are
        dropped, so two dicts describing the same row produce identical
        storage regardless of insertion order.
        """
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        indices: List[int] = []
        data: List[float] = []
        for i, row in enumerate(rows):
            items = sorted(
                (int(j), float(c)) for j, c in row.items() if float(c) != 0.0
            )
            indptr[i + 1] = indptr[i] + len(items)
            indices.extend(j for j, _ in items)
            data.extend(c for _, c in items)
        return cls(
            (len(rows), n_columns),
            indptr,
            np.asarray(indices, dtype=np.int64),
            np.asarray(data, dtype=float),
        )

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "CSRMatrix":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("from_dense needs a 2-D array")
        m, n = matrix.shape
        mask = matrix != 0.0
        counts = mask.sum(axis=1)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls((m, n), indptr, cols.astype(np.int64), matrix[rows, cols])

    @classmethod
    def empty(cls, n_columns: int) -> "CSRMatrix":
        return cls(
            (0, n_columns),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=float),
        )

    # -- basic properties -----------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @property
    def row_ids(self) -> np.ndarray:
        """Row index of every stored entry (length ``nnz``), cached."""
        if self._row_ids is None:
            counts = np.diff(self.indptr)
            self._row_ids = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), counts
            )
        return self._row_ids

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(column indices, coefficients)`` of row *i* (views)."""
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    # -- linear algebra --------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` without densifying."""
        if self.shape[0] == 0:
            return np.zeros(0)
        products = self.data * np.asarray(x, dtype=float)[self.indices]
        return np.bincount(
            self.row_ids, weights=products, minlength=self.shape[0]
        )

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``A.T @ y`` without densifying."""
        if self.nnz == 0:
            return np.zeros(self.shape[1])
        products = self.data * np.asarray(y, dtype=float)[self.row_ids]
        return np.bincount(self.indices, weights=products, minlength=self.shape[1])

    # -- conversions -----------------------------------------------------

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        if self.nnz:
            out[self.row_ids, self.indices] = self.data
        return out

    @property
    def csc(self) -> "CSCView":
        """The column-major view, built once and cached."""
        if self._csc is None:
            self._csc = CSCView.from_csr(self)
        return self._csc

    def to_scipy(self):
        """As a ``scipy.sparse.csr_matrix`` (lazy scipy import)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    # -- structural edits (all return new matrices) ----------------------

    def vstack_rows(
        self, rows: Sequence[Dict[int, float]]
    ) -> "CSRMatrix":
        """This matrix with *rows* appended below."""
        extra = CSRMatrix.from_row_dicts(rows, self.shape[1])
        indptr = np.concatenate(
            [self.indptr, self.indptr[-1] + extra.indptr[1:]]
        )
        return CSRMatrix(
            (self.shape[0] + extra.shape[0], self.shape[1]),
            indptr,
            np.concatenate([self.indices, extra.indices]),
            np.concatenate([self.data, extra.data]),
        )

    def __eq__(self, other: object) -> bool:  # pragma: no cover - debug aid
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


class CSCView:
    """Column-major companion of a :class:`CSRMatrix`.

    Built once per matrix (a stable counting sort of the CSR triplet)
    and used by every pass that walks columns: revised-simplex pricing
    reads ``column(j)`` to form ``B^-1 A_j``, and the vectorised
    reduced-cost sweep uses the flat arrays directly.
    """

    __slots__ = ("shape", "indptr", "rows", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        rows: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = shape
        self.indptr = indptr
        self.rows = rows
        self.data = data

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCView":
        m, n = csr.shape
        order = np.argsort(csr.indices, kind="stable")
        rows = csr.row_ids[order]
        data = csr.data[order]
        counts = np.bincount(csr.indices, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls((m, n), indptr, rows, data)

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row indices, coefficients)`` of column *j* (views)."""
        start, stop = self.indptr[j], self.indptr[j + 1]
        return self.rows[start:stop], self.data[start:stop]

    def column_norms_sq(self) -> np.ndarray:
        """``||A_j||^2`` for every column (steepest-edge-lite weights)."""
        if self.data.shape[0] == 0:
            return np.zeros(self.shape[1])
        col_ids = np.repeat(
            np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
        )
        return np.bincount(
            col_ids, weights=self.data * self.data, minlength=self.shape[1]
        )


@dataclass
class SparseArrays:
    """The model lowered to CSR blocks, shared by all sparse passes.

    The same contract as :class:`~repro.milp.lowering.DenseArrays`
    (``>=`` rows already negated into ``<=`` rows), with the two
    constraint blocks stored as :class:`CSRMatrix`.
    """

    costs: np.ndarray
    a_ub: CSRMatrix
    b_ub: np.ndarray
    a_eq: CSRMatrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integral: List[int]
    objective_constant: float

    @property
    def n(self) -> int:
        return self.costs.shape[0]

    @property
    def m_ub(self) -> int:
        return self.a_ub.shape[0]

    @property
    def m_eq(self) -> int:
        return self.a_eq.shape[0]

    def to_dense_arrays(self):
        """Densify into the legacy :class:`DenseArrays` shape."""
        from repro.milp.lowering import DenseArrays

        return DenseArrays(
            costs=self.costs.copy(),
            a_ub=self.a_ub.to_dense(),
            b_ub=self.b_ub.copy(),
            a_eq=self.a_eq.to_dense(),
            b_eq=self.b_eq.copy(),
            lower=self.lower.copy(),
            upper=self.upper.copy(),
            integral=list(self.integral),
            objective_constant=self.objective_constant,
        )

    @classmethod
    def from_dense_arrays(cls, arrays) -> "SparseArrays":
        return cls(
            costs=np.asarray(arrays.costs, dtype=float),
            a_ub=CSRMatrix.from_dense(arrays.a_ub),
            b_ub=np.asarray(arrays.b_ub, dtype=float),
            a_eq=CSRMatrix.from_dense(arrays.a_eq),
            b_eq=np.asarray(arrays.b_eq, dtype=float),
            lower=np.asarray(arrays.lower, dtype=float),
            upper=np.asarray(arrays.upper, dtype=float),
            integral=list(arrays.integral),
            objective_constant=float(arrays.objective_constant),
        )

    def with_extra_ub_rows(
        self, rows: Sequence[Dict[int, float]], rhs: Sequence[float]
    ) -> "SparseArrays":
        """A copy with *rows* appended to the ``<=`` block (cut rows)."""
        return SparseArrays(
            costs=self.costs,
            a_ub=self.a_ub.vstack_rows(rows),
            b_ub=np.concatenate([self.b_ub, np.asarray(rhs, dtype=float)]),
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            lower=self.lower,
            upper=self.upper,
            integral=self.integral,
            objective_constant=self.objective_constant,
        )
