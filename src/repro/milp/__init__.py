"""Mixed-integer linear programming substrate.

The paper computes card-minimal repairs by solving the MILP instance
``S*(AC)`` with a commercial solver (LINDO API 4.0).  This package
provides the solver substrate from scratch:

- :mod:`repro.milp.model` -- variables (real / integer / binary),
  linear expressions, constraints, and the model object;
- :mod:`repro.milp.simplex` -- a dense primal simplex (Big-M phase
  handling, Bland's anti-cycling rule) written against numpy only;
- :mod:`repro.milp.branch_and_bound` -- best-first branch-and-bound
  with a pluggable LP-relaxation backend;
- :mod:`repro.milp.scipy_backend` -- a thin adapter over
  ``scipy.optimize.milp`` (HiGHS);
- :mod:`repro.milp.solver` -- the ``solve()`` facade selecting a
  backend.

The two independent backends ("bnb" and "scipy") are cross-checked in
the test suite: for every solvable model they must agree on the
optimal objective value.
"""

from repro.milp.model import (
    Constraint,
    LinExpr,
    MILPModel,
    ModelError,
    Sense,
    SolveStatus,
    Solution,
    Variable,
    VarType,
)
from repro.milp.mps import MpsError, read_mps, write_mps
from repro.milp.solver import available_backends, solve

__all__ = [
    "VarType",
    "Variable",
    "LinExpr",
    "Sense",
    "Constraint",
    "MILPModel",
    "ModelError",
    "Solution",
    "SolveStatus",
    "solve",
    "available_backends",
    "read_mps",
    "write_mps",
    "MpsError",
]
