"""Mixed-integer linear programming substrate.

The paper computes card-minimal repairs by solving the MILP instance
``S*(AC)`` with a commercial solver (LINDO API 4.0).  This package
provides the solver substrate from scratch:

- :mod:`repro.milp.model` -- variables (real / integer / binary),
  linear expressions, constraints, and the model object;
- :mod:`repro.milp.simplex` -- a dense primal (and dual) simplex with
  Dantzig pricing and Bland anti-cycling, written against numpy only;
- :mod:`repro.milp.lowering` -- the shared dense-array form every
  solver-side pass consumes;
- :mod:`repro.milp.presolve` -- bound propagation, forced fixings and
  big-M coefficient tightening ahead of the search;
- :mod:`repro.milp.warmstart` -- parent-basis warm starts for the node
  LPs of the simplex-backed search;
- :mod:`repro.milp.branch_and_bound` -- best-first branch-and-bound
  with pseudo-cost branching and a pluggable LP-relaxation backend;
- :mod:`repro.milp.scipy_backend` -- a thin adapter over
  ``scipy.optimize.milp`` (HiGHS);
- :mod:`repro.milp.solver` -- the ``solve()`` facade selecting a
  backend, plus the instrumented ``solve_with_stats()`` emitting
  :class:`~repro.milp.solver.SolveStats`;
- :mod:`repro.milp.iis` -- deletion-filtering IIS extraction for
  infeasible models (the forensics behind ``--explain-infeasible``);
- :mod:`repro.milp.fingerprint` -- canonical model hashing;
- :mod:`repro.milp.cache` -- the LRU solve cache keyed by canonical
  fingerprints (identical grounded MILPs skip the solver).

The two independent backends ("bnb" and "scipy") are cross-checked in
the test suite: for every solvable model they must agree on the
optimal objective value.
"""

from repro.milp.model import (
    Constraint,
    LinExpr,
    MILPModel,
    ModelError,
    Sense,
    SolveStatus,
    Solution,
    Variable,
    VarType,
)
from repro.milp.cache import CacheInfo, SolveCache
from repro.milp.fingerprint import canonical_fingerprint
from repro.milp.iis import IISError, IISMember, IISResult, extract_iis
from repro.milp.lowering import DenseArrays, lower_model
from repro.milp.mps import MpsError, read_mps, write_mps
from repro.milp.presolve import PresolveResult, PresolveStats, presolve_arrays
from repro.milp.warmstart import WarmStartTree, WarmStartUnavailable
from repro.milp.solver import (
    FALLBACK_BACKEND,
    SolveStats,
    available_backends,
    solve,
    solve_with_stats,
)

__all__ = [
    "SolveCache",
    "CacheInfo",
    "SolveStats",
    "solve_with_stats",
    "canonical_fingerprint",
    "FALLBACK_BACKEND",
    "VarType",
    "Variable",
    "LinExpr",
    "Sense",
    "Constraint",
    "MILPModel",
    "ModelError",
    "Solution",
    "SolveStatus",
    "solve",
    "available_backends",
    "read_mps",
    "write_mps",
    "MpsError",
    "DenseArrays",
    "lower_model",
    "PresolveResult",
    "PresolveStats",
    "presolve_arrays",
    "IISError",
    "IISMember",
    "IISResult",
    "extract_iis",
    "WarmStartTree",
    "WarmStartUnavailable",
]
