"""Adapter over ``scipy.optimize.milp`` (the HiGHS solver).

This is the production backend: fast, numerically robust, and entirely
independent from the from-scratch branch-and-bound in
:mod:`repro.milp.branch_and_bound`, which makes it a cross-check oracle
in the test suite.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.milp.model import MILPModel, Sense, Solution, SolveStatus, VarType


def solve_scipy(model: MILPModel, *, time_limit: float = 300.0) -> Solution:
    """Solve *model* with ``scipy.optimize.milp``."""
    n = model.n_variables
    if n == 0:
        # A variable-free model is trivially optimal at its constant.
        return Solution(
            SolveStatus.OPTIMAL, objective=model.objective.constant, values={}
        )
    costs = np.zeros(n)
    for index, coefficient in model.objective.coefficients.items():
        costs[index] = coefficient

    integrality = np.zeros(n)
    for variable in model.variables:
        if variable.var_type.is_integral:
            integrality[variable.index] = 1

    lower = np.array([v.lower for v in model.variables])
    upper = np.array([v.upper for v in model.variables])

    # The constraint block goes to HiGHS as a scipy.sparse CSR matrix
    # built straight from the model's coefficient dicts: the grounded
    # DART instances are ~3 nonzeros per row, so densifying them both
    # wasted memory and made HiGHS re-sparsify on entry.  An empty
    # (0, n) block is skipped outright instead of being passed as a
    # degenerate dense array.
    constraints: List[LinearConstraint] = []
    if model.constraints:
        from scipy.sparse import csr_matrix

        row_ids: List[int] = []
        col_ids: List[int] = []
        data: List[float] = []
        lo = np.zeros(model.n_constraints)
        hi = np.zeros(model.n_constraints)
        for i, constraint in enumerate(model.constraints):
            for index, coefficient in sorted(constraint.expr.coefficients.items()):
                row_ids.append(i)
                col_ids.append(index)
                data.append(float(coefficient))
            if constraint.sense is Sense.LE:
                lo[i], hi[i] = -np.inf, constraint.rhs
            elif constraint.sense is Sense.GE:
                lo[i], hi[i] = constraint.rhs, np.inf
            else:
                lo[i] = hi[i] = constraint.rhs
        matrix = csr_matrix(
            (data, (row_ids, col_ids)), shape=(model.n_constraints, n)
        )
        constraints.append(LinearConstraint(matrix, lo, hi))

    result = milp(
        c=costs,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options={"time_limit": time_limit},
    )
    if result.status in (2, 4):
        # Some HiGHS builds mis-handle presolve (status 4 "solve error",
        # and occasionally a spurious status 2 "infeasible") on models
        # mixing integrality with wide bounds; re-run without presolve
        # to confirm or correct the verdict.
        result = milp(
            c=costs,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lower, upper),
            options={"time_limit": time_limit, "presolve": False},
        )

    stats = {"nodes": float(getattr(result, "mip_node_count", 0) or 0)}
    if result.status == 0 and result.x is not None:
        x = np.asarray(result.x, dtype=float)
        # Snap integral variables: HiGHS returns values within tolerance.
        for variable in model.variables:
            if variable.var_type.is_integral:
                x[variable.index] = round(x[variable.index])
        return Solution(
            SolveStatus.OPTIMAL,
            objective=float(costs @ x) + model.objective.constant,
            values=model.solution_values(x),
            stats=stats,
        )
    if result.status == 2:
        return Solution(SolveStatus.INFEASIBLE, stats=stats)
    if result.status == 3:
        return Solution(SolveStatus.UNBOUNDED, stats=stats)
    if result.status == 1:
        # Time/iteration limit.  When HiGHS hands back an incumbent it
        # is a feasible point with a certified dual bound: return the
        # anytime (feasible_gap) solution rather than a bare failure.
        if result.x is not None:
            x = np.asarray(result.x, dtype=float)
            for variable in model.variables:
                if variable.var_type.is_integral:
                    x[variable.index] = round(x[variable.index])
            if model.check_feasible(x):
                objective = float(costs @ x) + model.objective.constant
                dual_bound = getattr(result, "mip_dual_bound", None)
                if dual_bound is not None and np.isfinite(dual_bound):
                    bound = float(dual_bound) + model.objective.constant
                else:
                    bound = -np.inf
                gap = max(0.0, objective - bound)
                stats["gap_absolute"] = gap
                stats["gap_relative"] = gap / max(1.0, abs(objective))
                stats["best_bound"] = bound
                stats["deadline_expired"] = 1.0
                return Solution(
                    SolveStatus.FEASIBLE_GAP,
                    objective=objective,
                    values=model.solution_values(x),
                    stats=stats,
                )
        stats["deadline_expired"] = 1.0
        return Solution(SolveStatus.ITERATION_LIMIT, stats=stats)
    return Solution(SolveStatus.ERROR, stats=stats)
