"""A dense two-phase primal simplex solver.

This is the LP core under the "bnb" MILP backend.  It is written
against numpy only and trades speed for transparency: a full tableau,
two phases (artificial variables first, real objective second), and
Dantzig pricing with a Bland's-rule fallback that engages when a long
degenerate pivot run suggests cycling.  Problem sizes produced by the
DART translation are modest (one row per ground constraint, a handful
of variables per row), so a dense tableau is entirely adequate; the
scipy/HiGHS backend exists for larger sweeps and for cross-checking.

The entry point :func:`solve_lp` accepts the problem in the general
bounded form::

    min  c . x
    s.t. A_ub x <= b_ub
         A_eq x  = b_eq
         lower <= x <= upper   (entries may be +/- inf)

and handles the bound transformations internally (shift for finite
lower bounds, reflection for upper-bounded-only variables, splitting
for free variables).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

INF = math.inf

#: Pivot tolerance: entries smaller than this are treated as zero.
PIVOT_TOL = 1e-9
#: Optimality tolerance on reduced costs.
COST_TOL = 1e-9
#: Feasibility tolerance on phase-1 objective.
FEAS_TOL = 1e-7

#: Pricing rules accepted by :func:`solve_lp`.
PRICING_DANTZIG = "dantzig"
PRICING_BLAND = "bland"


@dataclass
class LPResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    iterations: int = 0
    #: Largest RHS infeasibility drift observed during pivoting that
    #: exceeded ``FEAS_TOL`` (0.0 when the solve stayed numerically
    #: clean).  Values within ``FEAS_TOL`` of zero are clamped as
    #: harmless elimination noise; anything larger is surfaced here
    #: instead of being silently masked.
    rhs_violation: float = 0.0

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def numerically_clean(self) -> bool:
        """No infeasibility drift beyond ``FEAS_TOL`` was observed.

        The numerics governor treats an unclean LP as a reason to
        distrust (and re-certify) everything derived from its basis.
        """
        return self.rhs_violation == 0.0


class _Tableau:
    """The working tableau ``[B^-1 A | B^-1 b]`` plus the basis list."""

    def __init__(self, matrix: np.ndarray, rhs: np.ndarray, basis: List[int]) -> None:
        self.matrix = matrix  # m x n
        self.rhs = rhs  # m
        self.basis = basis  # m basis column indices
        self.iterations = 0
        self.rhs_violation = 0.0

    def pivot(self, row: int, column: int, clamp: bool = True) -> None:
        pivot_value = self.matrix[row, column]
        self.matrix[row] /= pivot_value
        self.rhs[row] /= pivot_value
        column_values = self.matrix[:, column].copy()
        column_values[row] = 0.0
        mask = np.abs(column_values) > PIVOT_TOL
        if mask.any():
            self.matrix[mask] -= np.outer(column_values[mask], self.matrix[row])
            self.rhs[mask] -= column_values[mask] * self.rhs[row]
        if clamp:
            # Clamp only noise-sized negatives; a larger negative RHS is
            # genuine infeasibility drift and must stay visible (it is
            # surfaced through LPResult.rhs_violation).
            noise = (self.rhs < 0.0) & (self.rhs > -FEAS_TOL)
            if noise.any():
                self.rhs[noise] = 0.0
            worst = float(self.rhs.min()) if self.rhs.size else 0.0
            if worst < -FEAS_TOL:
                self.rhs_violation = max(self.rhs_violation, -worst)
        self.basis[row] = column
        self.iterations += 1


def _run_simplex(
    tableau: _Tableau,
    costs: np.ndarray,
    allowed: np.ndarray,
    max_iterations: int,
    pricing: str = PRICING_DANTZIG,
) -> str:
    """Pivot until optimal / unbounded / iteration limit.

    *allowed* masks columns permitted to enter the basis (phase 2 bars
    the artificial columns).  Dantzig pricing (most negative reduced
    cost) by default; a run of degenerate pivots longer than the cycle
    threshold switches to Bland's rule, which guarantees termination in
    exact arithmetic.  ``pricing="bland"`` uses Bland's rule throughout.
    """
    m, n = tableau.matrix.shape
    use_bland = pricing == PRICING_BLAND
    cycle_threshold = 50 + 2 * (m + n)
    degenerate_run = 0
    while tableau.iterations < max_iterations:
        basis_costs = costs[tableau.basis]
        # Reduced costs r_j = c_j - cB . T[:, j] for all columns at once.
        reduced = costs - basis_costs @ tableau.matrix
        eligible = allowed & (reduced < -COST_TOL)
        if not eligible.any():
            return "optimal"
        if use_bland:
            entering = int(np.argmax(eligible))  # smallest eligible index
        else:
            entering = int(np.argmin(np.where(eligible, reduced, 0.0)))
        pivot_column = tableau.matrix[:, entering]
        positive = pivot_column > PIVOT_TOL
        if not positive.any():
            return "unbounded"
        ratios = np.full(m, INF)
        ratios[positive] = tableau.rhs[positive] / pivot_column[positive]
        best_ratio = float(ratios.min())
        # Break ratio ties on the smallest basis variable (the
        # Bland-style tie-break) so degenerate ties cannot ping-pong.
        tied = np.flatnonzero(ratios <= best_ratio + PIVOT_TOL)
        leaving_row = int(min(tied, key=lambda r: tableau.basis[r]))
        objective_before = float(basis_costs @ tableau.rhs)
        tableau.pivot(leaving_row, entering)
        if not use_bland:
            objective_after = float(costs[tableau.basis] @ tableau.rhs)
            if objective_after >= objective_before - 1e-12:
                degenerate_run += 1
                if degenerate_run > cycle_threshold:
                    use_bland = True  # probable cycling: go anti-cycling
            else:
                degenerate_run = 0
    return "iteration_limit"


def _run_dual_simplex(
    tableau: _Tableau,
    costs: np.ndarray,
    allowed: np.ndarray,
    max_iterations: int,
) -> str:
    """Dual simplex: restore primal feasibility from a dual-feasible basis.

    Precondition: the reduced costs of *allowed* columns are (near)
    nonnegative -- e.g. the tableau is a previously optimal basis whose
    RHS was perturbed by a bound change.  Used by the warm-start path in
    :mod:`repro.milp.warmstart`.  Pivots never clamp the RHS: negative
    entries are exactly the infeasibilities being repaired.
    """
    n = tableau.matrix.shape[1]
    while tableau.iterations < max_iterations:
        leaving_row = int(np.argmin(tableau.rhs))
        if tableau.rhs[leaving_row] >= -FEAS_TOL:
            return "optimal"
        row = tableau.matrix[leaving_row]
        candidates = np.flatnonzero(allowed & (row < -PIVOT_TOL))
        if candidates.size == 0:
            # The row reads  (nonnegative terms) = negative  -- primal
            # infeasible for every completion.
            return "infeasible"
        basis_costs = costs[tableau.basis]
        reduced = costs - basis_costs @ tableau.matrix
        ratios = np.maximum(reduced[candidates], 0.0) / -row[candidates]
        best = float(ratios.min())
        tied = candidates[ratios <= best + PIVOT_TOL]
        entering = int(tied.min())  # Bland-style tie-break
        tableau.pivot(leaving_row, entering, clamp=False)
    return "iteration_limit"


@dataclass
class _BoundTransform:
    """How one original variable maps into the standardised variables."""

    kind: str  # "shift" | "reflect" | "split"
    offset: float  # l for shift, u for reflect, 0 for split
    primary: int  # standardised column index
    secondary: int = -1  # second column for "split"


def solve_lp(
    costs: Sequence[float],
    a_ub: Optional[np.ndarray] = None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq: Optional[np.ndarray] = None,
    b_eq: Optional[Sequence[float]] = None,
    lower: Optional[Sequence[float]] = None,
    upper: Optional[Sequence[float]] = None,
    max_iterations: int = 50_000,
    pricing: str = PRICING_DANTZIG,
) -> LPResult:
    """Solve the bounded-form LP described in the module docstring.

    ``pricing`` selects the entering-column rule: ``"dantzig"`` (the
    default; falls back to Bland's rule on suspected cycling) or
    ``"bland"`` (anti-cycling throughout, the pre-overhaul behaviour).
    """
    if pricing not in (PRICING_DANTZIG, PRICING_BLAND):
        raise ValueError(
            f"unknown pricing rule {pricing!r}; choose "
            f"{PRICING_DANTZIG!r} or {PRICING_BLAND!r}"
        )
    c = np.asarray(costs, dtype=float)
    n_original = c.shape[0]
    a_ub = np.zeros((0, n_original)) if a_ub is None else np.asarray(a_ub, dtype=float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
    a_eq = np.zeros((0, n_original)) if a_eq is None else np.asarray(a_eq, dtype=float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    lo = np.full(n_original, -INF) if lower is None else np.asarray(lower, dtype=float)
    hi = np.full(n_original, INF) if upper is None else np.asarray(upper, dtype=float)

    if a_ub.shape != (b_ub.shape[0], n_original) or a_eq.shape != (
        b_eq.shape[0],
        n_original,
    ):
        raise ValueError("constraint matrix shapes do not match")
    if np.any(lo > hi):
        return LPResult(status="infeasible")

    # ------------------------------------------------------------------
    # Standardise variables to x' >= 0.
    # ------------------------------------------------------------------
    transforms: List[_BoundTransform] = []
    n_standard = 0
    extra_ub_rows: List[Tuple[int, float]] = []  # (std column, bound) rows x' <= B
    for j in range(n_original):
        if lo[j] == -INF and hi[j] == INF:
            transforms.append(_BoundTransform("split", 0.0, n_standard, n_standard + 1))
            n_standard += 2
        elif lo[j] == -INF:
            # x = u - x''  with x'' >= 0
            transforms.append(_BoundTransform("reflect", hi[j], n_standard))
            n_standard += 1
        else:
            # x = l + x'  with x' >= 0 (and x' <= u - l if u finite)
            transforms.append(_BoundTransform("shift", lo[j], n_standard))
            if hi[j] != INF:
                extra_ub_rows.append((n_standard, hi[j] - lo[j]))
            n_standard += 1

    def standardise_matrix(matrix: np.ndarray, rhs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rewrite rows over original vars into rows over standard vars."""
        rows = matrix.shape[0]
        out = np.zeros((rows, n_standard))
        adjusted = rhs.astype(float).copy()
        for j, transform in enumerate(transforms):
            column = matrix[:, j]
            if transform.kind == "shift":
                out[:, transform.primary] += column
                adjusted -= column * transform.offset
            elif transform.kind == "reflect":
                out[:, transform.primary] -= column
                adjusted -= column * transform.offset
            else:  # split
                out[:, transform.primary] += column
                out[:, transform.secondary] -= column
        return out, adjusted

    std_ub, rhs_ub = standardise_matrix(a_ub, b_ub)
    std_eq, rhs_eq = standardise_matrix(a_eq, b_eq)

    if extra_ub_rows:
        bound_matrix = np.zeros((len(extra_ub_rows), n_standard))
        bound_rhs = np.zeros(len(extra_ub_rows))
        for row, (column, bound) in enumerate(extra_ub_rows):
            bound_matrix[row, column] = 1.0
            bound_rhs[row] = bound
        std_ub = np.vstack([std_ub, bound_matrix])
        rhs_ub = np.concatenate([rhs_ub, bound_rhs])

    # Standardised costs and objective offset.
    std_costs = np.zeros(n_standard)
    objective_offset = 0.0
    for j, transform in enumerate(transforms):
        if transform.kind == "shift":
            std_costs[transform.primary] += c[j]
            objective_offset += c[j] * transform.offset
        elif transform.kind == "reflect":
            std_costs[transform.primary] -= c[j]
            objective_offset += c[j] * transform.offset
        else:
            std_costs[transform.primary] += c[j]
            std_costs[transform.secondary] -= c[j]

    # ------------------------------------------------------------------
    # Assemble the phase-1 tableau: slacks for <=, artificials for = and
    # for <= rows whose RHS had to be negated.
    # ------------------------------------------------------------------
    m_ub = std_ub.shape[0]
    m_eq = std_eq.shape[0]
    m = m_ub + m_eq

    rows: List[np.ndarray] = []
    rhs_values: List[float] = []
    slack_needed: List[int] = []  # sign of slack per row (0 for eq rows)
    for i in range(m_ub):
        row, value = std_ub[i], rhs_ub[i]
        if value < 0:
            # Negate: -row >= -value  ==> surplus slack (coefficient -1)
            rows.append(-row)
            rhs_values.append(-value)
            slack_needed.append(-1)
        else:
            rows.append(row)
            rhs_values.append(value)
            slack_needed.append(+1)
    for i in range(m_eq):
        row, value = std_eq[i], rhs_eq[i]
        if value < 0:
            rows.append(-row)
            rhs_values.append(-value)
        else:
            rows.append(row)
            rhs_values.append(value)
        slack_needed.append(0)

    n_slack = sum(1 for s in slack_needed if s != 0)
    # Rows needing an artificial: eq rows, and >=-like rows (slack -1).
    artificial_rows = [i for i, s in enumerate(slack_needed) if s <= 0]
    n_artificial = len(artificial_rows)
    n_total = n_standard + n_slack + n_artificial

    matrix = np.zeros((m, n_total))
    rhs = np.array(rhs_values, dtype=float)
    slack_column = n_standard
    artificial_column = n_standard + n_slack
    basis: List[int] = [-1] * m
    for i in range(m):
        matrix[i, :n_standard] = rows[i]
        sign = slack_needed[i]
        if sign != 0:
            matrix[i, slack_column] = float(sign)
            if sign > 0:
                basis[i] = slack_column
            slack_column += 1
    for i in artificial_rows:
        matrix[i, artificial_column] = 1.0
        basis[i] = artificial_column
        artificial_column += 1

    tableau = _Tableau(matrix, rhs, basis)

    # Phase 1: drive artificials to zero.
    if n_artificial:
        phase1_costs = np.zeros(n_total)
        phase1_costs[n_standard + n_slack:] = 1.0
        allowed = np.ones(n_total, dtype=bool)
        status = _run_simplex(tableau, phase1_costs, allowed, max_iterations, pricing)
        if status == "iteration_limit":
            return LPResult(
                status="iteration_limit",
                iterations=tableau.iterations,
                rhs_violation=tableau.rhs_violation,
            )
        basis_costs = phase1_costs[tableau.basis]
        phase1_value = float(basis_costs @ tableau.rhs)
        if phase1_value > FEAS_TOL:
            return LPResult(
                status="infeasible",
                iterations=tableau.iterations,
                rhs_violation=tableau.rhs_violation,
            )
        # Pivot any artificial still (degenerately) in the basis out.
        for row in range(m):
            if tableau.basis[row] >= n_standard + n_slack:
                for column in range(n_standard + n_slack):
                    if abs(tableau.matrix[row, column]) > PIVOT_TOL:
                        tableau.pivot(row, column)
                        break

    # Phase 2: the real objective; artificial columns barred.
    phase2_costs = np.zeros(n_total)
    phase2_costs[:n_standard] = std_costs
    allowed = np.ones(n_total, dtype=bool)
    allowed[n_standard + n_slack:] = False
    status = _run_simplex(tableau, phase2_costs, allowed, max_iterations, pricing)
    if status == "unbounded":
        return LPResult(
            status="unbounded",
            iterations=tableau.iterations,
            rhs_violation=tableau.rhs_violation,
        )
    if status == "iteration_limit":
        return LPResult(
            status="iteration_limit",
            iterations=tableau.iterations,
            rhs_violation=tableau.rhs_violation,
        )

    # Recover the standardised solution, then the original variables.
    std_solution = np.zeros(n_total)
    for row, column in enumerate(tableau.basis):
        std_solution[column] = tableau.rhs[row]
    x = np.zeros(n_original)
    for j, transform in enumerate(transforms):
        if transform.kind == "shift":
            x[j] = transform.offset + std_solution[transform.primary]
        elif transform.kind == "reflect":
            x[j] = transform.offset - std_solution[transform.primary]
        else:
            x[j] = std_solution[transform.primary] - std_solution[transform.secondary]
    objective = float(c @ x)
    return LPResult(
        status="optimal",
        x=x,
        objective=objective,
        iterations=tableau.iterations,
        rhs_violation=tableau.rhs_violation,
    )
