"""Free-form MPS reading/writing for MILP models.

MPS is the lingua franca of LP/MILP solvers (LINDO -- the paper's
solver -- reads it, as do HiGHS, CPLEX, Gurobi, CBC, ...).  Supporting
it makes the repair instances portable: ``S*(AC)`` can be exported,
inspected, or solved by an external solver, and regression instances
can be checked in as plain text.

Supported subset (ample for the models this library builds):

- sections ``NAME``, ``ROWS``, ``COLUMNS`` (with ``MARKER`` /
  ``INTORG`` / ``INTEND`` integrality markers), ``RHS``, ``RANGES``
  (read only), ``BOUNDS``, ``ENDATA``;
- row types ``N`` (objective; the first N row wins), ``L``, ``G``,
  ``E``;
- bound types ``LO``, ``UP``, ``FX``, ``FR``, ``MI``, ``PL``, ``BV``,
  ``LI``, ``UI``.

Free-form (whitespace-separated) syntax only; fixed-column MPS from
the 1960s is not a goal.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.milp.model import (
    Constraint,
    LinExpr,
    MILPModel,
    ModelError,
    Sense,
    VarType,
)

INF = math.inf


class MpsError(ValueError):
    """Raised on malformed MPS input."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

_SENSE_TO_ROW = {Sense.LE: "L", Sense.GE: "G", Sense.EQ: "E"}


def write_mps(model: MILPModel, destination: Optional[Union[str, Path]] = None) -> str:
    """Serialise *model* as free-form MPS; returns the text.

    Constraint names are made unique (MPS requires it); anonymous
    constraints get ``c<i>`` names.  The objective constant, which MPS
    cannot express, is emitted as a comment so round-trips can warn.
    """
    lines: List[str] = [f"NAME {model.name or 'model'}"]
    if model.objective.constant:
        lines.append(f"* OBJSENSE MIN; objective constant {model.objective.constant:g}"
                     " (not representable in MPS)")

    row_names: List[str] = []
    used = set()
    for index, constraint in enumerate(model.constraints):
        base = constraint.name or f"c{index}"
        name = base
        suffix = 1
        while name in used:
            name = f"{base}_{suffix}"
            suffix += 1
        used.add(name)
        row_names.append(name)

    lines.append("ROWS")
    lines.append(" N obj")
    for name, constraint in zip(row_names, model.constraints):
        lines.append(f" {_SENSE_TO_ROW[constraint.sense]} {name}")

    # Column-major coefficient map.
    lines.append("COLUMNS")
    in_integer_block = False
    marker_count = 0
    for variable in model.variables:
        should_be_integer = variable.var_type.is_integral
        if should_be_integer and not in_integer_block:
            lines.append(f" MARKER{marker_count} 'MARKER' 'INTORG'")
            marker_count += 1
            in_integer_block = True
        elif not should_be_integer and in_integer_block:
            lines.append(f" MARKER{marker_count} 'MARKER' 'INTEND'")
            marker_count += 1
            in_integer_block = False
        entries: List[Tuple[str, float]] = []
        objective_coefficient = model.objective.coefficients.get(variable.index, 0.0)
        if objective_coefficient:
            entries.append(("obj", objective_coefficient))
        for name, constraint in zip(row_names, model.constraints):
            coefficient = constraint.expr.coefficients.get(variable.index, 0.0)
            if coefficient:
                entries.append((name, coefficient))
        if not entries:
            # Emit a zero objective entry so the column exists.
            entries.append(("obj", 0.0))
        for row, value in entries:
            lines.append(f" {variable.name} {row} {value:.12g}")
    if in_integer_block:
        lines.append(f" MARKER{marker_count} 'MARKER' 'INTEND'")

    lines.append("RHS")
    for name, constraint in zip(row_names, model.constraints):
        if constraint.rhs:
            lines.append(f" rhs {name} {constraint.rhs:.12g}")

    lines.append("BOUNDS")
    for variable in model.variables:
        if variable.var_type is VarType.BINARY:
            lines.append(f" BV bnd {variable.name}")
            continue
        lower, upper = variable.lower, variable.upper
        if lower == 0.0 and upper == INF:
            continue  # the MPS default
        if lower == -INF and upper == INF:
            lines.append(f" FR bnd {variable.name}")
            continue
        if lower == upper:
            lines.append(f" FX bnd {variable.name} {lower:.12g}")
            continue
        if lower == -INF:
            lines.append(f" MI bnd {variable.name}")
        elif lower != 0.0:
            lines.append(f" LO bnd {variable.name} {lower:.12g}")
        if upper != INF:
            lines.append(f" UP bnd {variable.name} {upper:.12g}")

    lines.append("ENDATA")
    text = "\n".join(lines) + "\n"
    if destination is not None:
        Path(destination).write_text(text, encoding="utf-8")
    return text


def write_mps_arrays(
    arrays,
    name: str = "model",
    destination: Optional[Union[str, Path]] = None,
) -> str:
    """Serialise sparse-lowered arrays (:class:`SparseArrays`) as MPS.

    Row ordering is fully deterministic regardless of how the CSR
    blocks were assembled: the ``<=`` block in row order as
    ``ub<i>``, then the ``=`` block as ``eq<i>``; within a column,
    entries follow that same row order (the CSC view stores row
    indices ascending).  Two structurally equal lowerings therefore
    produce byte-identical MPS text -- which is what makes the export
    diffable and usable as a regression fixture.
    """
    n = arrays.n
    lines: List[str] = [f"NAME {name}"]
    if arrays.objective_constant:
        lines.append(
            f"* OBJSENSE MIN; objective constant {arrays.objective_constant:g}"
            " (not representable in MPS)"
        )

    lines.append("ROWS")
    lines.append(" N obj")
    for i in range(arrays.m_ub):
        lines.append(f" L ub{i}")
    for i in range(arrays.m_eq):
        lines.append(f" E eq{i}")

    integral = set(int(j) for j in arrays.integral)
    ub_csc = arrays.a_ub.csc
    eq_csc = arrays.a_eq.csc
    lines.append("COLUMNS")
    in_integer_block = False
    marker_count = 0
    for j in range(n):
        should_be_integer = j in integral
        if should_be_integer and not in_integer_block:
            lines.append(f" MARKER{marker_count} 'MARKER' 'INTORG'")
            marker_count += 1
            in_integer_block = True
        elif not should_be_integer and in_integer_block:
            lines.append(f" MARKER{marker_count} 'MARKER' 'INTEND'")
            marker_count += 1
            in_integer_block = False
        entries: List[Tuple[str, float]] = []
        if arrays.costs[j]:
            entries.append(("obj", float(arrays.costs[j])))
        rows, values = ub_csc.column(j)
        for row, value in zip(rows, values):
            entries.append((f"ub{int(row)}", float(value)))
        rows, values = eq_csc.column(j)
        for row, value in zip(rows, values):
            entries.append((f"eq{int(row)}", float(value)))
        if not entries:
            entries.append(("obj", 0.0))
        for row_name, value in entries:
            lines.append(f" x{j} {row_name} {value:.12g}")
    if in_integer_block:
        lines.append(f" MARKER{marker_count} 'MARKER' 'INTEND'")

    lines.append("RHS")
    for i in range(arrays.m_ub):
        if arrays.b_ub[i]:
            lines.append(f" rhs ub{i} {float(arrays.b_ub[i]):.12g}")
    for i in range(arrays.m_eq):
        if arrays.b_eq[i]:
            lines.append(f" rhs eq{i} {float(arrays.b_eq[i]):.12g}")

    lines.append("BOUNDS")
    for j in range(n):
        lower, upper = float(arrays.lower[j]), float(arrays.upper[j])
        if lower == 0.0 and upper == INF:
            continue
        if lower == -INF and upper == INF:
            lines.append(f" FR bnd x{j}")
            continue
        if lower == upper:
            lines.append(f" FX bnd x{j} {lower:.12g}")
            continue
        if lower == -INF:
            lines.append(f" MI bnd x{j}")
        elif lower != 0.0:
            lines.append(f" LO bnd x{j} {lower:.12g}")
        if upper != INF:
            lines.append(f" UP bnd x{j} {upper:.12g}")

    lines.append("ENDATA")
    text = "\n".join(lines) + "\n"
    if destination is not None:
        Path(destination).write_text(text, encoding="utf-8")
    return text


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

_ROW_TO_SENSE = {"L": Sense.LE, "G": Sense.GE, "E": Sense.EQ}


def read_mps(source: Union[str, Path], *, is_text: bool = False) -> MILPModel:
    """Parse free-form MPS text (or a file) into a :class:`MILPModel`."""
    if is_text:
        text = source if isinstance(source, str) else Path(source).read_text()
    else:
        text = Path(source).read_text(encoding="utf-8")

    name = "mps"
    objective_row: Optional[str] = None
    row_sense: Dict[str, Sense] = {}
    row_order: List[str] = []
    columns: Dict[str, Dict[str, float]] = {}
    column_order: List[str] = []
    integer_columns: set = set()
    rhs: Dict[str, float] = {}
    ranges: Dict[str, float] = {}
    bounds: Dict[str, List[Tuple[str, Optional[float]]]] = {}

    section = None
    in_integer_block = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("*"):
            continue
        upper = stripped.upper()
        if upper.startswith("NAME"):
            parts = stripped.split(None, 1)
            if len(parts) > 1:
                name = parts[1].strip()
            section = "NAME"
            continue
        if upper in ("ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS", "ENDATA"):
            section = upper
            if section == "ENDATA":
                break
            continue

        fields = stripped.split()
        if section == "ROWS":
            if len(fields) != 2:
                raise MpsError(f"line {line_number}: bad ROWS entry {stripped!r}")
            row_type, row_name = fields[0].upper(), fields[1]
            if row_type == "N":
                if objective_row is None:
                    objective_row = row_name
                continue
            if row_type not in _ROW_TO_SENSE:
                raise MpsError(f"line {line_number}: unknown row type {row_type!r}")
            row_sense[row_name] = _ROW_TO_SENSE[row_type]
            row_order.append(row_name)
        elif section == "COLUMNS":
            if len(fields) >= 3 and fields[1].strip("'\"").upper() == "MARKER":
                marker = fields[2].strip("'\"").upper()
                if marker == "INTORG":
                    in_integer_block = True
                elif marker == "INTEND":
                    in_integer_block = False
                continue
            if len(fields) not in (3, 5):
                raise MpsError(f"line {line_number}: bad COLUMNS entry {stripped!r}")
            column = fields[0]
            if column not in columns:
                columns[column] = {}
                column_order.append(column)
            if in_integer_block:
                integer_columns.add(column)
            pairs = list(zip(fields[1::2], fields[2::2]))
            for row, value in pairs:
                columns[column][row] = columns[column].get(row, 0.0) + float(value)
        elif section == "RHS":
            if len(fields) not in (3, 5):
                raise MpsError(f"line {line_number}: bad RHS entry {stripped!r}")
            for row, value in zip(fields[1::2], fields[2::2]):
                rhs[row] = float(value)
        elif section == "RANGES":
            for row, value in zip(fields[1::2], fields[2::2]):
                ranges[row] = float(value)
        elif section == "BOUNDS":
            bound_type = fields[0].upper()
            if bound_type in ("FR", "MI", "PL", "BV"):
                if len(fields) != 3:
                    raise MpsError(f"line {line_number}: bad BOUNDS entry {stripped!r}")
                bounds.setdefault(fields[2], []).append((bound_type, None))
            else:
                if len(fields) != 4:
                    raise MpsError(f"line {line_number}: bad BOUNDS entry {stripped!r}")
                bounds.setdefault(fields[2], []).append(
                    (bound_type, float(fields[3]))
                )
        elif section in (None, "NAME"):
            raise MpsError(f"line {line_number}: data before a section header")

    model = MILPModel(name)
    variables = {}
    for column in column_order:
        lower, upper = 0.0, INF
        var_type = VarType.INTEGER if column in integer_columns else VarType.REAL
        is_binary = False
        for bound_type, value in bounds.get(column, ()):
            if bound_type == "LO":
                lower = value  # type: ignore[assignment]
            elif bound_type == "UP":
                upper = value  # type: ignore[assignment]
                # Classic MPS quirk: UP with a negative value and no LO
                # implies a free-below variable; we keep lower at 0 for
                # predictability (free-form consumers agree).
            elif bound_type == "FX":
                lower = upper = value  # type: ignore[assignment]
            elif bound_type == "FR":
                lower, upper = -INF, INF
            elif bound_type == "MI":
                lower = -INF
            elif bound_type == "PL":
                upper = INF
            elif bound_type == "BV":
                is_binary = True
            elif bound_type == "LI":
                lower = value  # type: ignore[assignment]
                var_type = VarType.INTEGER
            elif bound_type == "UI":
                upper = value  # type: ignore[assignment]
                var_type = VarType.INTEGER
            else:
                raise MpsError(f"unknown bound type {bound_type!r}")
        if is_binary:
            variables[column] = model.add_variable(column, VarType.BINARY)
        else:
            variables[column] = model.add_variable(column, var_type, lower, upper)

    objective = LinExpr()
    for column, coefficients in columns.items():
        for row, value in coefficients.items():
            if row == objective_row:
                objective.add_term(variables[column], value)
    model.set_objective(objective)

    for row in row_order:
        expr = LinExpr()
        for column, coefficients in columns.items():
            if row in coefficients:
                expr.add_term(variables[column], coefficients[row])
        sense = row_sense[row]
        rhs_value = rhs.get(row, 0.0)
        if row not in ranges:
            if sense is Sense.LE:
                constraint = expr <= rhs_value
            elif sense is Sense.GE:
                constraint = expr >= rhs_value
            else:
                constraint = expr == rhs_value
            model.add_constraint(constraint, name=row)
            continue
        # RANGES turn a row into a two-sided constraint (standard MPS
        # conventions): L -> [rhs-|r|, rhs]; G -> [rhs, rhs+|r|];
        # E -> [rhs, rhs+r] for r >= 0, [rhs+r, rhs] for r < 0.
        r = ranges[row]
        if sense is Sense.LE:
            low, high = rhs_value - abs(r), rhs_value
        elif sense is Sense.GE:
            low, high = rhs_value, rhs_value + abs(r)
        else:
            low, high = sorted((rhs_value, rhs_value + r))
        companion = LinExpr(dict(expr.coefficients))
        model.add_constraint(expr <= high, name=f"{row}__hi")
        model.add_constraint(companion >= low, name=f"{row}__lo")
    return model
