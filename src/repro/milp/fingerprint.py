"""Canonical fingerprinting of MILP models for the solve cache.

Two models that describe the same mathematical program -- same
variables (types and bounds), same constraint rows, same objective --
must hash to the same key, so a table re-acquired across documents
skips the solver entirely.  The fingerprint is a SHA-256 digest over a
canonical byte serialisation:

- variables in index order as ``(type, lower, upper)`` (names are
  excluded: ``z1``/``y1``/``d1`` labels carry no mathematical content
  and the DART translation names variables by position anyway);
- constraints as ``(sense, rhs, sorted coefficient items)``, in model
  order;
- the objective as its sorted coefficient items plus the constant.

Floats are serialised via ``repr`` so that ``1.0`` and ``1`` collide
(both become ``1.0``) while genuinely different values never do.
Constraint *order* is part of the key: the DART translation emits rows
in a deterministic order, so identical inputs produce identical keys,
and keeping order avoids a sort over every row on the hot path.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple

from repro.milp.model import MILPModel


def _emit_float(value: float) -> str:
    return repr(float(value))


def _emit_items(items: Iterable[Tuple[int, float]]) -> str:
    return ",".join(f"{i}:{_emit_float(c)}" for i, c in sorted(items))


def canonical_fingerprint(model: MILPModel) -> str:
    """A stable hex digest identifying *model* up to renaming."""
    h = hashlib.sha256()
    for variable in model.variables:
        h.update(
            f"v|{variable.var_type.value}|{_emit_float(variable.lower)}"
            f"|{_emit_float(variable.upper)}\n".encode()
        )
    for constraint in model.constraints:
        h.update(
            f"c|{constraint.sense.value}|{_emit_float(constraint.rhs)}"
            f"|{_emit_items(constraint.expr.coefficients.items())}\n".encode()
        )
    h.update(
        f"o|{_emit_float(model.objective.constant)}"
        f"|{_emit_items(model.objective.coefficients.items())}\n".encode()
    )
    return h.hexdigest()
