"""A bounded-variable *revised* simplex over CSR columns.

The dense tableau solver in :mod:`repro.milp.simplex` carries the full
``m x n`` matrix through every pivot: each iteration rewrites the
whole tableau even though a DART ground row touches only a handful of
cells.  The revised simplex keeps the constraint matrix untouched in
CSR form and represents the basis by a factorization instead:

- **basis factorization** -- the ``m x m`` basis ``B`` is LU-factorized
  (``scipy.linalg.lu_factor`` when available, an explicit inverse as a
  numpy-only fallback) and updated between refactorizations by an
  **eta file** (product-form inverse): each pivot appends one eta
  vector ``w = B^-1 A_q``, and FTRAN/BTRAN apply the eta column
  transforms after/before the factor solve;
- **periodic refactorization** -- after :data:`REFACTOR_INTERVAL` etas
  the basis is refactorized from scratch, bounding both the eta file
  and accumulated roundoff;
- **vectorized pricing** -- reduced costs for *all* columns come from
  one BTRAN plus one CSR ``A^T y`` product (``np.bincount`` over the
  nonzeros), with Dantzig, steepest-edge-lite (``d_j^2 / (1+|A_j|^2)``
  with static norms) and Bland rules;
- **bounded variables** -- lower/upper bounds are handled implicitly
  (nonbasic-at-lower / nonbasic-at-upper statuses and bound flips in
  the ratio test), so a branch-and-bound bound change never adds a
  row; this is what makes the warm-start snapshots cheap;
- **dual simplex entry** -- :meth:`RevisedSimplex.install` +
  :meth:`RevisedSimplex.resolve_dual` re-solve after a bound change
  from a parent basis snapshot, preserving the fixed-structure
  warm-start contract of :mod:`repro.milp.warmstart`.

The LP form matches :func:`repro.milp.simplex.solve_lp`::

    min  c . x
    s.t. A_ub x <= b_ub
         A_eq x  = b_eq
         lower <= x <= upper   (entries may be +/- inf)

Phase 1 uses one artificial column per row (sign matched to the
initial residual, exactly like the dense solver) minimised to zero;
rows whose slack already covers the residual start feasible and
skip the artificial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.milp.simplex import (
    COST_TOL,
    FEAS_TOL,
    LPResult,
    PIVOT_TOL,
    PRICING_BLAND,
    PRICING_DANTZIG,
)
from repro.milp.sparse import CSRMatrix, SparseArrays

INF = math.inf

#: Steepest-edge-lite pricing (static column norms).
PRICING_STEEPEST = "steepest"

#: Refactorize the basis after this many eta updates.
REFACTOR_INTERVAL = 64

#: Nonbasic/basic statuses (int8 codes).
AT_LOWER, AT_UPPER, BASIC, IS_FREE = 0, 1, 2, 3

try:  # pragma: no cover - exercised implicitly on import
    from scipy.linalg import lu_factor, lu_solve

    _HAVE_SCIPY_LU = True
except Exception:  # pragma: no cover - scipy is normally present
    _HAVE_SCIPY_LU = False


def vstack_csr(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Stack two CSR matrices with equal column counts vertically."""
    if a.shape[1] != b.shape[1]:
        raise ValueError("column counts differ")
    return CSRMatrix(
        (a.shape[0] + b.shape[0], a.shape[1]),
        np.concatenate([a.indptr, a.indptr[-1] + b.indptr[1:]]),
        np.concatenate([a.indices, b.indices]),
        np.concatenate([a.data, b.data]),
    )


class _BasisFactor:
    """LU of the basis ``B0`` plus the eta file of later pivots.

    ``B_k = B0 E_1 ... E_k`` where ``E_i`` is the identity with column
    ``r_i`` replaced by ``w_i = B_{i-1}^-1 A_q``.  FTRAN solves the
    factor first then applies the etas in order; BTRAN applies the
    transposed etas in reverse then the transposed factor.
    """

    __slots__ = ("m", "_lu", "_inv", "etas")

    def __init__(
        self,
        b_dense: Optional[np.ndarray],
        etas: Optional[List[Tuple[int, np.ndarray]]] = None,
        _shared=None,
    ) -> None:
        if _shared is not None:
            self.m, self._lu, self._inv = _shared
        else:
            m = 0 if b_dense is None else b_dense.shape[0]
            self.m = m
            self._lu = None
            self._inv = None
            if m:
                if _HAVE_SCIPY_LU:
                    self._lu = lu_factor(b_dense)
                else:
                    self._inv = np.linalg.inv(b_dense)
        self.etas: List[Tuple[int, np.ndarray]] = list(etas or [])

    def fork(self) -> "_BasisFactor":
        """A copy sharing the (immutable) factor, with its own eta list."""
        return _BasisFactor(None, self.etas, _shared=(self.m, self._lu, self._inv))

    def push_eta(self, row: int, w: np.ndarray) -> None:
        self.etas.append((row, w))

    @property
    def eta_count(self) -> int:
        return len(self.etas)

    def solve(self, v: np.ndarray) -> np.ndarray:
        """FTRAN: ``B^-1 v``."""
        if self.m == 0:
            return np.zeros(0)
        if self._lu is not None:
            x = lu_solve(self._lu, v)
        else:
            x = self._inv @ v
        for row, w in self.etas:
            pivot = x[row] / w[row]
            x = x - w * pivot
            x[row] = pivot
        return x

    def solve_transpose(self, v: np.ndarray) -> np.ndarray:
        """BTRAN: ``B^-T v``."""
        if self.m == 0:
            return np.zeros(0)
        x = np.array(v, dtype=float, copy=True)
        for row, w in reversed(self.etas):
            x[row] = (x[row] - (w @ x - w[row] * x[row])) / w[row]
        if self._lu is not None:
            return lu_solve(self._lu, x, trans=1)
        return self._inv.T @ x


@dataclass
class BasisSnapshot:
    """A restorable basis: column set, statuses, and shared factor."""

    basic: np.ndarray  # (m,) column index per row
    status: np.ndarray  # (n_cols,) int8 status codes
    factor: _BasisFactor


class RevisedSimplex:
    """One LP instance with a mutable basis, reusable across re-solves.

    Column layout: ``[0, n)`` structural, ``[n, n+m)`` row slacks
    (``[0, inf)`` for ``<=`` rows, fixed ``[0, 0]`` for ``=`` rows),
    ``[n+m, n+2m)`` phase-1 artificials (``sigma_i e_i``; fixed to
    ``[0, 0]`` once feasible).
    """

    def __init__(
        self,
        arrays: SparseArrays,
        *,
        lower: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
        max_iterations: int = 50_000,
        pricing: str = PRICING_DANTZIG,
    ) -> None:
        if pricing not in (PRICING_DANTZIG, PRICING_BLAND, PRICING_STEEPEST):
            raise ValueError(
                f"unknown pricing rule {pricing!r}; choose "
                f"{PRICING_DANTZIG!r}, {PRICING_STEEPEST!r} or {PRICING_BLAND!r}"
            )
        self.arrays = arrays
        self.pricing = pricing
        self.max_iterations = max_iterations
        n = arrays.n
        m_ub = arrays.m_ub
        m = m_ub + arrays.m_eq
        self.n = n
        self.m = m
        self.m_ub = m_ub
        self.A = vstack_csr(arrays.a_ub, arrays.a_eq)
        self.b = np.concatenate([arrays.b_ub, arrays.b_eq])

        lo_struct = np.asarray(
            arrays.lower if lower is None else lower, dtype=float
        ).copy()
        hi_struct = np.asarray(
            arrays.upper if upper is None else upper, dtype=float
        ).copy()
        slack_hi = np.concatenate(
            [np.full(m_ub, INF), np.zeros(arrays.m_eq)]
        )
        self.lo = np.concatenate([lo_struct, np.zeros(m), np.zeros(m)])
        self.hi = np.concatenate([hi_struct, slack_hi, np.zeros(m)])
        self.n_cols = n + 2 * m
        self.art_sign = np.ones(m)

        self.costs = np.zeros(self.n_cols)
        self.costs[:n] = arrays.costs

        self.status = np.zeros(self.n_cols, dtype=np.int8)
        self.basic = np.zeros(m, dtype=np.int64)
        self.xB = np.zeros(m)
        self.factor = _BasisFactor(None)

        self.iterations = 0
        self.refactorizations = 0
        #: Pricing runs that tripped the anti-cycling trigger and
        #: switched to Bland's rule mid-solve — a numerics health
        #: signal surfaced through SolveStats.
        self.bland_fallbacks = 0
        self._norms: Optional[np.ndarray] = None
        self._solved_once = False

    # -- column access ---------------------------------------------------

    def _column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        n, m = self.n, self.m
        if j < n:
            return self.A.csc.column(j)
        if j < n + m:
            return (
                np.array([j - n], dtype=np.int64),
                np.array([1.0]),
            )
        row = j - n - m
        return (
            np.array([row], dtype=np.int64),
            np.array([self.art_sign[row]]),
        )

    def _column_dense(self, j: int) -> np.ndarray:
        out = np.zeros(self.m)
        rows, vals = self._column(j)
        out[rows] = vals
        return out

    def _column_norms(self) -> np.ndarray:
        if self._norms is None:
            self._norms = np.concatenate(
                [
                    self.A.csc.column_norms_sq(),
                    np.ones(self.m),
                    np.ones(self.m),
                ]
            )
        return self._norms

    # -- basis maintenance -----------------------------------------------

    def _refactor(self) -> None:
        m = self.m
        b_dense = np.zeros((m, m))
        for position, column in enumerate(self.basic):
            rows, vals = self._column(int(column))
            b_dense[rows, position] = vals
        self.factor = _BasisFactor(b_dense if m else None)
        self.refactorizations += 1

    def _push_eta(self, row: int, w: np.ndarray) -> None:
        self.factor.push_eta(row, w)
        if self.factor.eta_count >= REFACTOR_INTERVAL:
            self._refactor()

    def _nonbasic_values(self) -> np.ndarray:
        """Values of every column at its status (basic slots are 0)."""
        values = np.where(
            self.status == AT_UPPER,
            self.hi,
            np.where(self.status == AT_LOWER, self.lo, 0.0),
        )
        values[self.status == BASIC] = 0.0
        return values

    def _nb_value(self, j: int) -> float:
        code = self.status[j]
        if code == AT_LOWER:
            return float(self.lo[j])
        if code == AT_UPPER:
            return float(self.hi[j])
        return 0.0

    def _compute_xB(self) -> None:
        values = self._nonbasic_values()
        n, m = self.n, self.m
        residual = self.b - self.A.matvec(values[:n])
        residual -= values[n : n + m]
        residual -= self.art_sign * values[n + m :]
        self.xB = self.factor.solve(residual)

    def _reduced_costs(self, costs: np.ndarray, y: np.ndarray) -> np.ndarray:
        n, m = self.n, self.m
        d = costs.copy()
        d[:n] -= self.A.rmatvec(y)
        d[n : n + m] -= y
        d[n + m :] -= self.art_sign * y
        return d

    def _alpha_row(self, rho: np.ndarray) -> np.ndarray:
        """Row ``rho^T [A | S | R]`` over every column (BTRAN result in)."""
        n, m = self.n, self.m
        alpha = np.empty(self.n_cols)
        alpha[:n] = self.A.rmatvec(rho)
        alpha[n : n + m] = rho
        alpha[n + m :] = self.art_sign * rho
        return alpha

    # -- primal simplex ---------------------------------------------------

    def _primal(self, costs: np.ndarray, max_iterations: int, pricing: str) -> str:
        use_bland = pricing == PRICING_BLAND
        cycle_threshold = 50 + 2 * (self.m + self.n_cols)
        degenerate_run = 0
        fixed = self.lo >= self.hi  # == for genuinely fixed columns
        norms = self._column_norms() if pricing == PRICING_STEEPEST else None
        while self.iterations < max_iterations:
            y = self.factor.solve_transpose(costs[self.basic])
            d = self._reduced_costs(costs, y)
            violation = np.where(
                self.status == AT_LOWER,
                -d,
                np.where(
                    self.status == AT_UPPER,
                    d,
                    np.where(self.status == IS_FREE, np.abs(d), 0.0),
                ),
            )
            violation[fixed] = 0.0
            violation[violation <= COST_TOL] = 0.0
            if not violation.any():
                return "optimal"
            if use_bland:
                entering = int(np.flatnonzero(violation)[0])
            elif norms is not None:
                entering = int(np.argmax(violation * violation / (1.0 + norms)))
            else:
                entering = int(np.argmax(violation))
            if self.status[entering] == AT_UPPER or (
                self.status[entering] == IS_FREE and d[entering] > 0.0
            ):
                direction = -1.0
            else:
                direction = 1.0
            w = self.factor.solve(self._column_dense(entering))
            dw = direction * w

            basic_lo = self.lo[self.basic]
            basic_hi = self.hi[self.basic]
            ratios = np.full(self.m, INF)
            decreasing = dw > PIVOT_TOL
            increasing = dw < -PIVOT_TOL
            ratios[decreasing] = (
                self.xB[decreasing] - basic_lo[decreasing]
            ) / dw[decreasing]
            ratios[increasing] = (
                self.xB[increasing] - basic_hi[increasing]
            ) / dw[increasing]
            np.maximum(ratios, 0.0, out=ratios)
            row_limit = float(ratios.min()) if self.m else INF

            flip_limit = INF
            if self.status[entering] in (AT_LOWER, AT_UPPER):
                span = self.hi[entering] - self.lo[entering]
                if np.isfinite(span):
                    flip_limit = float(span)

            if flip_limit <= row_limit:
                if flip_limit == INF:
                    # Neither the entering variable nor any basic one
                    # ever hits a bound along this ray.
                    return "unbounded"
                # Bound flip: the entering variable crosses its whole
                # range before any basic variable hits a bound.
                self.xB -= flip_limit * dw
                self.status[entering] = (
                    AT_UPPER if self.status[entering] == AT_LOWER else AT_LOWER
                )
                self.iterations += 1
                continue
            if row_limit == INF:
                return "unbounded"

            tied = np.flatnonzero(ratios <= row_limit + PIVOT_TOL)
            if use_bland:
                leaving_row = int(min(tied, key=lambda r: self.basic[r]))
            else:
                leaving_row = int(tied[np.argmax(np.abs(dw[tied]))])
            leaving = int(self.basic[leaving_row])
            hit_lower = dw[leaving_row] > 0.0

            step = float(ratios[leaving_row])
            self.xB -= step * dw
            entering_value = self._nb_value(entering) + step * direction
            self.basic[leaving_row] = entering
            self.xB[leaving_row] = entering_value
            self.status[leaving] = AT_LOWER if hit_lower else AT_UPPER
            self.status[entering] = BASIC
            self._push_eta(leaving_row, w)
            self.iterations += 1

            if not use_bland:
                if step <= 1e-12:
                    degenerate_run += 1
                    if degenerate_run > cycle_threshold:
                        use_bland = True  # probable cycling: go anti-cycling
                        self.bland_fallbacks += 1
                else:
                    degenerate_run = 0
        return "iteration_limit"

    # -- dual simplex ------------------------------------------------------

    def _dual(self, costs: np.ndarray, max_iterations: int) -> str:
        """Restore primal feasibility from a dual-feasible basis.

        Used after a bound change perturbs basic values out of their
        bounds; costs are untouched so the parent's reduced-cost signs
        still certify dual feasibility.  Reduced costs are recomputed
        every pivot (one extra BTRAN) so tolerance drift self-corrects.
        """
        fixed = self.lo >= self.hi
        while self.iterations < max_iterations:
            basic_lo = self.lo[self.basic]
            basic_hi = self.hi[self.basic]
            below = basic_lo - self.xB
            above = self.xB - basic_hi
            worst = np.maximum(below, above)
            if self.m == 0 or float(worst.max()) <= FEAS_TOL:
                return "optimal"
            leaving_row = int(np.argmax(worst))
            is_below = below[leaving_row] >= above[leaving_row]

            unit = np.zeros(self.m)
            unit[leaving_row] = 1.0
            rho = self.factor.solve_transpose(unit)
            alpha = self._alpha_row(rho)
            y = self.factor.solve_transpose(costs[self.basic])
            d = self._reduced_costs(costs, y)

            raises = alpha < -PIVOT_TOL
            drops = alpha > PIVOT_TOL
            if not is_below:
                raises, drops = drops, raises
            eligible = (
                ((self.status == AT_LOWER) & raises)
                | ((self.status == AT_UPPER) & drops)
                | ((self.status == IS_FREE) & (raises | drops))
            )
            eligible &= ~fixed
            candidates = np.flatnonzero(eligible)
            if candidates.size == 0:
                # Every admissible entering move would worsen the bound
                # violation: the perturbed row is infeasible for every
                # completion.
                return "infeasible"
            ratios = np.abs(d[candidates]) / np.abs(alpha[candidates])
            best = float(ratios.min())
            entering = int(candidates[ratios <= best + PIVOT_TOL].min())

            w = self.factor.solve(self._column_dense(entering))
            pivot = w[leaving_row]
            if abs(pivot) <= PIVOT_TOL:
                # Eta roundoff has diverged from the priced row; rebuild
                # the factor and retry the same leaving row.
                if self.factor.eta_count:
                    self._refactor()
                    self._compute_xB()
                    continue
                return "infeasible"
            target = basic_lo[leaving_row] if is_below else basic_hi[leaving_row]
            step = (self.xB[leaving_row] - target) / pivot
            leaving = int(self.basic[leaving_row])
            self.xB -= step * w
            self.basic[leaving_row] = entering
            self.xB[leaving_row] = self._nb_value(entering) + step
            self.status[leaving] = AT_LOWER if is_below else AT_UPPER
            self.status[entering] = BASIC
            self._push_eta(leaving_row, w)
            self.iterations += 1
        return "iteration_limit"

    # -- solves ------------------------------------------------------------

    def _initial_basis(self) -> None:
        n, m = self.n, self.m
        status = self.status
        status[:] = AT_LOWER
        finite_lower = np.isfinite(self.lo[:n])
        finite_upper = np.isfinite(self.hi[:n])
        status[:n][~finite_lower & finite_upper] = AT_UPPER
        status[:n][~finite_lower & ~finite_upper] = IS_FREE

        values = self._nonbasic_values()
        residual = self.b - self.A.matvec(values[:n])
        self.art_sign = np.where(residual >= 0.0, 1.0, -1.0)
        # <= rows with a nonnegative residual start feasible on their
        # slack; every other row gets its artificial.
        self.basic = np.arange(n + m, n + 2 * m, dtype=np.int64)
        self.xB = np.abs(residual)
        slack_ok = np.zeros(m, dtype=bool)
        slack_ok[: self.m_ub] = residual[: self.m_ub] >= 0.0
        self.basic[slack_ok] = n + np.flatnonzero(slack_ok)
        status[self.basic] = BASIC
        # Re-open the artificial bounds (a prior solve pins them), then
        # pin the unused ones to zero immediately.
        self.hi[n + m :] = INF
        unused = np.flatnonzero(slack_ok)
        self.hi[n + m + unused] = 0.0
        self._refactor()

    def solve(self) -> LPResult:
        """Cold two-phase solve; leaves the basis installed for reuse."""
        start_iterations = self.iterations
        if np.any(self.lo[: self.n] > self.hi[: self.n]):
            return LPResult(status="infeasible")
        self._initial_basis()
        n, m = self.n, self.m
        budget = start_iterations + self.max_iterations

        needs_phase1 = bool(np.any(self.basic >= n + m))
        if needs_phase1:
            phase1_costs = np.zeros(self.n_cols)
            phase1_costs[n + m :] = 1.0
            status = self._primal(phase1_costs, budget, self.pricing)
            if status == "iteration_limit":
                return LPResult(
                    status="iteration_limit",
                    iterations=self.iterations - start_iterations,
                )
            artificial_basic = self.basic >= n + m
            infeasibility = float(self.xB[artificial_basic].sum()) if artificial_basic.any() else 0.0
            if status != "optimal" or infeasibility > FEAS_TOL:
                return LPResult(
                    status="infeasible",
                    iterations=self.iterations - start_iterations,
                )
            self._pivot_out_artificials()
        # Artificials are done: pin them to zero for phase 2 and any
        # later warm re-solve.
        self.hi[n + m :] = 0.0

        status = self._primal(self.costs, budget, self.pricing)
        if status != "optimal":
            return LPResult(
                status=status, iterations=self.iterations - start_iterations
            )
        self._solved_once = True
        return self._extract(start_iterations)

    def _pivot_out_artificials(self) -> None:
        """Degenerately pivot basic artificials out where possible.

        A row whose artificial cannot be pivoted out (no nonzero
        non-artificial entry) is linearly dependent; its artificial
        stays basic, pinned at zero.
        """
        n, m = self.n, self.m
        for row in range(m):
            if self.basic[row] < n + m:
                continue
            if abs(self.xB[row]) > FEAS_TOL:
                continue
            unit = np.zeros(m)
            unit[row] = 1.0
            rho = self.factor.solve_transpose(unit)
            alpha = self._alpha_row(rho)
            candidates = np.flatnonzero(
                (np.abs(alpha[: n + m]) > 1e-7) & (self.status[: n + m] != BASIC)
            )
            if candidates.size == 0:
                continue
            entering = int(candidates[np.argmax(np.abs(alpha[candidates]))])
            w = self.factor.solve(self._column_dense(entering))
            leaving = int(self.basic[row])
            self.basic[row] = entering
            self.xB[row] = self._nb_value(entering)
            self.status[leaving] = AT_LOWER
            self.status[entering] = BASIC
            self._push_eta(row, w)

    def _extract(self, start_iterations: int) -> LPResult:
        values = self._nonbasic_values()
        values[self.basic] = self.xB
        basic_lo = self.lo[self.basic]
        basic_hi = self.hi[self.basic]
        drift = 0.0
        if self.m:
            drift = max(
                0.0,
                float(np.maximum(basic_lo - self.xB, self.xB - basic_hi).max()),
            )
        x = np.clip(values[: self.n], self.lo[: self.n], self.hi[: self.n])
        objective = float(self.arrays.costs @ x)
        return LPResult(
            status="optimal",
            x=x,
            objective=objective,
            iterations=self.iterations - start_iterations,
            rhs_violation=drift if drift > FEAS_TOL else 0.0,
        )

    # -- warm re-solves ----------------------------------------------------

    def snapshot(self) -> BasisSnapshot:
        """Capture the current basis for later :meth:`install`."""
        return BasisSnapshot(
            basic=self.basic.copy(),
            status=self.status.copy(),
            factor=self.factor.fork(),
        )

    def install(
        self,
        snap: BasisSnapshot,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> bool:
        """Restore *snap* under new structural bounds.

        Returns ``False`` when the bound box is empty.  Nonbasic
        variables ride along with their bound (their status is kept),
        so the restored basis stays dual feasible and
        :meth:`resolve_dual` finishes in a few pivots.
        """
        if np.any(lower > upper):
            return False
        n = self.n
        self.lo[:n] = lower
        self.hi[:n] = upper
        self.basic = snap.basic.copy()
        self.status = snap.status.copy()
        self.factor = snap.factor.fork()
        self._compute_xB()
        return True

    def resolve_dual(self, *, iteration_budget: int = 2_000) -> LPResult:
        """Dual re-solve after :meth:`install` (bounds moved, costs same)."""
        start_iterations = self.iterations
        budget = start_iterations + iteration_budget
        status = self._dual(self.costs, budget)
        if status == "infeasible":
            return LPResult(
                status="infeasible",
                iterations=self.iterations - start_iterations,
            )
        if status == "iteration_limit":
            return LPResult(
                status="iteration_limit",
                iterations=self.iterations - start_iterations,
            )
        # Dual pivots keep reduced costs signs up to tolerance slop; a
        # primal clean-up settles residual violations (usually 0 pivots).
        status = self._primal(
            self.costs, self.iterations + iteration_budget, self.pricing
        )
        if status != "optimal":
            return LPResult(
                status=status, iterations=self.iterations - start_iterations
            )
        return self._extract(start_iterations)

    # -- introspection for the cutting-plane layer ------------------------

    def tableau_row(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(alpha, rho)`` for basis *row*: ``alpha = e_r^T B^-1 [A|S|R]``.

        The cutting-plane layer reads these to derive Gomory cuts from
        fractional basic rows; ``rho = B^-T e_r`` is returned too so
        the caller can aggregate the RHS (``rho . b``).
        """
        unit = np.zeros(self.m)
        unit[row] = 1.0
        rho = self.factor.solve_transpose(unit)
        return self._alpha_row(rho), rho


def solve_lp_sparse(
    arrays: SparseArrays,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
    *,
    max_iterations: int = 50_000,
    pricing: str = PRICING_DANTZIG,
) -> LPResult:
    """Cold-solve the LP relaxation of *arrays* (bounds overridable)."""
    engine = RevisedSimplex(
        arrays,
        lower=lower,
        upper=upper,
        max_iterations=max_iterations,
        pricing=pricing,
    )
    return engine.solve()
