"""Persistent HiGHS node relaxations for branch-and-bound.

Profiling the PR 2 solver showed the per-node cost of the ``scipy`` LP
backend is dominated not by HiGHS itself but by ``linprog``'s wrapper:
option validation, input cleaning and matrix conversion ran ~4x the
actual simplex time on e4-scale nodes, and every node paid it again
from scratch.

:class:`PersistentNodeLP` keeps **one** HiGHS instance alive for the
whole search tree, built directly against scipy's private
``_highspy`` bindings (the same binary ``linprog`` drives):

- the model is passed once, column-wise sparse
  (``MatrixFormat.kColwise`` straight from our CSC view -- no dense
  round-trip);
- a node solve is ``changeColsBounds`` + ``run``: HiGHS keeps the
  previous optimal basis, so a one-bound branching change re-solves in
  a handful of dual pivots (measured ~0.02 ms vs ~3 ms through
  ``linprog``);
- subtree-scoped cut rows are applied with ``addRows`` before the run
  and removed with ``deleteRows`` after, leaving the shared base model
  untouched.

The private API is version-fragile, so everything is feature-detected:
when ``_highspy`` internals are missing the backend transparently
falls back to sparse ``linprog`` calls (:func:`solve_lp_linprog`),
which is also what the satellite fix to :mod:`repro.milp.scipy_backend`
uses.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.milp.revised import vstack_csr
from repro.milp.simplex import LPResult
from repro.milp.sparse import SparseArrays

INF = math.inf

try:  # pragma: no cover - exercised implicitly on import
    from scipy.optimize._highspy import _core as _highs_core

    _PERSISTENT_OK = all(
        hasattr(_highs_core, name)
        for name in ("_Highs", "HighsLp", "MatrixFormat", "HighsModelStatus")
    )
except Exception:  # pragma: no cover - older/newer scipy layouts
    _highs_core = None
    _PERSISTENT_OK = False


def persistent_available() -> bool:
    """Whether the in-process HiGHS bindings are usable."""
    return _PERSISTENT_OK


def solve_lp_linprog(
    arrays: SparseArrays, lower: np.ndarray, upper: np.ndarray
) -> LPResult:
    """One cold LP solve through ``linprog`` with ``scipy.sparse`` blocks."""
    from scipy.optimize import linprog

    result = linprog(
        arrays.costs,
        A_ub=arrays.a_ub.to_scipy() if arrays.m_ub else None,
        b_ub=arrays.b_ub if arrays.m_ub else None,
        A_eq=arrays.a_eq.to_scipy() if arrays.m_eq else None,
        b_eq=arrays.b_eq if arrays.m_eq else None,
        bounds=np.column_stack([lower, upper]),
        method="highs",
    )
    if result.status == 0:
        return LPResult(
            status="optimal",
            x=np.asarray(result.x),
            objective=float(result.fun),
            iterations=int(result.nit or 0),
        )
    if result.status == 2:
        return LPResult(status="infeasible")
    if result.status == 3:
        return LPResult(status="unbounded")
    return LPResult(status="iteration_limit")


class PersistentNodeLP:
    """One HiGHS instance reused for every node of a search tree."""

    def __init__(self, arrays: SparseArrays) -> None:
        if not _PERSISTENT_OK:
            raise RuntimeError("persistent HiGHS bindings unavailable")
        self.arrays = arrays
        n = arrays.n
        self._n = n
        self._all_columns = np.arange(n, dtype=np.int32)
        self.solves = 0

        core = _highs_core
        highs = core._Highs()
        highs.setOptionValue("output_flag", False)
        # Node LPs are tiny and re-solved thousands of times: HiGHS
        # presolve would cost more than it saves and would discard the
        # warm basis between runs.
        highs.setOptionValue("presolve", "off")

        combined = vstack_csr(arrays.a_ub, arrays.a_eq)
        csc = combined.csc
        m = combined.shape[0]
        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = m
        lp.col_cost_ = np.asarray(arrays.costs, dtype=float)
        lp.offset_ = 0.0
        lp.col_lower_ = np.asarray(arrays.lower, dtype=float)
        lp.col_upper_ = np.asarray(arrays.upper, dtype=float)
        row_lower = np.concatenate(
            [np.full(arrays.m_ub, -INF), np.asarray(arrays.b_eq, dtype=float)]
        )
        row_upper = np.concatenate(
            [np.asarray(arrays.b_ub, dtype=float), np.asarray(arrays.b_eq, dtype=float)]
        )
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.a_matrix_.format_ = core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = csc.indptr.astype(np.int32)
        lp.a_matrix_.index_ = csc.rows.astype(np.int32)
        lp.a_matrix_.value_ = np.asarray(csc.data, dtype=float)
        status = highs.passModel(lp)
        if status != core.HighsStatus.kOk:
            raise RuntimeError(f"HiGHS rejected the model: {status}")
        self._highs = highs
        self._core = core
        self._m_base = m

    def solve(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        extra_rows: Optional[Sequence[Dict[int, float]]] = None,
        extra_rhs: Optional[Sequence[float]] = None,
    ) -> LPResult:
        """Re-solve under a new bound box (plus optional scoped cut rows).

        The previous basis is retained by HiGHS, so a single-bound
        change from the last solve costs a few dual pivots.
        """
        highs = self._highs
        core = self._core
        highs.changeColsBounds(
            self._n,
            self._all_columns,
            np.asarray(lower, dtype=float),
            np.asarray(upper, dtype=float),
        )
        added = 0
        if extra_rows:
            assert extra_rhs is not None and len(extra_rhs) == len(extra_rows)
            starts: List[int] = []
            indices: List[int] = []
            values: List[float] = []
            for row in extra_rows:
                starts.append(len(indices))
                for j, c in sorted(row.items()):
                    indices.append(int(j))
                    values.append(float(c))
            starts.append(len(indices))
            added = len(extra_rows)
            highs.addRows(
                added,
                np.full(added, -INF),
                np.asarray(extra_rhs, dtype=float),
                len(indices),
                np.asarray(starts[:-1], dtype=np.int32),
                np.asarray(indices, dtype=np.int32),
                np.asarray(values, dtype=float),
            )
        try:
            highs.run()
            self.solves += 1
            model_status = highs.getModelStatus()
            if model_status == core.HighsModelStatus.kOptimal:
                solution = highs.getSolution()
                info = highs.getInfo()
                x = np.asarray(solution.col_value, dtype=float)
                return LPResult(
                    status="optimal",
                    x=x,
                    objective=float(info.objective_function_value),
                    iterations=int(info.simplex_iteration_count),
                )
            if model_status == core.HighsModelStatus.kInfeasible:
                return LPResult(status="infeasible")
            if model_status in (
                core.HighsModelStatus.kUnbounded,
                core.HighsModelStatus.kUnboundedOrInfeasible,
            ):
                return LPResult(status="unbounded")
            return LPResult(status="iteration_limit")
        finally:
            if added:
                rows = np.arange(
                    self._m_base, self._m_base + added, dtype=np.int32
                )
                self._highs.deleteRows(added, rows)
