"""An LRU cache of MILP solutions keyed by canonical model fingerprints.

DART batches routinely contain documents whose acquired tables are
byte-identical (re-issued balance sheets, duplicated submissions, the
same price list scraped twice).  Their grounded MILPs are identical
too, so solving them again is pure waste.  :class:`SolveCache` memoises
``(backend, options, fingerprint) -> Solution`` with LRU eviction.

The cache is *correct by construction*: the key covers everything that
can influence the solution (the full canonical model, the backend name
and the backend options -- minus :data:`PERFORMANCE_OPTIONS`, which
steer the search but never the answer), so a hit can be returned
verbatim.  Cached
:class:`~repro.milp.model.Solution` objects are treated as immutable
by every consumer in this repository; ``get`` hands back the stored
object without copying.

Certification hygiene: because :data:`PERFORMANCE_OPTIONS` are excluded
from keys, a solve that the numerics governor re-ran down its
degradation ladder (pricing/cuts/sparse disabled) would land on the
*pristine* fingerprint.  ``solve_with_stats(certify=True)`` therefore
only ever stores results from the first, as-requested ladder rung, and
re-certifies every hit on read — an uncertified or ladder-degraded
answer can never be served under the pristine key (see
:mod:`repro.milp.certify`).

Two-tier lookup: constructed with a ``store``
(:class:`~repro.repair.store.ResultStore`), the cache consults memory
first and the disk store second, promoting disk hits into memory.
Disk admission is gated by the caller: only ``put(..., certified=True)``
-- which :func:`~repro.milp.solver.solve_with_stats` issues exclusively
for first-rung exact-certified answers -- reaches the store, and the
store's own per-row checksums plus the solver's re-certification on
read guard the way back.  That is what makes duplicate documents free
*across* runs and tenants, not just within one process.

Thread-safety: a single lock guards the underlying ``OrderedDict``, so
one cache instance may be shared by concurrent threads.  Across
*processes* each worker holds its own instance (see
:mod:`repro.repair.batch`); fingerprints make the per-process caches
equivalent, they just warm up independently -- and a shared ``store``
lets them warm each other up through disk.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

from repro.milp.fingerprint import canonical_fingerprint
from repro.milp.model import MILPModel, Solution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repair -> milp)
    from repro.repair.store import ResultStore as ResultStoreLike

#: Default number of solutions retained.
DEFAULT_CACHE_SIZE = 256

CacheKey = Tuple[str, str, str]

#: Backend options that tune *how* the search runs but cannot change
#: the optimal solution (incumbent seeds, presolve/warm-start toggles,
#: branching and pricing rules).  Excluded from cache keys so a seeded
#: solve and a plain solve of the same model share one entry.
#: ``time_limit`` joins them because only wall-clock-independent
#: verdicts (optimal / infeasible / unbounded) are ever stored -- see
#: ``repro.milp.solver.solve_with_stats`` -- and those verdicts hold
#: under every budget.
PERFORMANCE_OPTIONS = frozenset(
    {
        "incumbent",
        "presolve",
        "warm_start",
        "branching",
        "pricing",
        "time_limit",
        "sparse",
        "cuts",
    }
)


@dataclass
class CacheInfo:
    """Hit/miss accounting, in the style of ``functools.lru_cache``."""

    hits: int = 0
    misses: int = 0
    maxsize: int = DEFAULT_CACHE_SIZE
    currsize: int = 0
    #: Subset of ``hits`` served from the disk store tier (and
    #: promoted into memory on the way out).
    store_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SolveCache:
    """LRU memo of solved models.

    ``maxsize <= 0`` disables in-memory storage (every memory lookup
    misses), which lets callers thread one object through
    unconditionally; a disk ``store`` still works at ``maxsize=0``.

    ``store`` is an optional second tier
    (:class:`~repro.repair.store.ResultStore` or anything with its
    ``get``/``put``/``evict`` shape): memory misses fall through to
    it, and disk hits are promoted into memory.  Only *certified*
    results (``put(..., certified=True)``) are admitted to disk.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        store: Optional["ResultStoreLike"] = None,
    ) -> None:
        self.maxsize = int(maxsize)
        self.store = store
        self._store: "OrderedDict[CacheKey, Solution]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._store_hits = 0

    @staticmethod
    def key_for(
        model: MILPModel,
        backend: str,
        options: Optional[Mapping[str, Any]] = None,
        semantics: Optional[Mapping[str, Any]] = None,
    ) -> CacheKey:
        """The cache key: backend, canonical options, model fingerprint.

        *semantics* carries caller-level context that changes what the
        stored solution *means* without appearing in the model itself
        -- e.g. the repair strategy and mis-repair budget of a cascade
        solve (``repro.repair.cascade``), whose residue solution must
        never be served for a plain ``exact`` request on the same
        fingerprint.  Unlike backend options, semantics entries are
        always folded into the key, never filtered by
        :data:`PERFORMANCE_OPTIONS`.
        """
        rendered_options = repr(
            (
                sorted(
                    (name, value)
                    for name, value in (options or {}).items()
                    if name not in PERFORMANCE_OPTIONS
                ),
                sorted((semantics or {}).items()),
            )
        )
        return (backend, rendered_options, canonical_fingerprint(model))

    def get(self, key: CacheKey) -> Optional[Solution]:
        with self._lock:
            solution = self._store.get(key)
            if solution is not None:
                self._store.move_to_end(key)
                self._hits += 1
                return solution
        # Second tier, outside the memory lock: the store has its own
        # locking, and a disk read must not block memory hits.
        if self.store is not None:
            solution = self.store.get(key)
            if solution is not None:
                with self._lock:
                    self._store_hits += 1
                    self._hits += 1
                    if self.maxsize > 0:
                        self._store[key] = solution
                        self._store.move_to_end(key)
                        while len(self._store) > self.maxsize:
                            self._store.popitem(last=False)
                return solution
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: CacheKey, solution: Solution, certified: bool = False) -> None:
        """Memoise *solution*; ``certified=True`` also persists it.

        The disk tier only admits results the caller vouches for with
        ``certified=True`` -- in practice, first-rung answers that
        passed exact-arithmetic certification.  Everything else stays
        in the volatile memory tier and dies with the process.
        """
        if certified and self.store is not None:
            self.store.put(key, solution)
        if self.maxsize <= 0:
            return
        with self._lock:
            self._store[key] = solution
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def evict(self, key: CacheKey) -> None:
        """Drop *key* from both tiers (a hit failed re-certification)."""
        with self._lock:
            self._store.pop(key, None)
        if self.store is not None:
            self.store.evict(key)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0
            self._store_hits = 0

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self.maxsize,
                currsize=len(self._store),
                store_hits=self._store_hits,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"SolveCache(size={info.currsize}/{info.maxsize}, "
            f"hits={info.hits}, misses={info.misses})"
        )
