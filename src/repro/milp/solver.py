"""The ``solve()`` facade over the MILP backends.

Backends:

- ``"scipy"`` (default) -- ``scipy.optimize.milp`` / HiGHS;
- ``"bnb"`` -- the from-scratch branch-and-bound with scipy's LP
  relaxation (fast relaxations, our search);
- ``"bnb-simplex"`` -- branch-and-bound over the from-scratch dense
  simplex: every line of the solve path is in this repository.

All backends receive the same :class:`~repro.milp.model.MILPModel` and
return the same :class:`~repro.milp.model.Solution` shape, so they are
interchangeable; the repair engine exposes the choice to callers.

:func:`solve_with_stats` is the instrumented variant used by the batch
engine: it times the call, consults an optional
:class:`~repro.milp.cache.SolveCache`, and returns a
:class:`SolveStats` record alongside the solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.diagnostics import NumericInstabilityError
from repro.milp.branch_and_bound import solve_branch_and_bound
from repro.milp.cache import SolveCache
from repro.milp.certify import Certificate, NumericsGovernor, certify_solution
from repro.milp.model import MILPModel, Solution, SolveStatus
from repro.milp.scipy_backend import solve_scipy

#: Statuses that are wall-clock-independent verdicts about the model
#: itself and therefore safe to memoise.  Anytime (``feasible_gap``)
#: and budget-expired results depend on how much time the *first*
#: caller happened to have -- caching them would hand a possibly worse
#: incumbent to a later caller with a bigger budget.
_CACHEABLE_STATUSES = frozenset(
    {SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED}
)

_BACKENDS: Dict[str, Callable[..., Solution]] = {
    "scipy": lambda model, **kw: solve_scipy(model, **kw),
    "bnb": lambda model, **kw: solve_branch_and_bound(model, lp_backend="scipy", **kw),
    "bnb-simplex": lambda model, **kw: solve_branch_and_bound(
        model, lp_backend="simplex", **kw
    ),
}

DEFAULT_BACKEND = "scipy"

#: The backend the batch engine retries with when the primary one
#: times out or errors.  Chosen to maximise independence: the scipy
#: backends fall back to our own search and vice versa.
FALLBACK_BACKEND: Dict[str, str] = {
    "scipy": "bnb",
    "bnb": "scipy",
    "bnb-simplex": "scipy",
    # The repair engine's approximate backend (not a milp backend --
    # see repro.repair.heuristic); its fallback is the exact default.
    "heuristic": "scipy",
}


@dataclass
class SolveStats:
    """Structured diagnostics for one :func:`solve_with_stats` call.

    One record per solver invocation (the repair engine's Big-M
    escalation loop may emit several per repair).  ``nodes`` counts
    branch-and-bound nodes explored, ``simplex_pivots`` LP pivot /
    simplex iterations (HiGHS does not report pivots through scipy, so
    it is 0 for the ``scipy`` backend).  ``cache_hit`` solves carry the
    *original* solve's node/pivot counts but their own (near-zero)
    ``wall_time``.  ``fallback`` is stamped by the batch engine when
    the record came from a retry on the alternate backend.
    """

    backend: str
    status: str
    wall_time: float
    nodes: int = 0
    simplex_pivots: int = 0
    cache_hit: bool = False
    fallback: bool = False
    n_variables: int = 0
    n_constraints: int = 0
    objective: Optional[float] = None
    #: Presolve reductions (rows dropped + variables fixed + bounds /
    #: coefficients tightened); 0 when presolve was off or trivial.
    presolve_reductions: int = 0
    #: Warm-started child LPs vs cold fallbacks (simplex-backed search).
    warm_start_hits: int = 0
    warm_start_fallbacks: int = 0
    #: Whether a heuristic incumbent seeded the search, and how far the
    #: seed's objective was from the proven optimum (None if unseeded
    #: or the solve failed).
    heuristic_seeded: bool = False
    heuristic_gap: Optional[float] = None
    #: Anytime solving: the certified absolute optimality gap (0.0 for
    #: proven optima, > 0 for budget-expired ``feasible_gap`` solves,
    #: None when the solve produced no usable incumbent) and the best
    #: dual bound backing the certificate.
    gap: Optional[float] = None
    best_bound: Optional[float] = None
    #: Which forensics phase emitted this record: "" for ordinary
    #: repair solves, "iis" for conflict extraction, "relax-count" /
    #: "relax-magnitude" / "relax-repair" for the lexicographic
    #: relaxation passes.  Forensics phases bypass the solve cache.
    phase: str = ""
    #: Cascade accounting (``strategy="cascade"`` repairs only): which
    #: tier emitted this record (``"t1-inversion"`` ...), how many
    #: violated ground rows the tier resolved, and how many it handed
    #: on to the next tier.  Empty / zero for ordinary solves.
    tier: str = ""
    tier_hits: int = 0
    tier_fallthroughs: int = 0
    #: Per-phase wall-clock seconds from the branch-and-bound backends
    #: (lowering / presolve / root LP / root cuts / tree search); empty
    #: for backends that do not report phases (plain ``scipy``).
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: Cutting-plane accounting (sparse branch-and-bound only): applied
    #: root cuts by family plus node-scoped pooled cuts.
    cuts_gomory: int = 0
    cuts_cover: int = 0
    node_cuts: int = 0
    #: Basis refactorizations performed by the revised simplex.
    refactorizations: int = 0
    #: Exact-arithmetic certification (``certify=True`` solves only):
    #: ``certified`` is None when certification was off, True/False
    #: otherwise; ``certification`` names the verification level
    #: ("milp" / "not-applicable").  ``certification_failures`` counts
    #: ladder rungs whose answer the certifier rejected before this
    #: one passed.
    certified: Optional[bool] = None
    certification: str = ""
    certification_failures: int = 0
    #: Separated cuts rejected at admission because they excluded an
    #: integer-feasible witness point (exact rational replay).
    cuts_rejected: int = 0
    #: Degradation-ladder accounting: every rung walked for this solve
    #: (``["as-requested"]`` when the first answer certified), and
    #: whether the returned answer came from a degraded rung.
    ladder_steps: List[str] = field(default_factory=list)
    degraded: bool = False
    #: Pricing runs that tripped the anti-cycling trigger and fell
    #: back to Bland's rule inside the revised simplex.
    bland_fallbacks: int = 0
    #: Largest basic-variable bound drift the LP cores observed beyond
    #: their feasibility tolerance (0.0 for numerically clean solves).
    numeric_drift: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "status": self.status,
            "wall_time": self.wall_time,
            "nodes": self.nodes,
            "simplex_pivots": self.simplex_pivots,
            "cache_hit": self.cache_hit,
            "fallback": self.fallback,
            "n_variables": self.n_variables,
            "n_constraints": self.n_constraints,
            "objective": self.objective,
            "presolve_reductions": self.presolve_reductions,
            "warm_start_hits": self.warm_start_hits,
            "warm_start_fallbacks": self.warm_start_fallbacks,
            "heuristic_seeded": self.heuristic_seeded,
            "heuristic_gap": self.heuristic_gap,
            "gap": self.gap,
            "best_bound": self.best_bound,
            "phase": self.phase,
            "tier": self.tier,
            "tier_hits": self.tier_hits,
            "tier_fallthroughs": self.tier_fallthroughs,
            "phase_times": dict(self.phase_times),
            "cuts_gomory": self.cuts_gomory,
            "cuts_cover": self.cuts_cover,
            "node_cuts": self.node_cuts,
            "refactorizations": self.refactorizations,
            "certified": self.certified,
            "certification": self.certification,
            "certification_failures": self.certification_failures,
            "cuts_rejected": self.cuts_rejected,
            "ladder_steps": list(self.ladder_steps),
            "degraded": self.degraded,
            "bland_fallbacks": self.bland_fallbacks,
            "numeric_drift": self.numeric_drift,
        }

    def __str__(self) -> str:
        flags = []
        if self.cache_hit:
            flags.append("cache-hit")
        if self.fallback:
            flags.append("fallback")
        if self.presolve_reductions:
            flags.append(f"presolve:{self.presolve_reductions}")
        if self.warm_start_hits or self.warm_start_fallbacks:
            flags.append(
                f"warm:{self.warm_start_hits}/{self.warm_start_fallbacks}"
            )
        if self.heuristic_seeded:
            gap = "?" if self.heuristic_gap is None else f"{self.heuristic_gap:g}"
            flags.append(f"seeded(gap={gap})")
        if self.status == "feasible_gap":
            certified = "?" if self.gap is None else f"{self.gap:g}"
            flags.append(f"anytime(gap={certified})")
        if self.cuts_gomory or self.cuts_cover or self.node_cuts:
            flags.append(
                f"cuts:g{self.cuts_gomory}/c{self.cuts_cover}"
                f"/n{self.node_cuts}"
            )
        if self.phase_times:
            rendered = " ".join(
                f"{name.removeprefix('phase_')}={seconds * 1000:.1f}ms"
                for name, seconds in sorted(self.phase_times.items())
            )
            flags.append(f"phases[{rendered}]")
        if self.certified is not None:
            verdict = "ok" if self.certified else "FAILED"
            flags.append(f"certified:{verdict}")
        if self.degraded:
            flags.append(f"ladder:{'>'.join(self.ladder_steps)}")
        if self.cuts_rejected:
            flags.append(f"cuts-rejected:{self.cuts_rejected}")
        if self.bland_fallbacks:
            flags.append(f"bland-fallbacks:{self.bland_fallbacks}")
        if self.numeric_drift:
            flags.append(f"drift:{self.numeric_drift:g}")
        if self.phase:
            flags.append(f"phase:{self.phase}")
        if self.tier:
            flags.append(
                f"{self.tier}:{self.tier_hits}/{self.tier_fallthroughs}"
            )
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"{self.backend}: {self.status} in {self.wall_time * 1000:.2f} ms, "
            f"{self.nodes} node(s), {self.simplex_pivots} pivot(s){suffix}"
        )


def available_backends() -> List[str]:
    """Names accepted by :func:`solve`."""
    return sorted(_BACKENDS)


def solve(model: MILPModel, backend: str = DEFAULT_BACKEND, **options) -> Solution:
    """Solve *model* with the chosen backend.

    Extra keyword *options* are passed through to the backend (e.g.
    ``max_nodes`` for the branch-and-bound backends, ``time_limit`` for
    scipy).
    """
    try:
        runner = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown MILP backend {backend!r}; choose from {available_backends()}"
        ) from None
    return runner(model, **options)


def _stats_from_solution(
    model: MILPModel,
    backend: str,
    solution: Solution,
    wall_time: float,
    cache_hit: bool,
) -> SolveStats:
    reductions = sum(
        int(solution.stats.get(key, 0))
        for key in (
            "presolve_rows_dropped",
            "presolve_vars_fixed",
            "presolve_bounds_tightened",
            "presolve_coeffs_tightened",
        )
    )
    best_bound = solution.stats.get("best_bound")
    phase_times = {
        key: float(value)
        for key, value in solution.stats.items()
        if key.startswith("phase_")
    }
    return SolveStats(
        backend=backend,
        status=solution.status.value,
        wall_time=wall_time,
        nodes=int(solution.stats.get("nodes", 0)),
        simplex_pivots=int(solution.stats.get("lp_iterations", 0)),
        cache_hit=cache_hit,
        n_variables=model.n_variables,
        n_constraints=model.n_constraints,
        objective=solution.objective,
        presolve_reductions=reductions,
        warm_start_hits=int(solution.stats.get("warm_start_hits", 0)),
        warm_start_fallbacks=int(solution.stats.get("warm_start_fallbacks", 0)),
        gap=solution.gap,
        best_bound=None if best_bound is None else float(best_bound),
        phase_times=phase_times,
        cuts_gomory=int(solution.stats.get("cuts_gomory", 0)),
        cuts_cover=int(solution.stats.get("cuts_cover", 0)),
        node_cuts=int(solution.stats.get("node_cuts_pooled", 0)),
        refactorizations=int(solution.stats.get("refactorizations", 0)),
        cuts_rejected=int(solution.stats.get("cuts_rejected", 0)),
        bland_fallbacks=int(solution.stats.get("bland_fallbacks", 0)),
        numeric_drift=float(solution.stats.get("numeric_drift", 0.0)),
    )


def solve_with_stats(
    model: MILPModel,
    backend: str = DEFAULT_BACKEND,
    *,
    cache: Optional[SolveCache] = None,
    cache_semantics: Optional[Dict[str, object]] = None,
    certify: bool = False,
    **options,
) -> Tuple[Solution, SolveStats]:
    """Solve *model*, returning ``(solution, stats)``.

    With a *cache*, the canonical fingerprint of the model is looked up
    first; a hit skips the backend entirely and is flagged in the
    returned :class:`SolveStats`.  *cache_semantics* is caller context
    folded into the key unconditionally (see
    :meth:`~repro.milp.cache.SolveCache.key_for`): a cascade residue
    solve and an exact solve of the same fingerprint must not share an
    entry.

    With ``certify=True`` every answer is replayed against the original
    model in exact rational arithmetic (:mod:`repro.milp.certify`).  A
    rejected answer is re-solved down the numerics degradation ladder
    (:class:`~repro.milp.certify.NumericsGovernor`) with the suspect
    artifact disabled; only results from the pristine first rung are
    ever cached, cache hits are re-certified before being trusted, and
    an exhausted ladder raises
    :class:`~repro.diagnostics.NumericInstabilityError`.
    """
    if certify:
        return _solve_certified(
            model, backend, cache=cache, cache_semantics=cache_semantics,
            **options,
        )
    started = time.perf_counter()
    if cache is not None:
        key = SolveCache.key_for(model, backend, options, cache_semantics)
        hit = cache.get(key)
        if hit is not None:
            return hit, _stats_from_solution(
                model, backend, hit, time.perf_counter() - started, True
            )
        solution = solve(model, backend=backend, **options)
        if solution.status in _CACHEABLE_STATUSES:
            cache.put(key, solution)
    else:
        solution = solve(model, backend=backend, **options)
    return solution, _stats_from_solution(
        model, backend, solution, time.perf_counter() - started, False
    )


def _certified_stats(
    model: MILPModel,
    backend: str,
    solution: Solution,
    wall_time: float,
    cache_hit: bool,
    certificate: Certificate,
    steps: List[str],
    rejected_rungs: int,
) -> SolveStats:
    stats = _stats_from_solution(model, backend, solution, wall_time, cache_hit)
    stats.certified = certificate.certified
    stats.certification = certificate.level
    stats.certification_failures = rejected_rungs
    stats.ladder_steps = list(steps)
    stats.degraded = len(steps) > 1
    return stats


def _solve_certified(
    model: MILPModel,
    backend: str,
    *,
    cache: Optional[SolveCache],
    cache_semantics: Optional[Dict[str, object]],
    **options,
) -> Tuple[Solution, SolveStats]:
    """The ``certify=True`` body of :func:`solve_with_stats`.

    Cache hygiene: performance-only options are excluded from cache
    keys (:data:`~repro.milp.cache.PERFORMANCE_OPTIONS`), so a
    ladder-degraded re-solve would land on the *pristine* fingerprint.
    Only the first ("as-requested") rung may therefore populate the
    cache — a degraded or uncertified answer never does.
    """
    started = time.perf_counter()
    key = None
    if cache is not None:
        key = SolveCache.key_for(model, backend, options, cache_semantics)
        hit = cache.get(key)
        if hit is not None:
            # Never trust a cached answer blindly: re-certify on read.
            # A failing hit is treated as absent and re-solved fresh
            # (it cannot be *proven* wrong from here, but it is no
            # longer proven right either).
            certificate = certify_solution(model, hit)
            if certificate.certified:
                return hit, _certified_stats(
                    model, backend, hit, time.perf_counter() - started,
                    True, certificate, ["as-requested"], 0,
                )
            # A poisoned hit must not linger in either cache tier: the
            # disk row in particular would keep serving (and failing)
            # across runs.  Evict, then fall through to a fresh solve.
            cache.evict(key)

    governor = NumericsGovernor(backend, options)
    steps: List[str] = []
    rung_failures: List[Dict[str, object]] = []
    for step, step_backend, step_options in governor.steps():
        steps.append(step)
        solution = solve(model, backend=step_backend, **step_options)
        certificate = certify_solution(model, solution)
        if certificate.certified:
            if (
                cache is not None
                and step == "as-requested"
                and solution.status in _CACHEABLE_STATUSES
            ):
                # ``certified=True`` is the disk-tier admission ticket:
                # only first-rung, exact-certified answers ever reach
                # the durable store (see repro.repair.store).
                cache.put(key, solution, certified=True)
            return solution, _certified_stats(
                model, step_backend, solution,
                time.perf_counter() - started, False, certificate, steps,
                len(rung_failures),
            )
        rung_failures.append({"step": step, **certificate.as_dict()})
    raise NumericInstabilityError(
        f"no rung of the numerics ladder produced a certifiable answer "
        f"for backend {backend!r} ({len(rung_failures)} rung(s) rejected)",
        backend=backend,
        ladder=rung_failures,
    )
