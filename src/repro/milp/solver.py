"""The ``solve()`` facade over the MILP backends.

Backends:

- ``"scipy"`` (default) -- ``scipy.optimize.milp`` / HiGHS;
- ``"bnb"`` -- the from-scratch branch-and-bound with scipy's LP
  relaxation (fast relaxations, our search);
- ``"bnb-simplex"`` -- branch-and-bound over the from-scratch dense
  simplex: every line of the solve path is in this repository.

All backends receive the same :class:`~repro.milp.model.MILPModel` and
return the same :class:`~repro.milp.model.Solution` shape, so they are
interchangeable; the repair engine exposes the choice to callers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.milp.branch_and_bound import solve_branch_and_bound
from repro.milp.model import MILPModel, Solution
from repro.milp.scipy_backend import solve_scipy

_BACKENDS: Dict[str, Callable[..., Solution]] = {
    "scipy": lambda model, **kw: solve_scipy(model, **kw),
    "bnb": lambda model, **kw: solve_branch_and_bound(model, lp_backend="scipy", **kw),
    "bnb-simplex": lambda model, **kw: solve_branch_and_bound(
        model, lp_backend="simplex", **kw
    ),
}

DEFAULT_BACKEND = "scipy"


def available_backends() -> List[str]:
    """Names accepted by :func:`solve`."""
    return sorted(_BACKENDS)


def solve(model: MILPModel, backend: str = DEFAULT_BACKEND, **options) -> Solution:
    """Solve *model* with the chosen backend.

    Extra keyword *options* are passed through to the backend (e.g.
    ``max_nodes`` for the branch-and-bound backends, ``time_limit`` for
    scipy).
    """
    try:
        runner = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown MILP backend {backend!r}; choose from {available_backends()}"
        ) from None
    return runner(model, **options)
