"""MILP model objects: variables, linear expressions, constraints.

A :class:`MILPModel` is a minimisation problem::

    min  c . x
    s.t. for each constraint:  a . x  (<= | >= | =)  b
         l <= x <= u           (per-variable bounds, possibly infinite)
         x_i integer           for integer/binary variables

Models are built incrementally (``add_variable`` / ``add_constraint`` /
``set_objective``) and consumed by the backends in
:mod:`repro.milp.solver`.  Expressions support operator sugar so model
construction code reads like algebra::

    z = model.add_variable("z", VarType.REAL)
    d = model.add_variable("d", VarType.BINARY)
    model.add_constraint(z - 3 * d <= 0, name="link")
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

INF = math.inf


class ModelError(ValueError):
    """Raised for malformed models (duplicate names, bad bounds, ...)."""


class VarType(enum.Enum):
    """The three variable sorts of the MILP formulation ``S*(AC)``."""

    REAL = "real"
    INTEGER = "integer"
    BINARY = "binary"

    @property
    def is_integral(self) -> bool:
        return self in (VarType.INTEGER, VarType.BINARY)


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "="


@dataclass(frozen=True)
class Variable:
    """A decision variable; interned in its model by index."""

    name: str
    index: int
    var_type: VarType
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ModelError(
                f"variable {self.name!r}: lower bound {self.lower} exceeds "
                f"upper bound {self.upper}"
            )

    # Arithmetic sugar -------------------------------------------------

    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-1.0 * self._expr()) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        return self._expr() * scalar

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self._expr() * scalar

    def __neg__(self) -> "LinExpr":
        return -1.0 * self._expr()

    def __le__(self, other: "ExprLike") -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other: "ExprLike") -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other: object) -> object:
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.index))


class LinExpr:
    """A linear expression ``sum(coeff_i * x_i) + constant``."""

    __slots__ = ("coefficients", "constant")

    def __init__(
        self, coefficients: Optional[Mapping[int, float]] = None, constant: float = 0.0
    ) -> None:
        self.coefficients: Dict[int, float] = dict(coefficients or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value: "ExprLike") -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ModelError(f"{value!r} is not a linear expression")
        return LinExpr({}, float(value))

    def copy(self) -> "LinExpr":
        return LinExpr(self.coefficients, self.constant)

    def add_term(self, variable: Variable, coefficient: float) -> "LinExpr":
        """In-place accumulation; returns self for chaining."""
        index = variable.index
        self.coefficients[index] = self.coefficients.get(index, 0.0) + coefficient
        return self

    def value(self, assignment: Sequence[float]) -> float:
        """Evaluate under a full variable assignment (by index)."""
        total = self.constant
        for index, coefficient in self.coefficients.items():
            total += coefficient * assignment[index]
        return total

    # Arithmetic -------------------------------------------------------

    def __add__(self, other: "ExprLike") -> "LinExpr":
        rhs = LinExpr._coerce(other)
        result = self.copy()
        for index, coefficient in rhs.coefficients.items():
            result.coefficients[index] = result.coefficients.get(index, 0.0) + coefficient
        result.constant += rhs.constant
        return result

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self.__add__(LinExpr._coerce(other) * -1.0)

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if isinstance(scalar, bool) or not isinstance(scalar, (int, float)):
            raise ModelError(f"cannot multiply LinExpr by {scalar!r}")
        return LinExpr(
            {i: c * scalar for i, c in self.coefficients.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # Comparisons build constraints -------------------------------------

    def __le__(self, other: "ExprLike") -> "Constraint":
        return Constraint.from_sides(self, Sense.LE, LinExpr._coerce(other))

    def __ge__(self, other: "ExprLike") -> "Constraint":
        return Constraint.from_sides(self, Sense.GE, LinExpr._coerce(other))

    def __eq__(self, other: object) -> object:
        if isinstance(other, (LinExpr, Variable, int, float)):
            return Constraint.from_sides(self, Sense.EQ, LinExpr._coerce(other))
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - LinExpr not used as key
        return id(self)

    def __repr__(self) -> str:
        parts = [f"{c:+g}*x{i}" for i, c in sorted(self.coefficients.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


ExprLike = Union[LinExpr, Variable, int, float]


@dataclass
class Constraint:
    """``expr (<=|>=|=) rhs`` with the constant folded to the right."""

    expr: LinExpr
    sense: Sense
    rhs: float
    name: str = ""

    @staticmethod
    def from_sides(left: LinExpr, sense: Sense, right: LinExpr) -> "Constraint":
        moved = left - right
        rhs = -moved.constant
        moved.constant = 0.0
        return Constraint(moved, sense, rhs)

    def satisfied_by(self, assignment: Sequence[float], tolerance: float = 1e-6) -> bool:
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return value <= self.rhs + tolerance
        if self.sense is Sense.GE:
            return value >= self.rhs - tolerance
        return abs(value - self.rhs) <= tolerance

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.expr!r} {self.sense.value} {self.rhs:g}"


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    #: Anytime result: a feasible incumbent returned on budget expiry,
    #: certified to be within ``stats["gap_absolute"]`` of the optimum.
    FEASIBLE_GAP = "feasible_gap"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"


@dataclass
class Solution:
    """Result of solving a model."""

    status: SolveStatus
    objective: Optional[float] = None
    values: Optional[Dict[str, float]] = None
    #: backend-specific diagnostics (node counts, iterations, ...)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_usable(self) -> bool:
        """Does the solution carry a feasible point a caller can act on?

        True for proven optima and for anytime (``feasible_gap``)
        incumbents -- the statuses whose ``values`` are a certified
        feasible assignment.
        """
        return (
            self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE_GAP)
            and self.values is not None
        )

    @property
    def gap(self) -> Optional[float]:
        """The certified absolute optimality gap, when reported.

        0.0 for proven optima; ``stats["gap_absolute"]`` for anytime
        incumbents; ``None`` when the solve produced no usable point.
        """
        if self.status is SolveStatus.OPTIMAL:
            return float(self.stats.get("gap_absolute", 0.0))
        if self.status is SolveStatus.FEASIBLE_GAP:
            gap = self.stats.get("gap_absolute")
            return None if gap is None else float(gap)
        return None

    def __getitem__(self, variable_name: str) -> float:
        if self.values is None:
            raise KeyError("solution has no variable values")
        return self.values[variable_name]


class MILPModel:
    """An incrementally-built minimisation MILP."""

    def __init__(self, name: str = "milp") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self._by_name: Dict[str, Variable] = {}
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()

    # Construction -------------------------------------------------------

    def add_variable(
        self,
        name: str,
        var_type: VarType = VarType.REAL,
        lower: float = -INF,
        upper: float = INF,
    ) -> Variable:
        """Create and register a new variable.

        Binary variables force bounds to [0, 1] regardless of the
        arguments (the standard convention).
        """
        if name in self._by_name:
            raise ModelError(f"duplicate variable name {name!r}")
        if var_type is VarType.BINARY:
            lower, upper = 0.0, 1.0
        variable = Variable(name, len(self.variables), var_type, float(lower), float(upper))
        self.variables.append(variable)
        self._by_name[name] = variable
        return variable

    def variable(self, name: str) -> Variable:
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"no variable named {name!r}") from None

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise ModelError(
                f"expected a Constraint (did you compare with ==?), got "
                f"{constraint!r}"
            )
        if name:
            constraint.name = name
        for index in constraint.expr.coefficients:
            if index >= len(self.variables):
                raise ModelError(
                    f"constraint references unknown variable index {index}"
                )
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr: ExprLike) -> None:
        """Set the (minimisation) objective."""
        self.objective = LinExpr._coerce(expr).copy()

    # Introspection --------------------------------------------------------

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    @property
    def n_integral(self) -> int:
        return sum(1 for v in self.variables if v.var_type.is_integral)

    @property
    def n_binary(self) -> int:
        return sum(1 for v in self.variables if v.var_type is VarType.BINARY)

    def is_pure_lp(self) -> bool:
        return self.n_integral == 0

    def evaluate_objective(self, assignment: Sequence[float]) -> float:
        return self.objective.value(assignment)

    def check_feasible(
        self, assignment: Sequence[float], tolerance: float = 1e-6
    ) -> bool:
        """Full feasibility check of an assignment (bounds, integrality,
        constraints) -- used by tests to validate backend output."""
        if len(assignment) != self.n_variables:
            return False
        for variable, value in zip(self.variables, assignment):
            if value < variable.lower - tolerance or value > variable.upper + tolerance:
                return False
            if variable.var_type.is_integral and abs(value - round(value)) > tolerance:
                return False
        return all(c.satisfied_by(assignment, tolerance) for c in self.constraints)

    def solution_values(self, assignment: Sequence[float]) -> Dict[str, float]:
        return {v.name: assignment[v.index] for v in self.variables}

    def __repr__(self) -> str:
        return (
            f"MILPModel({self.name!r}: {self.n_variables} vars "
            f"({self.n_integral} integral, {self.n_binary} binary), "
            f"{self.n_constraints} constraints)"
        )
