"""Warm-started node LPs for the branch-and-bound tree.

The pre-overhaul search called :func:`repro.milp.simplex.solve_lp`
cold at every node: re-standardise the variables, rebuild the tableau,
run phase 1 from scratch.  But between a parent node and its child
exactly one bound changes -- everything else (costs, rows, the rest of
the bound box) is identical, so the parent's optimal basis is one RHS
perturbation away from the child's.

:class:`WarmStartTree` exploits that.  It builds **one** fixed-structure
tableau per tree:

- variables are shifted by the *root* lower bounds (``x = l0 + x'``),
  so every standardised variable is ``>= 0`` and the structure never
  changes as node bounds move;
- every variable contributes an explicit upper-bound row
  ``x' <= u - l0`` and every integral variable a lower-branch row
  ``-x' <= -(l - l0)`` (slack 0 at the root), so a node's bound change
  is purely an RHS change on one of these rows;
- the identity column of each bound row (its slack) gives
  ``B^-1 e_row`` for free in the current tableau, so the child's RHS is
  ``parent_rhs + delta * T[:, slack(row)]`` -- no refactorisation;
- the parent's optimal basis stays *dual* feasible after an RHS change
  (costs are untouched), so the child is re-solved by **dual simplex**
  pivots (usually one or two), followed by a primal clean-up pass.

The structure requires every bound to be finite.  DART's grounded
instances satisfy this after presolve (the ``y = z - v`` rows give the
difference variables finite implied bounds); models with genuinely free
variables raise :class:`WarmStartUnavailable` and the caller falls back
to cold solves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.milp.lowering import DenseArrays
from repro.milp.revised import BasisSnapshot, RevisedSimplex
from repro.milp.simplex import (
    FEAS_TOL,
    LPResult,
    PIVOT_TOL,
    PRICING_DANTZIG,
    _run_dual_simplex,
    _run_simplex,
    _Tableau,
)
from repro.milp.sparse import SparseArrays

INF = math.inf


class WarmStartUnavailable(RuntimeError):
    """The model cannot use the fixed-structure warm-start tableau."""


@dataclass
class TreeNodeState:
    """The solved tableau of one node, reusable by its children."""

    matrix: np.ndarray
    rhs: np.ndarray
    basis: List[int]
    #: Current solver-space RHS of every bound row at this node.
    bound_rhs: np.ndarray


class WarmStartTree:
    """Shared warm-start structure for one branch-and-bound tree."""

    def __init__(self, arrays: DenseArrays, *, max_iterations: int = 50_000) -> None:
        if not (
            np.all(np.isfinite(arrays.lower)) and np.all(np.isfinite(arrays.upper))
        ):
            raise WarmStartUnavailable(
                "warm-started node LPs need finite bounds on every variable"
            )
        self.arrays = arrays
        self.max_iterations = max_iterations
        n = arrays.n
        self.l0 = arrays.lower.astype(float).copy()

        # Row layout: [ub rows][eq rows][upper-bound rows][lower-branch rows].
        m_ub = arrays.a_ub.shape[0]
        m_eq = arrays.a_eq.shape[0]
        integral = list(arrays.integral)
        self._upper_row: Dict[int, int] = {}
        self._lower_row: Dict[int, int] = {}

        shifted_b_ub = arrays.b_ub - (arrays.a_ub @ self.l0 if m_ub else 0.0)
        shifted_b_eq = arrays.b_eq - (arrays.a_eq @ self.l0 if m_eq else 0.0)

        structural_rows: List[np.ndarray] = []
        structural_rhs: List[float] = []
        for i in range(m_ub):
            structural_rows.append(arrays.a_ub[i])
            structural_rhs.append(float(shifted_b_ub[i]))
        for i in range(m_eq):
            structural_rows.append(arrays.a_eq[i])
            structural_rhs.append(float(shifted_b_eq[i]))
        first_bound_row = m_ub + m_eq
        for j in range(n):
            row = np.zeros(n)
            row[j] = 1.0
            self._upper_row[j] = len(structural_rows)
            structural_rows.append(row)
            structural_rhs.append(float(arrays.upper[j] - self.l0[j]))
        for j in integral:
            row = np.zeros(n)
            row[j] = -1.0
            self._lower_row[j] = len(structural_rows)
            structural_rows.append(row)
            structural_rhs.append(0.0)
        m = len(structural_rows)
        self.first_bound_row = first_bound_row
        self.n_bound_rows = m - first_bound_row

        # Slack for every non-eq row; artificial for eq rows and any row
        # whose initial RHS is negative (bound rows never are: the root
        # box is ``0 <= x' <= u - l0``).
        is_eq = [False] * m_ub + [True] * m_eq + [False] * self.n_bound_rows
        negate = [
            (not is_eq[i]) and structural_rhs[i] < 0.0 for i in range(m)
        ]
        eq_negate = [is_eq[i] and structural_rhs[i] < 0.0 for i in range(m)]
        n_slack = sum(1 for i in range(m) if not is_eq[i])
        artificial_rows = [i for i in range(m) if is_eq[i] or negate[i]]
        n_total = n + n_slack + len(artificial_rows)

        matrix = np.zeros((m, n_total))
        rhs = np.zeros(m)
        basis = [-1] * m
        unit_column = [-1] * m
        slack_column = n
        for i in range(m):
            row = np.asarray(structural_rows[i], dtype=float)
            value = structural_rhs[i]
            sign = -1.0 if (negate[i] or eq_negate[i]) else 1.0
            matrix[i, :n] = sign * row
            rhs[i] = sign * value
            if not is_eq[i]:
                matrix[i, slack_column] = sign * 1.0 if not negate[i] else -1.0
                if not negate[i]:
                    basis[i] = slack_column
                    unit_column[i] = slack_column
                slack_column += 1
        artificial_column = n + n_slack
        for i in artificial_rows:
            matrix[i, artificial_column] = 1.0
            basis[i] = artificial_column
            unit_column[i] = artificial_column
            artificial_column += 1

        self._matrix0 = matrix
        self._rhs0 = rhs
        self._basis0 = basis
        self._unit_column = unit_column
        self._n = n
        self._n_slack = n_slack
        self._n_artificial = len(artificial_rows)
        self._n_total = n_total

        self.phase2_costs = np.zeros(n_total)
        self.phase2_costs[:n] = arrays.costs
        self.allowed = np.ones(n_total, dtype=bool)
        self.allowed[n + n_slack:] = False
        self._root_bound_rhs = np.array(
            structural_rhs[first_bound_row:], dtype=float
        )

    # ------------------------------------------------------------------

    def _extract(self, tableau: _Tableau) -> LPResult:
        std = np.zeros(self._n_total)
        for row, column in enumerate(tableau.basis):
            std[column] = tableau.rhs[row]
        x = self.l0 + std[: self._n]
        objective = float(self.arrays.costs @ x)
        return LPResult(
            status="optimal",
            x=x,
            objective=objective,
            iterations=tableau.iterations,
            rhs_violation=tableau.rhs_violation,
        )

    def solve_root(self) -> Tuple[LPResult, Optional[TreeNodeState]]:
        """Cold-solve the root relaxation on the fixed structure."""
        tableau = _Tableau(
            self._matrix0.copy(), self._rhs0.copy(), list(self._basis0)
        )
        if self._n_artificial:
            phase1_costs = np.zeros(self._n_total)
            phase1_costs[self._n + self._n_slack:] = 1.0
            allowed = np.ones(self._n_total, dtype=bool)
            status = _run_simplex(
                tableau, phase1_costs, allowed, self.max_iterations
            )
            if status == "iteration_limit":
                return LPResult("iteration_limit", iterations=tableau.iterations), None
            if float(phase1_costs[tableau.basis] @ tableau.rhs) > FEAS_TOL:
                return LPResult("infeasible", iterations=tableau.iterations), None
            for row in range(tableau.matrix.shape[0]):
                if tableau.basis[row] >= self._n + self._n_slack:
                    for column in range(self._n + self._n_slack):
                        if abs(tableau.matrix[row, column]) > PIVOT_TOL:
                            tableau.pivot(row, column)
                            break
        status = _run_simplex(
            tableau, self.phase2_costs, self.allowed, self.max_iterations
        )
        if status != "optimal":
            return LPResult(status, iterations=tableau.iterations), None
        result = self._extract(tableau)
        state = TreeNodeState(
            matrix=tableau.matrix,
            rhs=tableau.rhs,
            basis=tableau.basis,
            bound_rhs=self._root_bound_rhs.copy(),
        )
        return result, state

    def solve_child(
        self,
        parent: TreeNodeState,
        index: int,
        side: str,
        value: float,
        *,
        iteration_budget: int = 2_000,
    ) -> Tuple[LPResult, Optional[TreeNodeState]]:
        """Re-solve with one bound changed against the parent basis.

        ``side`` is ``"upper"`` (``x_index <= value``) or ``"lower"``
        (``x_index >= value``).  Returns ``(result, state)``; ``state``
        is ``None`` for infeasible children and for iteration-capped
        solves (the caller should fall back to a cold solve for the
        latter -- ``result.status`` distinguishes the two).
        """
        if side == "upper":
            row = self._upper_row[index]
            new_rhs = value - self.l0[index]
        else:
            row = self._lower_row[index]
            new_rhs = -(value - self.l0[index])
        position = row - self.first_bound_row
        delta = new_rhs - parent.bound_rhs[position]

        matrix = parent.matrix.copy()
        # B^-1 e_row is the current column of the row's original
        # identity (slack) column: the child RHS needs no refactorise.
        rhs = parent.rhs + delta * matrix[:, self._unit_column[row]]
        tableau = _Tableau(matrix, rhs, list(parent.basis))

        budget = tableau.iterations + iteration_budget
        status = _run_dual_simplex(
            tableau, self.phase2_costs, self.allowed, budget
        )
        if status == "infeasible":
            return LPResult("infeasible", iterations=tableau.iterations), None
        if status == "iteration_limit":
            return LPResult("iteration_limit", iterations=tableau.iterations), None
        # Dual pivots can leave sub-optimal reduced costs only through
        # tolerance slop; a primal clean-up pass settles it (usually 0
        # pivots).
        status = _run_simplex(
            tableau,
            self.phase2_costs,
            self.allowed,
            tableau.iterations + iteration_budget,
        )
        if status != "optimal":
            return LPResult(status, iterations=tableau.iterations), None
        result = self._extract(tableau)
        bound_rhs = parent.bound_rhs.copy()
        bound_rhs[position] = new_rhs
        state = TreeNodeState(
            matrix=tableau.matrix,
            rhs=tableau.rhs,
            basis=tableau.basis,
            bound_rhs=bound_rhs,
        )
        return result, state


# ----------------------------------------------------------------------
# Sparse warm starts over the revised simplex
# ----------------------------------------------------------------------


@dataclass
class SparseNodeState:
    """One node's basis snapshot plus its materialised bound box.

    Unlike :class:`TreeNodeState` (which copies the full dense tableau
    per node), this is a handful of index arrays and a shared basis
    factorization -- cheap enough to keep for every open node.
    """

    snapshot: BasisSnapshot
    lower: np.ndarray
    upper: np.ndarray


class SparseWarmStartTree:
    """Fixed-structure warm starts backed by :class:`RevisedSimplex`.

    The dense tree encodes bound changes as RHS edits on explicit bound
    rows, which is why it demands finite bounds everywhere.  The
    revised simplex handles bounds implicitly (nonbasic-at-bound
    statuses), so a branching decision is just a new bound box under
    the parent's basis: :meth:`RevisedSimplex.install` restores the
    snapshot, one FTRAN recomputes the basic values, and a couple of
    dual pivots restore feasibility.  Free variables are fine -- no
    :class:`WarmStartUnavailable` cases.
    """

    def __init__(
        self,
        arrays: SparseArrays,
        *,
        max_iterations: int = 50_000,
        pricing: str = PRICING_DANTZIG,
    ) -> None:
        self.arrays = arrays
        self.engine = RevisedSimplex(
            arrays, max_iterations=max_iterations, pricing=pricing
        )

    def solve_root(self) -> Tuple[LPResult, Optional[SparseNodeState]]:
        """Cold-solve the root relaxation and snapshot its basis."""
        result = self.engine.solve()
        if result.status != "optimal":
            return result, None
        return result, SparseNodeState(
            snapshot=self.engine.snapshot(),
            lower=self.arrays.lower.astype(float).copy(),
            upper=self.arrays.upper.astype(float).copy(),
        )

    def solve_child(
        self,
        parent: SparseNodeState,
        index: int,
        side: str,
        value: float,
        *,
        iteration_budget: int = 2_000,
    ) -> Tuple[LPResult, Optional[SparseNodeState]]:
        """Re-solve with one bound tightened against the parent basis.

        Same contract as :meth:`WarmStartTree.solve_child`: ``state`` is
        ``None`` for infeasible children and iteration-capped solves
        (``result.status`` distinguishes the two; the caller cold-solves
        the latter).
        """
        lower = parent.lower.copy()
        upper = parent.upper.copy()
        if side == "upper":
            upper[index] = min(upper[index], value)
        else:
            lower[index] = max(lower[index], value)
        if not self.engine.install(parent.snapshot, lower, upper):
            return LPResult(status="infeasible"), None
        result = self.engine.resolve_dual(iteration_budget=iteration_budget)
        if result.status != "optimal":
            return result, None
        return result, SparseNodeState(
            snapshot=self.engine.snapshot(), lower=lower, upper=upper
        )
