"""A textual DSL for aggregation functions and aggregate constraints.

DART's acquisition designer records constraints in *constraint
metadata* (Section 2).  This module gives that metadata a concrete,
human-writable syntax.  The running example of the paper reads::

    function chi1(x, y, z) = sum(Value) from CashBudget
        where Section = $x and Year = $y and Type = $z

    function chi2(x, y) = sum(Value) from CashBudget
        where Year = $x and Subsection = $y

    constraint detail_vs_aggregate:
        CashBudget(y, x, _, _, _) =>
            chi1(x, y, 'det') - chi1(x, y, 'aggr') = 0

    constraint net_cash_inflow:
        CashBudget(x, _, _, _, _) =>
            chi2(x, 'net cash inflow')
            - chi2(x, 'total cash receipts')
            + chi2(x, 'total disbursements') = 0

Grammar (informally)::

    file        := (function | constraint)*
    function    := "function" NAME "(" params ")" "="
                   "sum" "(" expr ")" "from" NAME ["where" condition]
    constraint  := "constraint" NAME ":" body "=>" aggside RELOP number
    body        := atom ("," atom)*
    atom        := NAME "(" term ("," term)* ")"
    term        := NAME | "_" | number | string
    aggside     := [sign] summand (sign summand)*
    summand     := [number "*"] NAME "(" args ")"
    condition   := disjunction of conjunctions of comparisons;
                   operands are attribute NAMEs, "$"-prefixed
                   parameters, numbers and strings
    expr        := linear arithmetic over attribute NAMEs and numbers
                   with "+", "-", "*" and parentheses

Comments run from ``#`` to end of line.  Newlines are insignificant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple, Union

from repro.constraints.aggregates import AggregationFunction
from repro.constraints.constraint import (
    AggregateConstraint,
    BodyAtom,
    ConstraintTerm,
)
from repro.constraints.expressions import (
    AttrTerm,
    ConstTerm,
    Expression,
    Product,
    Sum,
)
from repro.relational.predicates import (
    And,
    AttrRef,
    Comparison,
    Condition,
    Const,
    Not,
    Or,
    TRUE,
    Term,
    Var,
    conjunction,
)


class ConstraintParseError(ValueError):
    """Raised on any syntax or semantic error in the DSL text."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
    ("ARROW", r"=>"),
    ("RELOP", r"<=|>=|!=|<|>"),
    ("EQ", r"="),
    ("PARAM", r"\$[A-Za-z_][A-Za-z0-9_]*"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("COLON", r":"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("UNDERSCORE", r"_"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {"function", "constraint", "sum", "from", "where", "and", "or", "not"}


@dataclass
class _Token:
    kind: str
    text: str
    line: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ConstraintParseError(
                f"unexpected character {text[position]!r}", line
            )
        kind = match.lastgroup or ""
        value = match.group()
        position = match.end()
        if kind == "NEWLINE":
            line += 1
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "NAME" and value.lower() in _KEYWORDS:
            kind = value.lower().upper()
        tokens.append(_Token(kind, value, line))
    tokens.append(_Token("EOF", "", line))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._position = 0
        self._anonymous_counter = 0

    # Token plumbing ---------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ConstraintParseError(
                f"expected {kind}, found {token.kind} ({token.text!r})", token.line
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[_Token]:
        if self._peek().kind == kind:
            return self._advance()
        return None

    # Top level ----------------------------------------------------------

    def parse_file(
        self,
    ) -> PyTuple[Dict[str, AggregationFunction], List[AggregateConstraint]]:
        functions: Dict[str, AggregationFunction] = {}
        constraints: List[AggregateConstraint] = []
        while self._peek().kind != "EOF":
            token = self._peek()
            if token.kind == "FUNCTION":
                function = self._parse_function()
                if function.name in functions:
                    raise ConstraintParseError(
                        f"duplicate function name {function.name!r}", token.line
                    )
                functions[function.name] = function
            elif token.kind == "CONSTRAINT":
                constraints.append(self._parse_constraint(functions))
            else:
                raise ConstraintParseError(
                    f"expected 'function' or 'constraint', found {token.text!r}",
                    token.line,
                )
        return functions, constraints

    # Function definitions ------------------------------------------------

    def _parse_function(self) -> AggregationFunction:
        self._expect("FUNCTION")
        name = self._expect("NAME").text
        self._expect("LPAREN")
        parameters: List[str] = []
        if self._peek().kind != "RPAREN":
            parameters.append(self._expect("NAME").text)
            while self._accept("COMMA"):
                parameters.append(self._expect("NAME").text)
        self._expect("RPAREN")
        self._expect("EQ")
        self._expect("SUM")
        self._expect("LPAREN")
        expression = self._parse_expression()
        self._expect("RPAREN")
        self._expect("FROM")
        relation = self._expect("NAME").text
        condition: Condition = TRUE
        if self._accept("WHERE"):
            condition = self._parse_condition()
        try:
            return AggregationFunction(name, relation, parameters, expression, condition)
        except ValueError as exc:
            raise ConstraintParseError(str(exc)) from exc

    # Attribute expressions ------------------------------------------------

    def _parse_expression(self) -> Expression:
        expression = self._parse_expr_term()
        while self._peek().kind in ("PLUS", "MINUS"):
            op = "+" if self._advance().kind == "PLUS" else "-"
            right = self._parse_expr_term()
            expression = Sum(expression, right, op)
        return expression

    def _parse_expr_term(self) -> Expression:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.text)
            if self._accept("STAR"):
                operand = self._parse_expr_term()
                return Product(value, operand)
            return ConstTerm(value)
        if token.kind == "MINUS":
            self._advance()
            operand = self._parse_expr_term()
            return Product(-1.0, operand)
        if token.kind == "NAME":
            self._advance()
            return AttrTerm(token.text)
        if token.kind == "LPAREN":
            self._advance()
            inner = self._parse_expression()
            self._expect("RPAREN")
            return inner
        raise ConstraintParseError(
            f"expected an attribute expression, found {token.text!r}", token.line
        )

    # WHERE conditions ------------------------------------------------------

    def _parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        parts = [self._parse_and()]
        while self._accept("OR"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def _parse_and(self) -> Condition:
        parts = [self._parse_not()]
        while self._accept("AND"):
            parts.append(self._parse_not())
        return conjunction(parts)

    def _parse_not(self) -> Condition:
        if self._accept("NOT"):
            return Not(self._parse_not())
        if self._peek().kind == "LPAREN":
            # Could be a parenthesised condition; comparisons never start
            # with "(" in this grammar.
            self._advance()
            inner = self._parse_condition()
            self._expect("RPAREN")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Condition:
        left = self._parse_operand()
        token = self._peek()
        if token.kind == "RELOP":
            op = self._advance().text
        elif token.kind == "EQ":
            self._advance()
            op = "="
        else:
            raise ConstraintParseError(
                f"expected a comparison operator, found {token.text!r}", token.line
            )
        right = self._parse_operand()
        return Comparison(left, op, right)

    def _parse_operand(self) -> Term:
        token = self._advance()
        if token.kind == "NAME":
            return AttrRef(token.text)
        if token.kind == "PARAM":
            return Var(token.text[1:])
        if token.kind == "NUMBER":
            return Const(_number(token.text))
        if token.kind == "STRING":
            return Const(_unquote(token.text))
        raise ConstraintParseError(
            f"expected attribute, parameter, number or string, found "
            f"{token.text!r}",
            token.line,
        )

    # Constraints -------------------------------------------------------------

    def _parse_constraint(
        self, functions: Dict[str, AggregationFunction]
    ) -> AggregateConstraint:
        self._expect("CONSTRAINT")
        name = self._expect("NAME").text
        self._expect("COLON")
        body = [self._parse_atom()]
        while self._accept("COMMA"):
            body.append(self._parse_atom())
        self._expect("ARROW")
        terms = self._parse_aggregate_side(functions)
        relop_token = self._peek()
        if relop_token.kind == "RELOP":
            relop = self._advance().text
            if relop not in ("<=", ">="):
                raise ConstraintParseError(
                    f"operator {relop!r} is not allowed on the aggregate side "
                    f"(use <=, >= or =)",
                    relop_token.line,
                )
        elif relop_token.kind == "EQ":
            self._advance()
            relop = "="
        else:
            raise ConstraintParseError(
                f"expected <=, >= or =, found {relop_token.text!r}",
                relop_token.line,
            )
        rhs_token = self._expect("NUMBER")
        try:
            return AggregateConstraint(name, body, terms, relop, _number(rhs_token.text))
        except ValueError as exc:
            raise ConstraintParseError(str(exc), rhs_token.line) from exc

    def _parse_atom(self) -> BodyAtom:
        relation = self._expect("NAME").text
        self._expect("LPAREN")
        terms: List[Term] = [self._parse_atom_term()]
        while self._accept("COMMA"):
            terms.append(self._parse_atom_term())
        self._expect("RPAREN")
        return BodyAtom(relation, terms)

    def _parse_atom_term(self) -> Term:
        token = self._advance()
        # A bare "_" tokenizes as a NAME; it denotes a fresh anonymous
        # variable (the paper's shorthand for "don't care" positions).
        if token.kind in ("NAME", "UNDERSCORE") and token.text == "_":
            self._anonymous_counter += 1
            return Var(f"_anon{self._anonymous_counter}")
        if token.kind == "NAME":
            return Var(token.text)
        if token.kind == "NUMBER":
            return Const(_number(token.text))
        if token.kind == "STRING":
            return Const(_unquote(token.text))
        raise ConstraintParseError(
            f"expected variable, '_', number or string, found {token.text!r}",
            token.line,
        )

    def _parse_aggregate_side(
        self, functions: Dict[str, AggregationFunction]
    ) -> List[ConstraintTerm]:
        terms: List[ConstraintTerm] = []
        sign = 1.0
        if self._accept("MINUS"):
            sign = -1.0
        elif self._accept("PLUS"):
            sign = 1.0
        terms.append(self._parse_summand(functions, sign))
        while self._peek().kind in ("PLUS", "MINUS"):
            sign = 1.0 if self._advance().kind == "PLUS" else -1.0
            terms.append(self._parse_summand(functions, sign))
        return terms

    def _parse_summand(
        self, functions: Dict[str, AggregationFunction], sign: float
    ) -> ConstraintTerm:
        coefficient = sign
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            coefficient = sign * _number(token.text)
            self._expect("STAR")
        name_token = self._expect("NAME")
        function = functions.get(name_token.text)
        if function is None:
            raise ConstraintParseError(
                f"unknown aggregation function {name_token.text!r}",
                name_token.line,
            )
        self._expect("LPAREN")
        arguments: List[Term] = []
        if self._peek().kind != "RPAREN":
            arguments.append(self._parse_atom_term())
            while self._accept("COMMA"):
                arguments.append(self._parse_atom_term())
        self._expect("RPAREN")
        try:
            return ConstraintTerm(coefficient, function, arguments)
        except ValueError as exc:
            raise ConstraintParseError(str(exc), name_token.line) from exc


def _number(text: str) -> Union[int, float]:
    if "." in text:
        return float(text)
    return int(text)


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def parse_constraints(
    text: str,
) -> PyTuple[Dict[str, AggregationFunction], List[AggregateConstraint]]:
    """Parse DSL *text* into aggregation functions and constraints.

    Returns ``(functions, constraints)``; the functions dictionary maps
    function names to :class:`AggregationFunction` objects, and each
    constraint references those shared function objects.
    """
    parser = _Parser(_tokenize(text))
    return parser.parse_file()
