"""Grounding aggregate constraints over a database instance.

Section 5 of the paper builds, for every ground substitution ``theta``
of a constraint's variables that makes the body ``phi`` true, one
linear (in)equality over the per-cell variables ``z_{t,A}``.  This
module implements that construction at the *symbolic* level:

- :func:`enumerate_substitutions` evaluates the conjunctive body over
  the database (a backtracking join over the atoms),
- :class:`GroundConstraint` is one ground linear (in)equality, with a
  coefficient per measure cell, a frozen constant (contributions of
  constants and of non-measure numerical attributes), a relational
  operator and a right-hand side,
- :func:`ground_constraints` produces the full system ``S(AC)``,
- :func:`check_consistency` evaluates ``D |= AC`` and reports
  violations.

The MILP translation of :mod:`repro.repair.translation` consumes
:class:`GroundConstraint` objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple as PyTuple,
)

from repro.constraints.constraint import (
    AggregateConstraint,
    BodyAtom,
    ConstraintError,
    Relop,
)
from repro.relational.database import Database
from repro.relational.predicates import Const, Var
from repro.relational.tuples import Tuple

#: A measure cell: ``(relation, tuple_id, attribute)``.
Cell = PyTuple[str, int, str]


# ---------------------------------------------------------------------------
# Body evaluation
# ---------------------------------------------------------------------------


def _match_atom(
    atom: BodyAtom, row: Tuple, binding: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Try to unify *atom* with *row* under *binding*.

    Returns the extended binding on success, ``None`` on mismatch.
    """
    extension: Dict[str, Any] = {}
    for term, value in zip(atom.terms, row.values):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = binding.get(term.name, extension.get(term.name, _UNSET))
            if bound is _UNSET:
                extension[term.name] = value
            elif bound != value:
                return None
    if not extension:
        return binding
    merged = dict(binding)
    merged.update(extension)
    return merged


_UNSET = object()


def enumerate_substitutions(
    constraint: AggregateConstraint, database: Database
) -> Iterator[Dict[str, Any]]:
    """All ground substitutions theta with ``phi(theta x)`` true in *database*.

    Substitutions are yielded projected onto the variables that the
    aggregation arguments actually use: two substitutions differing
    only on "don't care" body variables would produce the *same*
    ground inequality, so they are collapsed here (the paper's
    shorthand replaces such variables with ``_``).
    """
    relevant: Set[str] = set()
    for term in constraint.terms:
        relevant |= term.variables()

    seen: Set[PyTuple[PyTuple[str, Any], ...]] = set()

    def recurse(atom_index: int, binding: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        if atom_index == len(constraint.body):
            projected = {v: binding[v] for v in relevant if v in binding}
            key = tuple(sorted(projected.items()))
            if key not in seen:
                seen.add(key)
                yield projected
            return
        atom = constraint.body[atom_index]
        for row in database.relation(atom.relation):
            extended = _match_atom(atom, row, binding)
            if extended is not None:
                yield from recurse(atom_index + 1, extended)

    yield from recurse(0, {})


# ---------------------------------------------------------------------------
# Ground constraints
# ---------------------------------------------------------------------------


@dataclass
class GroundConstraint:
    """One ground linear (in)equality produced by a substitution theta.

    The constraint reads::

        sum(coefficients[cell] * value(cell)) + constant  <relop>  rhs

    where every cell is a measure cell of the database.  Contributions
    of constant expressions and of *non-measure* numerical attributes
    are folded into ``constant`` -- a repair cannot change them, so for
    the MILP they are data, not variables.
    """

    source: str
    binding: PyTuple[PyTuple[str, Any], ...]
    coefficients: Dict[Cell, float]
    constant: float
    relop: str
    rhs: float

    def cells(self) -> List[Cell]:
        return list(self.coefficients)

    def evaluate(self, database: Database) -> float:
        """Left-hand-side value on *database* (including the constant)."""
        total = self.constant
        for (relation, tuple_id, attribute), coefficient in self.coefficients.items():
            total += coefficient * float(
                database.get_value(relation, tuple_id, attribute)
            )
        return total

    def holds(self, database: Database, tolerance: float = 1e-9) -> bool:
        return Relop.holds(self.relop, self.evaluate(database), self.rhs, tolerance)

    def violation_amount(self, database: Database) -> float:
        """How far the instance is from satisfying this ground constraint."""
        value = self.evaluate(database)
        if self.relop == Relop.LE:
            return max(0.0, value - self.rhs)
        if self.relop == Relop.GE:
            return max(0.0, self.rhs - value)
        return abs(value - self.rhs)

    def normalized_key(self) -> PyTuple:
        """A hashable canonical form used to drop duplicate inequalities."""
        items = tuple(sorted(self.coefficients.items()))
        return (items, round(self.constant, 9), self.relop, round(self.rhs, 9))

    def __str__(self) -> str:
        parts: List[str] = []
        for (relation, tuple_id, attribute), coefficient in sorted(
            self.coefficients.items()
        ):
            name = f"{relation}[{tuple_id}].{attribute}"
            if coefficient == 1:
                parts.append(f"+ {name}")
            elif coefficient == -1:
                parts.append(f"- {name}")
            else:
                parts.append(f"+ {coefficient}*{name}")
        lhs = " ".join(parts).lstrip("+ ").strip() or "0"
        if self.constant:
            lhs += f" + {self.constant}"
        return f"{lhs} {self.relop} {self.rhs}"


def ground_one(
    constraint: AggregateConstraint,
    database: Database,
    binding: Dict[str, Any],
) -> GroundConstraint:
    """Build the ground inequality for one substitution *binding*.

    Implements the translation ``P(chi_i)`` of Section 5, generalised
    from "e is an attribute or a constant" to arbitrary (linear)
    attribute expressions via linearization.
    """
    schema = database.schema
    coefficients: Dict[Cell, float] = {}
    constant = 0.0
    for term in constraint.terms:
        function = term.function
        arguments = term.ground_arguments(binding)
        involved = function.involved_tuples(database, arguments)
        linear = function.expression.linearize()
        constant += term.coefficient * linear.constant * len(involved)
        for row in involved:
            assert row.tuple_id is not None
            for attribute, attr_coefficient in linear.coefficients:
                weight = term.coefficient * attr_coefficient
                if schema.is_measure(function.relation, attribute):
                    cell = (function.relation, row.tuple_id, attribute)
                    coefficients[cell] = coefficients.get(cell, 0.0) + weight
                else:
                    constant += weight * float(row[attribute])
    coefficients = {c: w for c, w in coefficients.items() if w != 0.0}
    return GroundConstraint(
        source=constraint.name,
        binding=tuple(sorted(binding.items())),
        coefficients=coefficients,
        constant=constant,
        relop=constraint.relop,
        rhs=constraint.rhs,
    )


def ground_constraints(
    constraints: Sequence[AggregateConstraint],
    database: Database,
    *,
    require_steady: bool = False,
    deduplicate: bool = True,
) -> List[GroundConstraint]:
    """The system ``S(AC)``: every ground inequality of every constraint.

    With ``require_steady`` the function refuses non-steady constraints
    (the repair engine always sets it: Section 5 shows the translation
    is unsound for non-steady constraints because ``T_chi`` may shift
    under repairs).
    """
    system: List[GroundConstraint] = []
    seen: Set[PyTuple] = set()
    for constraint in constraints:
        constraint.validate(database.schema)
        if require_steady and not constraint.is_steady(database.schema):
            witness = constraint.steadiness_witness(database.schema)
            raise ConstraintError(
                f"constraint {constraint.name!r} is not steady: measure "
                f"attributes {sorted(witness)} occur in A(kappa) | J(kappa)"
            )
        for binding in enumerate_substitutions(constraint, database):
            ground = ground_one(constraint, database, binding)
            if not ground.coefficients and Relop.holds(
                ground.relop, ground.constant, ground.rhs
            ):
                # Trivially true (e.g. both aggregation functions select no
                # tuples); contributes nothing to S(AC).  Trivially *false*
                # empty grounds are kept: they witness unrepairability.
                continue
            if deduplicate:
                key = ground.normalized_key()
                if key in seen:
                    continue
                seen.add(key)
            system.append(ground)
    return system


class GroundingEngine:
    """Caches the ground system for one (database, constraints) pair."""

    def __init__(
        self,
        database: Database,
        constraints: Sequence[AggregateConstraint],
        *,
        require_steady: bool = False,
    ) -> None:
        self.database = database
        self.constraints = list(constraints)
        self.require_steady = require_steady
        self._system: Optional[List[GroundConstraint]] = None

    @property
    def system(self) -> List[GroundConstraint]:
        if self._system is None:
            self._system = ground_constraints(
                self.constraints, self.database, require_steady=self.require_steady
            )
        return self._system

    def cells(self) -> List[Cell]:
        """Measure cells that occur in at least one ground constraint."""
        ordered: List[Cell] = []
        seen: Set[Cell] = set()
        for ground in self.system:
            for cell in ground.cells():
                if cell not in seen:
                    seen.add(cell)
                    ordered.append(cell)
        return ordered

    def violations(self, database: Optional[Database] = None) -> List["Violation"]:
        target = database if database is not None else self.database
        found: List[Violation] = []
        for ground in self.system:
            if not ground.holds(target):
                found.append(
                    Violation(ground, ground.evaluate(target), ground.violation_amount(target))
                )
        return found

    def is_consistent(self, database: Optional[Database] = None) -> bool:
        return not self.violations(database)


@dataclass
class Violation:
    """A ground constraint that the instance fails to satisfy."""

    ground: GroundConstraint
    lhs_value: float
    amount: float

    def __str__(self) -> str:
        return (
            f"[{self.ground.source} @ {dict(self.ground.binding)}] "
            f"{self.ground} (lhs={self.lhs_value}, off by {self.amount})"
        )


def check_consistency(
    database: Database, constraints: Sequence[AggregateConstraint]
) -> List[Violation]:
    """``D |= AC`` check: returns the (possibly empty) violation list."""
    return GroundingEngine(database, constraints).violations()
