"""Aggregation functions (paper, Section 3.1).

An aggregation function on a relational scheme ``R`` is a parameterised
SQL sum-query::

    chi(x1, ..., xk) = SELECT sum(e) FROM R WHERE alpha(x1, ..., xk)

where ``e`` is an attribute expression on ``R`` and ``alpha`` is a
boolean formula over the parameters, constants and attributes of ``R``.

Besides evaluation, an aggregation function knows:

- its *involved-tuple set* ``T_chi`` for a given argument vector -- the
  tuples where ``alpha`` holds (Section 5); this is what the MILP
  translation sums the ``z`` variables over, and it must be computable
  without looking at measure values for the constraint to be steady;
- its WHERE-clause attribute set, one half of ``W(chi)``
  (the other half -- attributes *corresponding to* parameters used in
  the WHERE clause -- depends on the constraint body and is computed in
  :mod:`repro.constraints.constraint`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Set, Tuple as PyTuple

from repro.constraints.expressions import Expression, ExpressionLike, _as_expression
from repro.relational.database import Database
from repro.relational.predicates import Condition
from repro.relational.tuples import Tuple


class AggregationFunction:
    """``chi(params) = SELECT sum(expression) FROM relation WHERE condition``."""

    def __init__(
        self,
        name: str,
        relation: str,
        parameters: Sequence[str],
        expression: ExpressionLike,
        condition: Condition,
    ) -> None:
        self.name = name
        self.relation = relation
        self.parameters: PyTuple[str, ...] = tuple(parameters)
        if len(set(self.parameters)) != len(self.parameters):
            raise ValueError(
                f"aggregation function {name!r} has duplicate parameters"
            )
        self.expression: Expression = _as_expression(expression)
        self.condition = condition
        unknown = condition.variables() - set(self.parameters)
        if unknown:
            raise ValueError(
                f"aggregation function {name!r}: WHERE clause uses variables "
                f"{sorted(unknown)} that are not parameters"
            )

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def _binding(self, arguments: Sequence[Any]) -> Dict[str, Any]:
        if len(arguments) != self.arity:
            raise ValueError(
                f"aggregation function {self.name!r} expects {self.arity} "
                f"arguments, got {len(arguments)}"
            )
        return dict(zip(self.parameters, arguments))

    def involved_tuples(self, database: Database, arguments: Sequence[Any]) -> List[Tuple]:
        """The set ``T_chi``: tuples of the relation where alpha holds."""
        binding = self._binding(arguments)
        return database.relation(self.relation).select(self.condition, binding)

    def evaluate(self, database: Database, arguments: Sequence[Any]) -> float:
        """``SELECT sum(e) FROM R WHERE alpha(arguments)`` on *database*."""
        return sum(
            self.expression.evaluate(row)
            for row in self.involved_tuples(database, arguments)
        )

    def where_attributes(self) -> Set[str]:
        """Attributes of ``R`` named directly in the WHERE clause."""
        return self.condition.attributes()

    def parameters_in_where(self) -> Set[str]:
        """Parameters that actually occur in the WHERE clause."""
        return self.condition.variables()

    def __call__(self, database: Database, *arguments: Any) -> float:
        return self.evaluate(database, arguments)

    def __repr__(self) -> str:
        params = ", ".join(self.parameters)
        return (
            f"{self.name}({params}) = SELECT sum({self.expression}) "
            f"FROM {self.relation} WHERE {self.condition}"
        )
