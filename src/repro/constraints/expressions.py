"""Attribute expressions (paper, Section 3.1).

An attribute expression on a relational scheme ``R`` is defined
recursively:

- a numerical constant is an attribute expression;
- each attribute ``Ai`` of ``R`` is an attribute expression;
- ``e1 + e2`` and ``e1 - e2`` are attribute expressions;
- ``c * e`` is an attribute expression for a numerical constant ``c``.

Every attribute expression is therefore *linear* in the attributes of
``R``.  Besides tuple-level evaluation, this module provides
:meth:`Expression.linearize`, which rewrites an expression into the
canonical form ``sum(coeff_A * A) + constant`` -- exactly what the MILP
translation of Section 5 needs to turn ``SELECT sum(e)`` into a linear
form over the per-cell variables ``z_{t,A}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple as PyTuple, Union

from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.tuples import Tuple

Number = Union[int, float]


class ExpressionError(ValueError):
    """Raised for malformed attribute expressions."""


@dataclass(frozen=True)
class Linearization:
    """Canonical linear form of an attribute expression.

    ``coefficients`` maps attribute names to their multipliers and
    ``constant`` is the attribute-free remainder, so the expression
    equals ``sum(coefficients[A] * t[A]) + constant`` on any tuple t.
    """

    coefficients: PyTuple[PyTuple[str, float], ...]
    constant: float

    def as_dict(self) -> Dict[str, float]:
        return dict(self.coefficients)


class Expression:
    """Base class of the attribute-expression AST."""

    def evaluate(self, row: Tuple) -> float:
        """The value of this expression on tuple *row*."""
        raise NotImplementedError

    def attributes(self) -> Set[str]:
        """Attribute names occurring in the expression."""
        raise NotImplementedError

    def linearize(self) -> Linearization:
        """Canonical linear form (see :class:`Linearization`)."""
        coefficients: Dict[str, float] = {}
        constant = self._accumulate(coefficients, 1.0)
        ordered = tuple(sorted(coefficients.items()))
        return Linearization(ordered, constant)

    def _accumulate(self, coefficients: Dict[str, float], multiplier: float) -> float:
        """Add ``multiplier * self`` into *coefficients*; return constant part."""
        raise NotImplementedError

    def validate_against(self, schema: RelationSchema) -> None:
        """Check that all referenced attributes exist and are numerical."""
        for name in self.attributes():
            attribute = schema.attribute(name)
            if not attribute.domain.is_numerical:
                raise ExpressionError(
                    f"attribute {name!r} of {schema.name!r} is not numerical "
                    f"and cannot appear in an attribute expression"
                )

    # Operator sugar -------------------------------------------------

    def __add__(self, other: "ExpressionLike") -> "Expression":
        return Sum(self, _as_expression(other), "+")

    def __sub__(self, other: "ExpressionLike") -> "Expression":
        return Sum(self, _as_expression(other), "-")

    def __rmul__(self, scalar: Number) -> "Expression":
        if not isinstance(scalar, (int, float)) or isinstance(scalar, bool):
            raise ExpressionError(f"{scalar!r} is not a numerical constant")
        return Product(float(scalar), self)

    def __mul__(self, scalar: Number) -> "Expression":
        return self.__rmul__(scalar)


ExpressionLike = Union[Expression, Number]


def _as_expression(value: ExpressionLike) -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExpressionError(f"{value!r} is not an attribute expression")
    return ConstTerm(float(value))


@dataclass(frozen=True)
class ConstTerm(Expression):
    """A numerical constant."""

    value: float

    def evaluate(self, row: Tuple) -> float:
        return self.value

    def attributes(self) -> Set[str]:
        return set()

    def _accumulate(self, coefficients: Dict[str, float], multiplier: float) -> float:
        return multiplier * self.value

    def __str__(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class AttrTerm(Expression):
    """A reference to a (numerical) attribute of the scheme."""

    name: str

    def evaluate(self, row: Tuple) -> float:
        value = row[self.name]
        if isinstance(value, str):
            raise ExpressionError(
                f"attribute {self.name!r} holds string {value!r}; attribute "
                f"expressions are numerical"
            )
        return float(value)

    def attributes(self) -> Set[str]:
        return {self.name}

    def _accumulate(self, coefficients: Dict[str, float], multiplier: float) -> float:
        coefficients[self.name] = coefficients.get(self.name, 0.0) + multiplier
        return 0.0

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Sum(Expression):
    """``left + right`` or ``left - right``."""

    left: Expression
    right: Expression
    op: str

    def __post_init__(self) -> None:
        if self.op not in ("+", "-"):
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: Tuple) -> float:
        left_value = self.left.evaluate(row)
        right_value = self.right.evaluate(row)
        if self.op == "+":
            return left_value + right_value
        return left_value - right_value

    def attributes(self) -> Set[str]:
        return self.left.attributes() | self.right.attributes()

    def _accumulate(self, coefficients: Dict[str, float], multiplier: float) -> float:
        constant = self.left._accumulate(coefficients, multiplier)
        sign = 1.0 if self.op == "+" else -1.0
        constant += self.right._accumulate(coefficients, sign * multiplier)
        return constant

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Product(Expression):
    """``c * e`` for a numerical constant ``c``."""

    scalar: float
    operand: Expression

    def evaluate(self, row: Tuple) -> float:
        return self.scalar * self.operand.evaluate(row)

    def attributes(self) -> Set[str]:
        return self.operand.attributes()

    def _accumulate(self, coefficients: Dict[str, float], multiplier: float) -> float:
        return self.operand._accumulate(coefficients, multiplier * self.scalar)

    def __str__(self) -> str:
        return f"{ConstTerm(self.scalar)} * ({self.operand})"


def attr_expr(name: str) -> AttrTerm:
    """Shorthand constructor for an attribute term."""
    return AttrTerm(name)


def const_expr(value: Number) -> ConstTerm:
    """Shorthand constructor for a constant term."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExpressionError(f"{value!r} is not a numerical constant")
    return ConstTerm(float(value))
