"""Aggregate constraints (Definition 1) and steadiness (Definition 6).

An aggregate constraint on a database scheme ``D`` has the form::

    forall x1..xk ( phi(x1..xk)  =>  sum_i c_i * chi_i(X_i)  <relop>  K )

where ``phi`` is a conjunction of relational atoms over the variables,
each ``chi_i`` is an aggregation function, and each argument list
``X_i`` mixes constants with variables drawn from ``x1..xk``.  The
paper notes that equalities are expressible as pairs of inequalities;
we keep ``=`` (and ``>=``) first-class and expand only inside the MILP
translation.

The module also implements the two attribute sets that drive the
steadiness test:

- ``A(kappa)`` -- for every aggregation function, the attributes named
  in its WHERE clause plus the attributes *corresponding to* (via the
  body atoms) the variables passed to WHERE-clause parameters;
- ``J(kappa)`` -- attributes corresponding to variables shared by two
  atom positions of the body (join variables).

``kappa`` is *steady* iff ``(A(kappa) | J(kappa))`` contains no measure
attribute: then the involved-tuple sets ``T_chi`` never depend on
measure values, and the constraint translates to linear inequalities
over the per-cell variables (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple as PyTuple,
    Union,
)

from repro.constraints.aggregates import AggregationFunction
from repro.relational.database import Database
from repro.relational.predicates import Const, Term, Var
from repro.relational.schema import DatabaseSchema, SchemaError

#: A ``(relation, attribute)`` pair; the form A(kappa)/J(kappa) are kept in
#: so they can be intersected with the measure set M_D.
QualifiedAttribute = PyTuple[str, str]


class ConstraintError(ValueError):
    """Raised for malformed aggregate constraints."""


class Relop:
    """The relational operators allowed on the aggregate side."""

    LE = "<="
    GE = ">="
    EQ = "="

    ALL = (LE, GE, EQ)

    @staticmethod
    def check(op: str) -> str:
        if op not in Relop.ALL:
            raise ConstraintError(f"unknown relational operator {op!r}")
        return op

    @staticmethod
    def holds(op: str, left: float, right: float, tolerance: float = 1e-9) -> bool:
        """Evaluate ``left op right`` with a small numeric tolerance."""
        if op == Relop.LE:
            return left <= right + tolerance
        if op == Relop.GE:
            return left >= right - tolerance
        return abs(left - right) <= tolerance


@dataclass(frozen=True)
class BodyAtom:
    """One atom ``R(t1, ..., tn)`` of the body conjunction ``phi``.

    Each term is a variable or a constant.  The anonymous placeholder
    ``_`` of the paper's shorthand is represented by distinct fresh
    variables created at parse time, so at this level every position
    holds a real term.
    """

    relation: str
    terms: PyTuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Term]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        for term in self.terms:
            if not isinstance(term, (Var, Const)):
                raise ConstraintError(
                    f"body atom terms must be variables or constants, got {term!r}"
                )

    def variables(self) -> Set[str]:
        return {t.name for t in self.terms if isinstance(t, Var)}

    def variable_positions(self) -> Dict[str, List[int]]:
        """Positions (0-based) where each variable occurs in this atom."""
        positions: Dict[str, List[int]] = {}
        for index, term in enumerate(self.terms):
            if isinstance(term, Var):
                positions.setdefault(term.name, []).append(index)
        return positions

    def __str__(self) -> str:
        rendered = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({rendered})"


@dataclass(frozen=True)
class ConstraintTerm:
    """One summand ``c_i * chi_i(X_i)`` of the aggregate side."""

    coefficient: float
    function: AggregationFunction
    arguments: PyTuple[Term, ...]

    def __init__(
        self,
        coefficient: float,
        function: AggregationFunction,
        arguments: Sequence[Term],
    ) -> None:
        object.__setattr__(self, "coefficient", float(coefficient))
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "arguments", tuple(arguments))
        if len(self.arguments) != function.arity:
            raise ConstraintError(
                f"aggregation function {function.name!r} expects "
                f"{function.arity} arguments, got {len(self.arguments)}"
            )
        for term in self.arguments:
            if not isinstance(term, (Var, Const)):
                raise ConstraintError(
                    f"aggregation arguments must be variables or constants, "
                    f"got {term!r}"
                )

    def variables(self) -> Set[str]:
        return {t.name for t in self.arguments if isinstance(t, Var)}

    def ground_arguments(self, binding: Dict[str, Any]) -> List[Any]:
        """Resolve the argument terms under a ground substitution."""
        resolved: List[Any] = []
        for term in self.arguments:
            if isinstance(term, Var):
                resolved.append(binding[term.name])
            else:
                resolved.append(term.value)
        return resolved

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        coeff = self.coefficient
        prefix = "" if coeff == 1 else ("-" if coeff == -1 else f"{coeff} * ")
        return f"{prefix}{self.function.name}({args})"


class AggregateConstraint:
    """An aggregate constraint ``phi => sum_i c_i * chi_i(X_i) <relop> K``."""

    def __init__(
        self,
        name: str,
        body: Sequence[BodyAtom],
        terms: Sequence[ConstraintTerm],
        relop: str,
        rhs: float,
    ) -> None:
        if not body:
            raise ConstraintError(f"constraint {name!r} has an empty body")
        if not terms:
            raise ConstraintError(f"constraint {name!r} has no aggregation terms")
        self.name = name
        self.body: PyTuple[BodyAtom, ...] = tuple(body)
        self.terms: PyTuple[ConstraintTerm, ...] = tuple(terms)
        self.relop = Relop.check(relop)
        self.rhs = float(rhs)

        body_variables = self.variables()
        for term in self.terms:
            loose = term.variables() - body_variables
            if loose:
                raise ConstraintError(
                    f"constraint {name!r}: aggregation arguments use variables "
                    f"{sorted(loose)} not bound by the body"
                )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def variables(self) -> Set[str]:
        """All variables bound by the body conjunction."""
        result: Set[str] = set()
        for atom in self.body:
            result |= atom.variables()
        return result

    def functions(self) -> List[AggregationFunction]:
        return [term.function for term in self.terms]

    def validate(self, schema: DatabaseSchema) -> None:
        """Check the constraint is well-formed against *schema*."""
        for atom in self.body:
            relation_schema = schema.relation(atom.relation)
            if len(atom.terms) != relation_schema.arity:
                raise ConstraintError(
                    f"constraint {self.name!r}: atom {atom} has "
                    f"{len(atom.terms)} terms but {atom.relation!r} has arity "
                    f"{relation_schema.arity}"
                )
        for term in self.terms:
            function = term.function
            relation_schema = schema.relation(function.relation)
            function.expression.validate_against(relation_schema)
            for attribute in function.where_attributes():
                relation_schema.attribute(attribute)

    # ------------------------------------------------------------------
    # The attribute sets A(kappa) and J(kappa)
    # ------------------------------------------------------------------

    def _attributes_of_variable(
        self, variable: str, schema: DatabaseSchema
    ) -> Set[QualifiedAttribute]:
        """Attributes corresponding to *variable* via the body atoms."""
        result: Set[QualifiedAttribute] = set()
        for atom in self.body:
            relation_schema = schema.relation(atom.relation)
            for position in atom.variable_positions().get(variable, ()):
                result.add((atom.relation, relation_schema.attributes[position].name))
        return result

    def a_kappa(self, schema: DatabaseSchema) -> Set[QualifiedAttribute]:
        """``A(kappa)``: the union of the sets ``W(chi_i)``.

        ``W(chi_i)`` contains (1) the attributes named in chi_i's WHERE
        clause (qualified with chi_i's relation) and (2) the attributes
        corresponding to the body variables passed as the WHERE-clause
        parameters of chi_i.
        """
        result: Set[QualifiedAttribute] = set()
        for term in self.terms:
            function = term.function
            for attribute in function.where_attributes():
                result.add((function.relation, attribute))
            used_parameters = function.parameters_in_where()
            for parameter, argument in zip(function.parameters, term.arguments):
                if parameter in used_parameters and isinstance(argument, Var):
                    result |= self._attributes_of_variable(argument.name, schema)
        return result

    def j_kappa(self, schema: DatabaseSchema) -> Set[QualifiedAttribute]:
        """``J(kappa)``: attributes of variables shared by two atom positions."""
        occurrences: Dict[str, List[PyTuple[int, int]]] = {}
        for atom_index, atom in enumerate(self.body):
            for variable, positions in atom.variable_positions().items():
                for position in positions:
                    occurrences.setdefault(variable, []).append(
                        (atom_index, position)
                    )
        result: Set[QualifiedAttribute] = set()
        for variable, places in occurrences.items():
            if len(places) < 2:
                continue
            for atom_index, position in places:
                atom = self.body[atom_index]
                relation_schema = schema.relation(atom.relation)
                result.add(
                    (atom.relation, relation_schema.attributes[position].name)
                )
        return result

    def is_steady(self, schema: DatabaseSchema) -> bool:
        """Definition 6: ``(A(kappa) | J(kappa)) & M_D == {}``."""
        touched = self.a_kappa(schema) | self.j_kappa(schema)
        return not (touched & schema.measure_attributes)

    def steadiness_witness(
        self, schema: DatabaseSchema
    ) -> Set[QualifiedAttribute]:
        """Measure attributes breaking steadiness (empty iff steady)."""
        touched = self.a_kappa(schema) | self.j_kappa(schema)
        return touched & schema.measure_attributes

    # ------------------------------------------------------------------
    # Direct evaluation (used by the consistency checker and tests)
    # ------------------------------------------------------------------

    def aggregate_value(self, database: Database, binding: Dict[str, Any]) -> float:
        """``sum_i c_i * chi_i(theta X_i)`` under ground substitution *binding*."""
        total = 0.0
        for term in self.terms:
            arguments = term.ground_arguments(binding)
            total += term.coefficient * term.function.evaluate(database, arguments)
        return total

    def holds_under(self, database: Database, binding: Dict[str, Any]) -> bool:
        """Truth of the ground instance of the constraint under *binding*."""
        return Relop.holds(self.relop, self.aggregate_value(database, binding), self.rhs)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        aggregate = " + ".join(str(term) for term in self.terms)
        aggregate = aggregate.replace("+ -", "- ")
        return f"{body} => {aggregate} {self.relop} {ConstTermRepr(self.rhs)}"

    def __repr__(self) -> str:
        return f"AggregateConstraint({self.name!r}: {self})"


def ConstTermRepr(value: float) -> str:
    """Render the right-hand-side constant without a spurious ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return str(value)
