"""The aggregate-constraint language of the paper (Sections 3.1 and 4).

- :mod:`repro.constraints.expressions` -- attribute expressions
  (numerical constants, attributes, ``e1 +/- e2``, ``c * e``),
- :mod:`repro.constraints.aggregates` -- aggregation functions
  ``chi(x1..xk) = SELECT sum(e) FROM R WHERE alpha(x1..xk)`` and their
  attribute sets ``W(chi)``,
- :mod:`repro.constraints.constraint` -- aggregate constraints
  (Definition 1), the sets ``A(kappa)`` and ``J(kappa)``, and the
  steadiness test (Definition 6),
- :mod:`repro.constraints.grounding` -- ground substitutions, the
  involved-tuple sets ``T_chi``, ground linear (in)equalities, and the
  consistency check ``D |= AC``,
- :mod:`repro.constraints.parser` -- a textual DSL so constraint
  metadata can be written as plain text.
"""

from repro.constraints.expressions import (
    AttrTerm,
    ConstTerm,
    Expression,
    ExpressionError,
    Product,
    Sum,
    attr_expr,
    const_expr,
)
from repro.constraints.aggregates import AggregationFunction
from repro.constraints.constraint import (
    AggregateConstraint,
    BodyAtom,
    ConstraintError,
    ConstraintTerm,
    Relop,
)
from repro.constraints.grounding import (
    GroundConstraint,
    GroundingEngine,
    Violation,
    check_consistency,
    ground_constraints,
)
from repro.constraints.parser import ConstraintParseError, parse_constraints

__all__ = [
    "Expression",
    "ExpressionError",
    "ConstTerm",
    "AttrTerm",
    "Sum",
    "Product",
    "attr_expr",
    "const_expr",
    "AggregationFunction",
    "AggregateConstraint",
    "BodyAtom",
    "ConstraintTerm",
    "ConstraintError",
    "Relop",
    "GroundConstraint",
    "GroundingEngine",
    "Violation",
    "check_consistency",
    "ground_constraints",
    "parse_constraints",
    "ConstraintParseError",
]
