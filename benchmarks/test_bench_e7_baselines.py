"""E7 -- card-minimal repair vs baselines (the Example 7 contrast).

Example 7 exhibits a 3-update repair where a 1-update repair exists;
the card-minimal semantics exists precisely to prefer the latter
(fewest acquisition errors).  This bench measures that advantage:
for k injected errors, compare

- the MILP card-minimal repair,
- greedy local repair (fix one violated constraint at a time),
- spreadsheet recompute (trust details, rewrite formula cells),

on cardinality, cell precision/recall against the injected errors, and
exact-recovery rate (unsupervised -- no operator).

Reproduction target (shape): card-minimal has the smallest
cardinality and the best precision at every k; recompute degrades
sharply once errors hit detail cells; greedy sits in between (it can
fail to converge, reported as coverage).

The timed kernel is the three-way comparison at k = 2.
"""

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table, repair_quality, sweep
from repro.repair import (
    RepairEngine,
    aggregate_recompute_repair,
    greedy_local_repair,
)

ERROR_COUNTS = [1, 2, 3, 4]
SEEDS = range(25)


def run_once(n_errors: int, seed: int):
    workload = generate_cash_budget(n_years=2, seed=seed)
    corrupted, injected = inject_value_errors(
        workload.ground_truth, n_errors, seed=seed + 2000
    )
    engine = RepairEngine(corrupted, workload.constraints)
    if engine.is_consistent():
        return {"skip": 1.0}
    results = {"skip": 0.0}
    strategies = {
        "milp": engine.find_card_minimal_repair().repair,
        "greedy": greedy_local_repair(corrupted, workload.constraints),
        "recompute": aggregate_recompute_repair(corrupted, workload.constraints),
    }
    for name, repair in strategies.items():
        if repair is None:
            results[f"{name}_converged"] = 0.0
            continue
        quality = repair_quality(
            repair, injected, corrupted=corrupted,
            ground_truth=workload.ground_truth,
        )
        results[f"{name}_converged"] = 1.0
        results[f"{name}_cardinality"] = float(repair.cardinality)
        results[f"{name}_precision"] = quality.cell_precision
        results[f"{name}_recall"] = quality.cell_recall
        results[f"{name}_exact"] = 1.0 if quality.exact else 0.0
    return results


def test_bench_e7_baselines(benchmark):
    cells = sweep(ERROR_COUNTS, SEEDS, run_once)

    rows = []
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]

        def mean(key):
            values = [r[key] for r in active if key in r]
            return sum(values) / len(values) if values else float("nan")

        for strategy in ("milp", "greedy", "recompute"):
            rows.append(
                [
                    cell.parameter,
                    {"milp": "card-minimal", "greedy": "greedy",
                     "recompute": "recompute"}[strategy],
                    f"{mean(f'{strategy}_converged'):.2f}",
                    f"{mean(f'{strategy}_cardinality'):.2f}",
                    f"{mean(f'{strategy}_precision'):.2f}",
                    f"{mean(f'{strategy}_recall'):.2f}",
                    f"{mean(f'{strategy}_exact'):.2f}",
                ]
            )
    table = ascii_table(
        ["errors", "strategy", "converged", "mean |repair|",
         "precision", "recall", "exact rate"],
        rows,
        title=(
            "E7: repair strategies, unsupervised "
            f"(2-year cash budgets, {len(list(SEEDS))} seeds)\n"
            "paper (Example 7): card-minimality prefers the fewest-changes "
            "repair -- the fewest-acquisition-errors explanation"
        ),
    )
    report("e7_baselines", table)

    # Shape: card-minimal never changes more cells than either baseline,
    # at every error count where the baseline converged.
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        for r in active:
            if "greedy_cardinality" in r:
                assert r["milp_cardinality"] <= r["greedy_cardinality"]
            if "recompute_cardinality" in r:
                assert r["milp_cardinality"] <= r["recompute_cardinality"]

    benchmark(lambda: run_once(2, 11))
