"""E9 -- the parallel batch-repair engine over a document corpus.

A 32-document corpus (8 unique corrupted cash budgets, each appearing
4 times -- the realistic shape of a scanning campaign where the same
report arrives through several channels) is repaired three ways:

- sequentially with the solve cache disabled (the pre-batch baseline:
  one :class:`~repro.repair.engine.RepairEngine` per document);
- sequentially with the LRU solve cache on (duplicate documents ground
  to fingerprint-identical MILPs and skip the solver);
- through a 4-worker process pool with per-worker caches.

The three modes must produce byte-identical repairs in identical
order; the table reports wall-clock, solve counts and cache traffic.
On a single-core host the speedup comes from the cache (24 of the 32
documents never reach a solver), not from parallelism.

The timed kernel is the cached sequential batch.
"""

import time

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table
from repro.repair.batch import repair_batch, tasks_from_databases

N_UNIQUE = 8
N_COPIES = 4
N_ERRORS = 2
SEED = 2026


def build_corpus():
    workload = generate_cash_budget(n_years=2, seed=SEED)
    uniques = []
    for offset in range(N_UNIQUE):
        corrupted, _ = inject_value_errors(
            workload.ground_truth, N_ERRORS, seed=SEED + offset
        )
        uniques.append(corrupted)
    # Interleave the copies so duplicates are spread across the corpus
    # (and across pool chunks) rather than arriving back to back.
    databases = [
        uniques[i].copy() for _ in range(N_COPIES) for i in range(N_UNIQUE)
    ]
    return workload, databases


def run_mode(workload, databases, *, workers, cache_size):
    tasks = tasks_from_databases(databases, workload.constraints)
    started = time.perf_counter()
    batch = repair_batch(
        tasks, workers=workers, cache_size=cache_size, timeout=120
    )
    elapsed = time.perf_counter() - started
    return batch, elapsed


def test_bench_e9_batch(benchmark):
    workload, databases = build_corpus()
    assert len(databases) == N_UNIQUE * N_COPIES

    uncached, t_uncached = run_mode(
        workload, databases, workers=None, cache_size=0
    )
    cached, t_cached = run_mode(
        workload, databases, workers=None, cache_size=256
    )
    pooled, t_pooled = run_mode(
        workload, databases, workers=4, cache_size=256
    )

    # Identical repairs in identical order across all three modes.
    for mode in (cached, pooled):
        for baseline, result in zip(uncached.results, mode.results):
            assert result.status == "repaired"
            assert (result.index, result.name) == (
                baseline.index, baseline.name
            )
            assert str(result.repair) == str(baseline.repair)
            assert result.objective == pytest.approx(baseline.objective)

    rows = []
    for label, batch, elapsed in [
        ("sequential, no cache", uncached, t_uncached),
        ("sequential, cached", cached, t_cached),
        ("4 workers, cached", pooled, t_pooled),
    ]:
        rows.append([
            label,
            f"{elapsed:.2f}",
            f"{t_uncached / elapsed:.2f}x",
            batch.total_solves,
            batch.cache_hits,
            batch.n_fallbacks,
        ])
    lines = [
        f"corpus: {len(databases)} documents "
        f"({N_UNIQUE} unique x {N_COPIES} copies), "
        f"{N_ERRORS} injected errors each",
        "",
        ascii_table(
            ["mode", "wall s", "speedup", "solves", "cache hits", "fallbacks"],
            rows,
        ),
        "",
        "identical repairs across all three modes: yes",
    ]
    report("e9_batch", "\n".join(lines))

    assert cached.cache_hits >= N_UNIQUE * (N_COPIES - 1)
    assert t_cached < t_uncached

    benchmark(
        lambda: run_mode(workload, databases, workers=None, cache_size=256)
    )
