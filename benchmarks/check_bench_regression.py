"""The bench regression gate.

Compares a freshly produced ``BENCH_milp.json`` against the committed
baseline and fails (exit 1) when any geomean speedup regressed by more
than the tolerance (default 10%).  Geomeans -- not raw wall-clock --
are the gated quantity: each one is a *ratio* of two modes measured on
the same host in the same process, so host speed divides out and the
gate is meaningful on noisy CI runners.

The certification overhead (``certify_overhead_geomean``) is a
*smaller-is-better* ratio (certify-on wall time over certify-off wall
time, geomean across the small/medium scenarios), so its gate points
the other way: a fresh overhead more than 10% *above* the committed
baseline fails -- certification started taxing the hot path.

Also writes a per-scenario markdown table (``--table``) that CI uploads
as an artifact, so a failing run shows exactly which scenario moved.

Usage::

    cp BENCH_milp.json bench_baseline.json      # the committed numbers
    PYTHONPATH=src python benchmarks/bench_milp.py
    python benchmarks/check_bench_regression.py \
        --baseline bench_baseline.json --fresh BENCH_milp.json \
        --table bench_table.md

A metric present only in the fresh file (schema growth) is reported
but never gated; a metric present only in the baseline is a hard
failure (the bench silently stopped measuring something).

The same gate also serves ``BENCH_service.json`` (from
``bench_service.py``): its summary uses the same per-backend shape, so
CI runs this script once per benchmark pair.  Its gated metric is
``warm_hit_rate``; the latency percentiles ride along ungated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

#: Relative slowdown beyond which the gate fails (0.10 == 10%).
DEFAULT_TOLERANCE = 0.10

#: Summary metrics under gate -- all "bigger is better" speedup ratios.
GATED_METRICS = (
    "geomean_speedup",
    "sparse_geomean_speedup",
    "sparse_scaling_geomean",
    # BENCH_service.json: fraction of warm-run solve requests served
    # from cache.  Baseline is 1.0 by construction, so any drop at all
    # trips the 10% gate -- a drop means the store stopped serving.
    "warm_hit_rate",
)

#: Summary metrics under gate where *smaller* is better -- overhead
#: ratios.  The gate inverts: a fresh value more than ``tolerance``
#: above the baseline fails.  Same-host on/off ratios, so runner speed
#: divides out exactly as for the speedup metrics.
OVERHEAD_METRICS = ("certify_overhead_geomean",)


def load(path: Path) -> Dict:
    with path.open(encoding="utf-8") as handle:
        return json.load(handle)


def scenario_table(fresh: Dict) -> str:
    """A markdown per-scenario table of the fresh run."""
    lines = [
        "| scenario | backend | current (ms) | sparse (ms) | sparse speedup | certify | match |",
        "|---|---|---:|---:|---:|---:|---|",
    ]
    for entry in fresh.get("scenarios", []):
        for backend, record in entry.get("backends", {}).items():
            current = record.get("current", {}).get("wall_time", float("nan"))
            sparse = record.get("sparse", {}).get("wall_time", float("nan"))
            ratio = record.get("sparse_speedup", float("nan"))
            certify = record.get("certify", {}).get("certify_overhead")
            overhead = "-" if certify is None else f"{certify:.2f}x"
            match = "yes" if record.get("objectives_match") else "**NO**"
            lines.append(
                f"| {entry['scenario']} | {backend} "
                f"| {current * 1000:.2f} | {sparse * 1000:.2f} "
                f"| {ratio:.2f}x | {overhead} | {match} |"
            )
    lines.append("")
    lines.append("| backend | metric | value |")
    lines.append("|---|---|---:|")
    for backend, metrics in fresh.get("summary", {}).items():
        for metric, value in metrics.items():
            lines.append(f"| {backend} | {metric} | {value:.3f} |")
    return "\n".join(lines) + "\n"


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument("--table", type=Path, default=None)
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    if args.table is not None:
        args.table.write_text(scenario_table(fresh), encoding="utf-8")
        print(f"wrote {args.table}")

    failures: List[str] = []
    if not fresh.get("all_objectives_match", False):
        failures.append("fresh run reports objective divergence between modes")

    for backend, base_metrics in baseline.get("summary", {}).items():
        fresh_metrics = fresh.get("summary", {}).get(backend)
        if fresh_metrics is None:
            failures.append(f"{backend}: missing from fresh summary")
            continue
        for metric in GATED_METRICS:
            if metric not in base_metrics:
                continue  # baseline predates this metric: nothing to gate
            if metric not in fresh_metrics:
                failures.append(f"{backend}/{metric}: dropped from fresh run")
                continue
            base_value = float(base_metrics[metric])
            fresh_value = float(fresh_metrics[metric])
            floor = base_value * (1.0 - args.tolerance)
            verdict = "ok" if fresh_value >= floor else "REGRESSED"
            print(
                f"{backend:12s} {metric:24s} baseline {base_value:7.3f}  "
                f"fresh {fresh_value:7.3f}  floor {floor:7.3f}  {verdict}"
            )
            if fresh_value < floor:
                failures.append(
                    f"{backend}/{metric}: {fresh_value:.3f} < "
                    f"{floor:.3f} (baseline {base_value:.3f} "
                    f"- {args.tolerance:.0%})"
                )

        # Overhead metrics gate in the opposite direction: smaller is
        # better, so the bound is a ceiling above the baseline rather
        # than a floor below it.  The baseline-predates / dropped
        # semantics mirror the speedup metrics exactly.
        for metric in OVERHEAD_METRICS:
            if metric not in base_metrics:
                continue  # baseline predates this metric: nothing to gate
            if metric not in fresh_metrics:
                failures.append(f"{backend}/{metric}: dropped from fresh run")
                continue
            base_value = float(base_metrics[metric])
            fresh_value = float(fresh_metrics[metric])
            ceiling = base_value * (1.0 + args.tolerance)
            verdict = "ok" if fresh_value <= ceiling else "REGRESSED"
            print(
                f"{backend:12s} {metric:24s} baseline {base_value:7.3f}  "
                f"fresh {fresh_value:7.3f}  ceiling {ceiling:7.3f}  {verdict}"
            )
            if fresh_value > ceiling:
                failures.append(
                    f"{backend}/{metric}: {fresh_value:.3f} > "
                    f"{ceiling:.3f} (baseline {base_value:.3f} "
                    f"+ {args.tolerance:.0%})"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
