"""E8 -- the full pipeline at scale (§7 future work).

The paper closes with: "A more extensive experimental evaluation of
system effectiveness will be accomplished on larger data sets".  This
bench is that evaluation: hierarchical balance sheets of growing size
run through the COMPLETE pipeline -- document rendering, OCR noise,
HTML parsing, wrapping with msi repair, database generation,
MILP repair and the supervised validation loop -- measuring per-stage
wall-clock and end-to-end recovery.

Reported series (shape targets):

- stage times grow roughly linearly with the document (the wrapper
  dominates: similarity search over the lexical dictionaries);
- recovery stays at 1.0: the supervised loop is sound at every size;
- operator inspections stay proportional to the injected error count,
  not to the document size -- the paper's economic argument survives
  scaling.

The timed kernel is one mid-size end-to-end session.
"""

import time

import pytest

from _common import report
from repro.acquisition import OcrChannel
from repro.core import DartSystem, balance_sheet_scenario
from repro.datasets import generate_balance_sheet
from repro.evalkit import ascii_table
from repro.wrapping import DatabaseGenerator, Wrapper

SHAPES = [
    # (depth, branching) -> 3 * (branching^depth subtree) items per sheet
    (1, 2),
    (2, 2),
    (2, 3),
    (3, 2),
    (3, 3),
]
NOISE = dict(numeric_error_rate=0.04, string_error_rate=0.04)


def run_pipeline(depth: int, branching: int, seed: int):
    workload = generate_balance_sheet(
        depth=depth, branching=branching, seed=seed
    )
    scenario = balance_sheet_scenario(workload)
    channel = OcrChannel(seed=seed, **NOISE)
    system = DartSystem(scenario, ocr_channel=channel)

    timings = {}
    started = time.perf_counter()
    acquisition = system.acquisition_module.acquire(scenario.document)
    timings["acquire"] = time.perf_counter() - started

    started = time.perf_counter()
    wrapping = system.wrapper.wrap_html(acquisition.html)
    timings["wrap"] = time.perf_counter() - started

    started = time.perf_counter()
    generation = system.generator.generate(wrapping.instances, skip_failures=True)
    timings["generate"] = time.perf_counter() - started

    from repro.repair import OracleOperator, RepairEngine, ValidationLoop

    started = time.perf_counter()
    engine = RepairEngine(generation.database, scenario.constraints)
    violations = engine.violations()
    timings["detect"] = time.perf_counter() - started

    inspections = 0
    started = time.perf_counter()
    if violations:
        operator = OracleOperator(
            scenario.ground_truth, acquired=generation.database
        )
        session = ValidationLoop(engine, operator).run()
        final = session.repaired_database
        inspections = session.values_inspected
    else:
        final = generation.database
    timings["repair+validate"] = time.perf_counter() - started

    return {
        "tuples": workload.ground_truth.total_tuples(),
        "errors": len(acquisition.injected_errors),
        "recovered": final == workload.ground_truth,
        "inspections": inspections,
        "timings": timings,
    }


def test_bench_e8_pipeline(benchmark):
    rows = []
    for depth, branching in SHAPES:
        result = run_pipeline(depth, branching, seed=depth * 10 + branching)
        timings = result["timings"]
        rows.append(
            [
                f"d={depth} b={branching}",
                result["tuples"],
                result["errors"],
                f"{timings['acquire'] * 1000:.0f}",
                f"{timings['wrap'] * 1000:.0f}",
                f"{timings['generate'] * 1000:.0f}",
                f"{timings['detect'] * 1000:.0f}",
                f"{timings['repair+validate'] * 1000:.0f}",
                result["inspections"],
                result["recovered"],
            ]
        )
        assert result["recovered"], (depth, branching)
    table = ascii_table(
        [
            "shape",
            "tuples",
            "OCR errors",
            "acquire (ms)",
            "wrap (ms)",
            "generate (ms)",
            "detect (ms)",
            "repair+validate (ms)",
            "inspections",
            "recovered",
        ],
        rows,
        title=(
            "E8: full-pipeline scaling on hierarchical balance sheets\n"
            "(the 'larger data sets' evaluation Section 7 defers to future "
            "work; OCR rates 4%/4%)"
        ),
    )
    report("e8_pipeline", table)

    benchmark(lambda: run_pipeline(2, 2, seed=22))
