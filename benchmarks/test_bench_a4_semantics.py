"""A4 (ablation, extension) -- repair-minimality semantics.

The paper fixes the card-minimal semantics (Definition 5), arguing it
matches the fewest-acquisition-errors assumption.  This bench
quantifies the choice by pitting it against:

- **total-change** -- minimise sum(|y_i|) (cost-based repairing,
  Bohannon et al. [7] in the paper's references): prefers many small
  nudges over one large correction;
- **weighted cardinality with a calibrated prior** -- corrupted cells
  are known to be low-confidence (weight 0.2 vs 1.0), emulating a
  perfectly calibrated OCR confidence signal;
- **weighted cardinality with an inverted prior** -- the same signal
  wired backwards (corrupted cells *more* expensive), the sanity
  check that weighting can also hurt.

Reproduction/extension target (shape): the calibrated prior dominates
plain card-minimality on exact recovery; the inverted prior is the
worst; total-change changes at least as many cells as card-minimal and
recovers the source less often under digit-confusion errors (which are
few and large, exactly the regime card-minimality models).

The timed kernel is one card-minimal solve at k = 2.
"""

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table, repair_quality, sweep
from repro.repair import RepairEngine, RepairObjective

ERROR_COUNTS = [1, 2, 3]
SEEDS = range(25)


def run_once(n_errors: int, seed: int):
    workload = generate_cash_budget(n_years=2, seed=seed)
    corrupted, injected = inject_value_errors(
        workload.ground_truth, n_errors, seed=seed + 4000
    )
    probe = RepairEngine(corrupted, workload.constraints)
    if probe.is_consistent():
        return {"skip": 1.0}
    corrupted_cells = {cell for cell, _, _ in injected}
    all_cells = corrupted.measure_cells()
    calibrated = {
        cell: (0.2 if cell in corrupted_cells else 1.0) for cell in all_cells
    }
    inverted = {
        cell: (1.0 if cell in corrupted_cells else 0.2) for cell in all_cells
    }
    engines = {
        "cardinality": RepairEngine(corrupted, workload.constraints),
        "total_change": RepairEngine(
            corrupted, workload.constraints,
            objective=RepairObjective.TOTAL_CHANGE,
        ),
        "calibrated": RepairEngine(
            corrupted, workload.constraints,
            objective=RepairObjective.WEIGHTED_CARDINALITY,
            weights=calibrated,
        ),
        "inverted": RepairEngine(
            corrupted, workload.constraints,
            objective=RepairObjective.WEIGHTED_CARDINALITY,
            weights=inverted,
        ),
    }
    results = {"skip": 0.0}
    for name, engine in engines.items():
        outcome = engine.find_card_minimal_repair()
        quality = repair_quality(
            outcome.repair, injected, corrupted=corrupted,
            ground_truth=workload.ground_truth,
        )
        results[f"{name}_cardinality"] = float(outcome.repair.cardinality)
        results[f"{name}_exact"] = 1.0 if quality.exact else 0.0
        results[f"{name}_precision"] = quality.cell_precision
    return results


SEMANTICS = ["cardinality", "calibrated", "inverted", "total_change"]
LABELS = {
    "cardinality": "card-minimal (paper)",
    "calibrated": "weighted, calibrated prior",
    "inverted": "weighted, inverted prior",
    "total_change": "total-change",
}


def test_bench_a4_semantics(benchmark):
    cells = sweep(ERROR_COUNTS, SEEDS, run_once)

    rows = []
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        mean = lambda key: sum(r[key] for r in active) / len(active)
        for semantics in SEMANTICS:
            rows.append(
                [
                    cell.parameter,
                    LABELS[semantics],
                    f"{mean(f'{semantics}_cardinality'):.2f}",
                    f"{mean(f'{semantics}_precision'):.2f}",
                    f"{mean(f'{semantics}_exact'):.2f}",
                ]
            )
    table = ascii_table(
        ["errors", "semantics", "mean |repair|", "precision", "exact rate"],
        rows,
        title=(
            "A4: minimality semantics, unsupervised "
            f"(2-year cash budgets, {len(list(SEEDS))} seeds)\n"
            "extension beyond the paper; card-minimality is Definition 5"
        ),
    )
    report("a4_semantics", table)

    # Shape checks.
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        mean = lambda key: sum(r[key] for r in active) / len(active)
        # A calibrated confidence prior only helps.
        assert mean("calibrated_exact") >= mean("cardinality_exact") - 1e-9
        # An inverted prior only hurts.
        assert mean("inverted_exact") <= mean("cardinality_exact") + 1e-9
        # Card-minimality never changes more cells than total-change.
        assert mean("cardinality_cardinality") <= mean("total_change_cardinality") + 1e-9

    benchmark(lambda: run_once(2, 13))
