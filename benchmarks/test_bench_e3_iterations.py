"""E3 -- "correct repair ... in a few iterations in most cases" (Sec. 7).

The paper's preliminary evaluation is the qualitative claim that DART
proposes the correct repair within a few supervised iterations for
most documents.  This bench makes the claim quantitative: for each
injected-error count k, corrupt k measure values of a generated
two-year cash budget and run the full validation loop against a
truthful oracle operator, over many seeds.

Reported series (the reproduction target is their *shape*: first-
proposal exactness decays with k, iterations stay small -- "a few"):

- first-proposal exact rate: the very first card-minimal repair equals
  the source document (zero-interaction success);
- mean iterations to acceptance;
- mean values inspected by the operator;
- recovery rate: the accepted repair equals the source document
  (should be ~1.0 -- the loop is sound).

The timed kernel is one complete validation loop at k = 2.
"""

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table, sweep
from repro.repair import OracleOperator, RepairEngine, ValidationLoop

ERROR_COUNTS = [1, 2, 3, 4, 5]
SEEDS = range(30)


def run_once(n_errors: int, seed: int):
    workload = generate_cash_budget(n_years=2, seed=seed)
    corrupted, injected = inject_value_errors(
        workload.ground_truth, n_errors, seed=seed + 1000
    )
    engine = RepairEngine(corrupted, workload.constraints)
    if engine.is_consistent():
        # Injected errors cancelled out; the instance is indistinguishable
        # from a correct one and DART rightly proposes nothing.
        return {
            "cancelled": 1.0,
            "first_exact": 0.0,
            "iterations": 0.0,
            "inspected": 0.0,
            "recovered": 0.0,
        }
    first = engine.apply(engine.find_card_minimal_repair().repair)
    operator = OracleOperator(workload.ground_truth, acquired=corrupted)
    session = ValidationLoop(engine, operator).run()
    return {
        "cancelled": 0.0,
        "first_exact": 1.0 if first == workload.ground_truth else 0.0,
        "iterations": float(session.iterations),
        "inspected": float(session.values_inspected),
        "recovered": 1.0 if session.repaired_database == workload.ground_truth else 0.0,
    }


def test_bench_e3_iterations(benchmark):
    cells = sweep(ERROR_COUNTS, SEEDS, run_once)

    rows = []
    for cell in cells:
        active = [r for r in cell.runs if r["cancelled"] == 0.0]
        n_active = len(active)
        mean = lambda key: (
            sum(r[key] for r in active) / n_active if n_active else float("nan")
        )
        rows.append(
            [
                cell.parameter,
                n_active,
                f"{mean('first_exact'):.2f}",
                f"{mean('iterations'):.2f}",
                f"{mean('inspected'):.2f}",
                f"{mean('recovered'):.2f}",
            ]
        )
    table = ascii_table(
        [
            "errors injected",
            "runs",
            "first-proposal exact",
            "mean iterations",
            "mean values inspected",
            "recovery rate",
        ],
        rows,
        title=(
            "E3: iterations to acceptance on 2-year cash budgets "
            f"({len(list(SEEDS))} seeds per row)\n"
            "paper claim: 'the correct repair ... in a few iterations in "
            "most cases'"
        ),
    )
    report("e3_iterations", table)

    # Shape checks backing the claim.
    by_k = {cell.parameter: cell for cell in cells}
    active1 = [r for r in by_k[1].runs if r["cancelled"] == 0.0]
    assert active1, "single-error cases must not cancel"
    assert sum(r["recovered"] for r in active1) / len(active1) == 1.0
    mean_iterations_1 = sum(r["iterations"] for r in active1) / len(active1)
    assert mean_iterations_1 <= 3.0  # "a few"
    all_active = [
        r for cell in cells for r in cell.runs if r["cancelled"] == 0.0
    ]
    recovery = sum(r["recovered"] for r in all_active) / len(all_active)
    assert recovery == 1.0  # the supervised loop is sound

    benchmark(lambda: run_once(2, 7))
