"""E6 -- wrapper robustness and the Figure 7 matching scores.

Reproduces Examples 12-13: the Figure 7(a) row pattern matched against
the first document row with the OCR misreading "bgnning cesh" binds to
"beginning cash" with a ~90% cell score (exact cells score 100%), and
the instance still carries the multi-row year value.

Then sweeps string-noise rates over full Figure 1-style documents and
measures extraction accuracy with and without the msi dictionary
repair (without it, the raw damaged text is kept whenever it is not an
exact dictionary item).

Reproduction target (shape): with msi the lexical-binding accuracy
stays near 1.0 far into the noise range; without it accuracy decays
roughly linearly with the corruption rate.

The timed kernel is wrapping one full two-year document.
"""

import pytest

from _common import report
from repro.acquisition import AcquisitionModule, OcrChannel, to_html
from repro.core.scenarios import cash_budget_document, cash_budget_metadata
from repro.datasets import generate_cash_budget, paper_rows
from repro.evalkit import ascii_table, sweep
from repro.wrapping import Wrapper

NOISE_RATES = [0.0, 0.1, 0.2, 0.3, 0.5]
SEEDS = range(20)


def lexical_accuracy(workload, seed: int, rate: float, use_msi: bool):
    document = cash_budget_document(workload.rows)
    channel = OcrChannel(numeric_error_rate=0.0, string_error_rate=rate, seed=seed)
    result = AcquisitionModule(channel).acquire(document)
    metadata = cash_budget_metadata()
    report_ = Wrapper(metadata).wrap_html(result.html)
    truth = [(str(r[1]), str(r[2])) for r in workload.rows]  # (Section, Subsection)
    correct = 0
    total = 0
    for instance, (section, subsection) in zip(report_.instances, truth):
        bound_section = instance.value("Section")
        bound_subsection = instance.value("Subsection")
        if not use_msi:
            # Without dictionary repair the wrapper would keep raw text;
            # simulate by only accepting exact raw matches.
            bound_section = instance.cells[1].raw_text
            bound_subsection = instance.cells[2].raw_text
        total += 2
        correct += int(bound_section == section) + int(bound_subsection == subsection)
    dropped = len(truth) - len(report_.instances)
    total += 2 * dropped  # dropped rows extract nothing correct
    return correct / total if total else 1.0


def run_once(rate: float, seed: int):
    workload = generate_cash_budget(n_years=2, seed=seed)
    return {
        "with_msi": lexical_accuracy(workload, seed, rate, use_msi=True),
        "without_msi": lexical_accuracy(workload, seed, rate, use_msi=False),
    }


def test_bench_e6_wrapper(benchmark):
    # --- Example 13 exactly ---------------------------------------------
    from repro.acquisition.documents import Cell, Document, Row, Table

    metadata = cash_budget_metadata()
    wrapper = Wrapper(metadata)
    typo_table = Table(
        [Row([Cell("2003"), Cell("Receipts"), Cell("bgnning cesh"), Cell("20")])]
    )
    instance = wrapper.wrap_html(to_html(Document("d", [typo_table]))).instances[0]
    assert instance.value("Subsection") == "beginning cash"
    scores = [cell.score for cell in instance.cells]
    assert scores[0] == scores[1] == scores[3] == 1.0
    assert scores[2] == pytest.approx(1 - 3 / 26)  # the "90%" cell

    example13 = (
        "Example 13 (Figure 7b): row ['2003', 'Receipts', 'bgnning cesh', '20']\n"
        f"  bound instance: Year=2003, Section=Receipts, "
        f"Subsection='beginning cash', Value=20\n"
        f"  cell scores: 100% | 100% | {scores[2]:.0%} | 100% "
        "(paper: 100/100/90/100)\n"
    )

    # --- the noise sweep ---------------------------------------------------
    cells = sweep(NOISE_RATES, SEEDS, run_once)
    rows = [
        [
            f"{cell.parameter:.1f}",
            f"{cell.mean('with_msi'):.3f}",
            f"{cell.mean('without_msi'):.3f}",
        ]
        for cell in cells
    ]
    table = ascii_table(
        ["string noise rate", "accuracy with msi", "accuracy without msi"],
        rows,
        title=(
            "E6: lexical extraction accuracy vs OCR string noise "
            f"(2-year cash budgets, {len(list(SEEDS))} seeds)\n"
            "the wrapper's msi binding is the string-level repair of Sec. 6.2"
        ),
    )
    report("e6_wrapper", example13 + table)

    # Shape: msi dominates, and the gap widens with noise.
    for cell in cells[1:]:
        assert cell.mean("with_msi") > cell.mean("without_msi")
    assert cells[-1].mean("with_msi") > 0.9
    assert cells[-1].mean("without_msi") < 0.9

    workload = generate_cash_budget(n_years=2, seed=1)
    html = to_html(cash_budget_document(workload.rows))
    benchmark(lambda: Wrapper(cash_budget_metadata()).wrap_html(html))
