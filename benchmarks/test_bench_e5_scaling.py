"""E5 -- size and solve time of the MILP translation (Section 5).

The paper notes (footnote 3) that the translation is polynomial in the
database size.  This bench measures the instance S*(AC) as the
document grows: number of involved values N, MILP rows / variables /
binaries, and wall-clock solve time for the production backend (HiGHS
via scipy) and the from-scratch branch-and-bound.

Reproduction target (shape): rows and variables grow linearly in the
number of tuples (3 variables and ~3.4 rows per involved value for the
cash-budget constraint family); HiGHS stays in the low milliseconds
while the from-scratch solver grows faster but remains exact
(objective parity is asserted at every size).

The timed kernel is the default-backend repair at the 8-year size.
"""

import time

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table
from repro.repair import RepairEngine

YEAR_COUNTS = [1, 2, 4, 8, 16]
N_ERRORS = 2


def build_case(n_years: int):
    workload = generate_cash_budget(n_years=n_years, seed=42)
    corrupted, _ = inject_value_errors(workload.ground_truth, N_ERRORS, seed=7)
    return workload, corrupted


def timed_repair(corrupted, constraints, backend: str):
    engine = RepairEngine(corrupted, constraints, backend=backend)
    started = time.perf_counter()
    outcome = engine.find_card_minimal_repair()
    elapsed = time.perf_counter() - started
    return outcome, elapsed


def test_bench_e5_scaling(benchmark):
    rows = []
    for n_years in YEAR_COUNTS:
        workload, corrupted = build_case(n_years)
        scipy_outcome, scipy_time = timed_repair(
            corrupted, workload.constraints, "scipy"
        )
        bnb_outcome, bnb_time = timed_repair(corrupted, workload.constraints, "bnb")
        assert scipy_outcome.cardinality == bnb_outcome.cardinality
        translation = scipy_outcome.translation
        model = translation.model
        rows.append(
            [
                n_years,
                corrupted.total_tuples(),
                translation.n,
                model.n_constraints,
                model.n_variables,
                model.n_binary,
                f"{scipy_time * 1000:.1f}",
                f"{bnb_time * 1000:.1f}",
            ]
        )
    table = ascii_table(
        [
            "years",
            "tuples",
            "N (involved values)",
            "MILP rows",
            "MILP vars",
            "binaries",
            "scipy/HiGHS (ms)",
            "own B&B (ms)",
        ],
        rows,
        title=(
            "E5: S*(AC) size and solve time vs document size "
            f"(cash budgets, {N_ERRORS} injected errors)\n"
            "paper: the translation is polynomial in the database size "
            "(footnote 3); both backends solve to the same optimum"
        ),
    )
    report("e5_scaling", table)

    # Shape: linear growth of the instance in the tuple count.
    n_values = [row[2] for row in rows]
    tuples = [row[1] for row in rows]
    for n, t in zip(n_values, tuples):
        assert n == t  # every measure value is involved for this family
    vars_per_value = [row[4] / row[2] for row in rows]
    assert all(v == pytest.approx(3.0) for v in vars_per_value)

    workload, corrupted = build_case(8)
    engine = RepairEngine(corrupted, workload.constraints)
    benchmark(engine.find_card_minimal_repair)
