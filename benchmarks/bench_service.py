"""The repair-service benchmark: cold vs warm store economics.

Runs one corpus through the durable :class:`~repro.repair.service.
RepairService` twice against the same result store:

- **cold** -- a fresh store: every unique document pays full MILP cost,
  duplicates within the run hit the in-memory tier;
- **warm** -- a fresh *service* (new process state, empty memory tier)
  over the now-populated store: the entire corpus must come back as
  disk hits, with **zero** MILP solves and bitwise-identical repairs.

The gated quantity is ``warm_hit_rate`` -- the fraction of warm-run
solve requests served from cache (memory or store).  Its committed
baseline is 1.0 by construction; any drop means the store stopped
admitting or serving certified results, which is a correctness
regression dressed as a perf number, so ``check_bench_regression.py``
gates it like a speedup geomean (>10% drop fails -- in practice any
drop at all trips the gate, since the ceiling is 1.0).

Intake latency (p50/p99 of submit -> dispatch, milliseconds) is
reported for trend-watching but not gated: it is absolute wall time
and CI runners are too noisy to gate on it honestly.

Results land in ``BENCH_service.json`` at the repository root with the
same ``summary`` shape as ``BENCH_milp.json``.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/bench_service.py

Exits non-zero when the warm run solved anything, when repairs differ
between runs, or when the store finishes its integrity scan dirty.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.repair.batch import RepairTask
from repro.repair.service import RepairService, ServiceConfig

#: Unique corrupted documents in the corpus; two duplicates ride along.
N_UNIQUE = 6
N_ERRORS = 2
SEED = 20260809


def build_corpus() -> List[RepairTask]:
    workload = generate_cash_budget(n_years=2, seed=SEED)
    databases = []
    for offset in range(N_UNIQUE):
        corrupted, _ = inject_value_errors(
            workload.ground_truth, N_ERRORS, seed=SEED + offset
        )
        databases.append(corrupted)
    databases.append(databases[0].copy())
    databases.append(databases[1].copy())
    return [
        RepairTask(
            database=database,
            constraints=workload.constraints,
            name=f"doc{index}",
        )
        for index, database in enumerate(databases)
    ]


def run_once(store_path: str, label: str) -> Dict:
    service = RepairService(ServiceConfig(store=store_path))
    try:
        tasks = build_corpus()
        started = time.perf_counter()
        tickets = [service.submit(task) for task in tasks]
        service.process_pending()
        wall = time.perf_counter() - started
        results = [service.result(ticket) for ticket in tickets]
        cache = service.cache.info()
        integrity = service.integrity_report()
        return {
            "label": label,
            "wall_time": wall,
            "n_tasks": len(tasks),
            "statuses": [result.status for result in results],
            "repairs": [str(result.repair) for result in results],
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "store_hits": cache.store_hits,
            "hit_rate": cache.hit_rate,
            "intake_p50_ms": service.intake_latency(0.50) * 1000.0,
            "intake_p99_ms": service.intake_latency(0.99) * 1000.0,
            "store_rows": None if service.store is None else len(service.store),
            "integrity_ok": integrity.ok if integrity is not None else None,
        }
    finally:
        service.close()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        store_path = str(Path(tmp) / "results.db")
        cold = run_once(store_path, "cold")
        warm = run_once(store_path, "warm")

    repairs_match = cold["repairs"] == warm["repairs"]
    payload = {
        "benchmark": "service",
        "corpus": {"unique": N_UNIQUE, "duplicates": 2, "seed": SEED},
        "scenarios": [cold, warm],
        "summary": {
            "service": {
                "cold_hit_rate": cold["hit_rate"],
                "warm_hit_rate": warm["hit_rate"],
                "warm_misses": float(warm["cache_misses"]),
                "warm_store_hits": float(warm["store_hits"]),
                "intake_p50_ms": warm["intake_p50_ms"],
                "intake_p99_ms": warm["intake_p99_ms"],
            }
        },
        "all_objectives_match": repairs_match,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    print(
        f"cold: {cold['cache_misses']} solve(s), hit rate "
        f"{cold['hit_rate']:.2f}, {cold['wall_time'] * 1000:.1f} ms"
    )
    print(
        f"warm: {warm['cache_misses']} solve(s), hit rate "
        f"{warm['hit_rate']:.2f}, {warm['wall_time'] * 1000:.1f} ms, "
        f"intake p50 {warm['intake_p50_ms']:.2f} ms / "
        f"p99 {warm['intake_p99_ms']:.2f} ms"
    )

    failures = []
    if warm["cache_misses"] != 0:
        failures.append(
            f"warm run solved {warm['cache_misses']} task(s); expected 0"
        )
    if not repairs_match:
        failures.append("warm repairs differ from cold repairs")
    for run in (cold, warm):
        if run["integrity_ok"] is not True:
            failures.append(f"{run['label']} run left the store dirty")
        if any(status != "repaired" for status in run["statuses"]):
            failures.append(f"{run['label']} run statuses: {run['statuses']}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
