"""A6 (ablation, extension) -- operator reliability.

The paper assumes a perfect operator ("the operator examines the
proposed repair by comparing every updated value with the
corresponding source value").  Real clerks slip.  This bench sweeps
the operator slip rate and measures what the supervised loop delivers:

- recovery rate (final instance == source document),
- consistency rate (final instance |= AC -- the loop's actual
  guarantee) among non-wedged sessions,
- wedged rate: slips can pin mutually contradictory "source" values,
  in which case the MILP is rightly infeasible and the validation
  interface must bounce the conflict back to the operator,
- iterations and inspections (noise makes the loop thrash).

Shape targets: at slip 0 everything is perfect; as the operator gets
noisier, recovery degrades and wedging appears, while non-wedged
sessions remain constraint-consistent -- i.e. DART's guarantee is
*exactly* as strong as its operator, which quantifies the paper's
reliance on "100% error free" human validation.

The timed kernel is one session at slip rate 0.2.
"""

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.constraints.grounding import check_consistency
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table, sweep
from repro.repair import FallibleOperator, RepairEngine, ValidationLoop

SLIP_RATES = [0.0, 0.05, 0.1, 0.2, 0.4]
SEEDS = range(25)
N_ERRORS = 3


def run_once(slip_rate: float, seed: int):
    workload = generate_cash_budget(n_years=2, seed=seed)
    corrupted, _ = inject_value_errors(
        workload.ground_truth, N_ERRORS, seed=seed + 6000
    )
    engine = RepairEngine(corrupted, workload.constraints)
    if engine.is_consistent():
        return {"skip": 1.0}
    operator = FallibleOperator(
        workload.ground_truth, slip_rate=slip_rate, seed=seed,
        acquired=corrupted,
    )
    from repro.repair import UnrepairableError

    try:
        session = ValidationLoop(engine, operator, max_iterations=30).run()
    except UnrepairableError:
        # The operator's slips pinned mutually contradictory "source"
        # values; the validation interface would have to report the
        # conflict back to the operator.  Counted as a wedged session.
        return {
            "skip": 0.0,
            "wedged": 1.0,
            "recovered": 0.0,
            "consistent": 0.0,
            "iterations": 0.0,
            "inspected": float(operator.reviews),
            "slips": float(operator.slips),
        }
    consistent = not check_consistency(
        session.repaired_database, workload.constraints
    )
    return {
        "skip": 0.0,
        "wedged": 0.0,
        "recovered": 1.0 if session.repaired_database == workload.ground_truth else 0.0,
        "consistent": 1.0 if consistent else 0.0,
        "iterations": float(session.iterations),
        "inspected": float(session.values_inspected),
        "slips": float(operator.slips),
    }


def test_bench_a6_operator(benchmark):
    cells = sweep(SLIP_RATES, SEEDS, run_once)

    rows = []
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        mean = lambda key: sum(r[key] for r in active) / len(active)
        rows.append(
            [
                f"{cell.parameter:.2f}",
                f"{mean('recovered'):.2f}",
                f"{mean('consistent'):.2f}",
                f"{mean('wedged'):.2f}",
                f"{mean('iterations'):.2f}",
                f"{mean('inspected'):.2f}",
                f"{mean('slips'):.2f}",
            ]
        )
    table = ascii_table(
        ["slip rate", "recovery", "consistency", "wedged", "mean iterations",
         "mean inspected", "mean slips"],
        rows,
        title=(
            "A6: validation under a fallible operator "
            f"(2-year budgets, {N_ERRORS} errors, {len(list(SEEDS))} seeds)\n"
            "extension: the paper assumes a perfect operator"
        ),
    )
    report("a6_operator", table)

    by_rate = {cell.parameter: cell for cell in cells}
    perfect = [r for r in by_rate[0.0].runs if not r.get("skip")]
    assert sum(r["recovered"] for r in perfect) / len(perfect) == 1.0
    noisiest = [r for r in by_rate[0.4].runs if not r.get("skip")]
    assert (
        sum(r["recovered"] for r in noisiest) / len(noisiest)
        < sum(r["recovered"] for r in perfect) / len(perfect)
    )
    # The loop's own guarantee -- constraint consistency -- holds for
    # every session that was not wedged by contradictory pins.
    for cell in cells:
        active = [
            r for r in cell.runs if not r.get("skip") and not r.get("wedged")
        ]
        if active:
            assert sum(r["consistent"] for r in active) / len(active) == 1.0

    benchmark(lambda: run_once(0.2, 17))
