"""Seeded chaos soak for the repair service.

One seed drives the full gauntlet the service claims to survive:

1. **reference** -- a clean run on a fresh store records the ground
   truth repairs for the corpus;
2. **crash** -- a child incarnation of this very script runs the same
   corpus against a fresh store + journal and ``SIGKILL``\\ s itself
   after delivering two results (a worst-case torn shutdown: no
   ``atexit``, no flushes beyond what the store/journal already
   guaranteed);
3. **sabotage** -- the parent then appends garbage to the journal
   (:func:`~repro.faultinject.torn_write`) and flips one committed
   store row's payload under a now-stale checksum
   (:func:`~repro.faultinject.corrupt_store_row`);
4. **restart** -- a new service resumes over the wreckage *with a
   sick scipy backend injected* (dispatches to the primary die with
   probability ``sick_rate``), and must still complete every task with
   repairs identical to the reference, evicting the corrupted row and
   discarding the torn journal tail along the way;
5. **drain** -- a final incarnation takes a ``SIGTERM`` mid-batch,
   finishes only its in-flight work, persists a pending manifest, and
   a successor completes the remainder -- again bit-identical.

Everything is derived from ``--seed``, so a CI matrix over seeds walks
different corruption victims, fault schedules, and jitter without any
flakiness.  A JSON report (``--out``) records each phase for artifact
upload; exit status is non-zero when any phase breaks the invariants.

Usage::

    PYTHONPATH=src python benchmarks/soak_service.py --seed 1 \\
        --out soak_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.faultinject import FaultConfig, corrupt_store_row, torn_write
from repro.repair.batch import RepairTask
from repro.repair.checkpoint import CheckpointJournal
from repro.repair.service import RepairService, ServiceConfig

N_UNIQUE = 4
N_ERRORS = 2
#: Results the crash incarnation delivers before SIGKILLing itself.
KILL_AFTER = 2
SICK_RATE = 0.5

REPO_ROOT = Path(__file__).resolve().parent.parent


def build_corpus(seed: int) -> List[RepairTask]:
    workload = generate_cash_budget(n_years=2, seed=seed)
    databases = []
    for offset in range(N_UNIQUE):
        corrupted, _ = inject_value_errors(
            workload.ground_truth, N_ERRORS, seed=seed + offset
        )
        databases.append(corrupted)
    databases.append(databases[0].copy())  # one duplicate
    return [
        RepairTask(
            database=database,
            constraints=workload.constraints,
            name=f"doc{index}",
        )
        for index, database in enumerate(databases)
    ]


def signature(report) -> List[str]:
    """Bitwise identity: name, status and the full repair text."""
    return [f"{r.name}:{r.status}:{r.repair}" for r in report.results]


def objective_signature(report) -> List[str]:
    """Optimality identity: name, status and the certified objective.

    A sick primary backend reroutes solves to the fallback, which may
    break ties between equally-optimal repairs differently -- so after
    rerouting, the invariant is the objective value, not the literal
    cell choices.  (Replayed and cache-served results stay bitwise; the
    drain phase checks that stronger form.)
    """
    return [
        f"{r.name}:{r.status}:"
        f"{'-' if r.objective is None else format(r.objective, '.9g')}"
        for r in report.results
    ]


def crashy_incarnation(args: argparse.Namespace) -> int:
    """Child mode: run the corpus, SIGKILL self after KILL_AFTER rows."""
    service = RepairService(
        ServiceConfig(store=args.store, checkpoint=args.checkpoint)
    )
    delivered = {"n": 0}
    original = service._deliver

    def deliver_then_die(*a, **kw):
        out = original(*a, **kw)
        delivered["n"] += 1
        if delivered["n"] >= KILL_AFTER:
            os.kill(os.getpid(), signal.SIGKILL)
        return out

    service._deliver = deliver_then_die
    service.run(build_corpus(args.seed))
    return 3  # unreachable unless the corpus shrank below KILL_AFTER


def run_soak(args: argparse.Namespace) -> int:
    phases: Dict[str, Dict] = {}
    failures: List[str] = []
    tasks = build_corpus(args.seed)

    with tempfile.TemporaryDirectory(prefix="soak-service-") as tmp:
        # Phase 1: reference run, pristine conditions.
        with RepairService(
            ServiceConfig(store=str(Path(tmp) / "ref.db"))
        ) as ref_service:
            ref_report = ref_service.run(tasks)
        reference = signature(ref_report)
        ref_objectives = objective_signature(ref_report)
        phases["reference"] = {"signature": reference}
        if len(reference) != len(tasks):
            failures.append("reference run incomplete")

        store = str(Path(tmp) / "soak.db")
        checkpoint = str(Path(tmp) / "soak.journal")

        # Phase 2: a child incarnation dies by SIGKILL mid-run.
        child = subprocess.run(
            [
                sys.executable, __file__, "--phase", "crashy",
                "--seed", str(args.seed),
                "--store", store, "--checkpoint", checkpoint,
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True, text=True, timeout=300,
        )
        phases["crash"] = {"returncode": child.returncode}
        if child.returncode != -signal.SIGKILL:
            failures.append(
                f"crash child exited {child.returncode}, wanted "
                f"{-signal.SIGKILL}; stderr: {child.stderr[-500:]}"
            )

        # Phase 3: sabotage the survivors.
        phases["sabotage"] = {
            "torn_bytes": torn_write(checkpoint, seed=args.seed),
            "corrupted_key": corrupt_store_row(store, seed=args.seed),
        }

        # Phase 4: restart over the wreckage with a sick primary backend.
        chaos = FaultConfig(
            seed=args.seed, sick_backend="scipy", sick_rate=SICK_RATE
        )
        with RepairService(ServiceConfig(
            store=store, checkpoint=checkpoint, fault_config=chaos,
        )) as survivor:
            report = survivor.run(tasks, resume=True)
            # First scan may still find the sabotaged row (if neither
            # replay nor rerouting ever read it, lazy eviction never
            # fired) -- finding and evicting it IS the self-heal.  The
            # rescan after that must be spotless.
            integrity = survivor.integrity_report()
            rescan = survivor.integrity_report()
            phases["restart"] = {
                "objectives_match":
                    objective_signature(report) == ref_objectives,
                "resumed": sum(1 for r in report.results if r.resumed),
                "fallbacks": sum(
                    1 for r in report.results if r.fallback_taken
                ),
                "breakers": survivor.health()["breakers"],
                "integrity": integrity.as_dict(),
                "rescan": rescan.as_dict(),
                # Would raise CheckpointError if resume had appended
                # past the torn tail instead of truncating it first.
                "journal_records_after_restart":
                    len(CheckpointJournal(checkpoint).load().records),
            }
        if not phases["restart"]["objectives_match"]:
            failures.append("restart produced different repair objectives")
        if phases["restart"]["resumed"] == 0:
            failures.append("restart replayed nothing from the journal")
        sabotaged = phases["sabotage"]["corrupted_key"]
        stray = [k for k in integrity.evicted_keys if k != sabotaged]
        if stray or integrity.sqlite_verdict != "ok":
            failures.append(
                f"integrity scan evicted rows we never sabotaged: {integrity}"
            )
        if not rescan.ok:
            failures.append(f"store dirty after self-heal: {rescan}")

        # Phase 5: SIGTERM drain, then a successor finishes the rest.
        drain_store = str(Path(tmp) / "drain.db")
        drain_journal = str(Path(tmp) / "drain.journal")
        previous = signal.getsignal(signal.SIGTERM)
        try:
            drainee = RepairService(ServiceConfig(
                store=drain_store, checkpoint=drain_journal,
            ))
            drainee.install_signal_handlers()
            for task in tasks:
                drainee.submit(task)
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(0)  # let the handler run before dispatch
            completed_before = drainee.process_pending()
            pending = drainee.drain()
            drainee.close()
        finally:
            signal.signal(signal.SIGTERM, previous)
        manifest = Path(drain_journal + ".pending")
        phases["drain"] = {
            "completed_before_drain": completed_before,
            "pending_after_drain": pending,
            "manifest_exists": manifest.exists(),
        }
        if completed_before >= len(tasks) or not pending:
            failures.append("SIGTERM did not stop the batch early")
        if not manifest.exists():
            failures.append("drain wrote no pending manifest")
        with RepairService(ServiceConfig(
            store=drain_store, checkpoint=drain_journal,
        )) as successor:
            final = signature(successor.run(tasks, resume=True))
        phases["drain"]["final_matches"] = final == reference
        if final != reference:
            failures.append("post-drain completion differs from reference")

    payload = {
        "soak": "service",
        "seed": args.seed,
        "n_tasks": len(tasks),
        "phases": phases,
        "failures": failures,
        "ok": not failures,
    }
    Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")
    for name, detail in phases.items():
        print(f"{name}: {json.dumps(detail, default=str)[:200]}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("soak:", "ok" if not failures else "FAILED")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="soak_report.json")
    parser.add_argument("--phase", choices=("soak", "crashy"), default="soak")
    parser.add_argument("--store", help="(crashy phase) store path")
    parser.add_argument("--checkpoint", help="(crashy phase) journal path")
    args = parser.parse_args()
    if args.phase == "crashy":
        return crashy_incarnation(args)
    return run_soak(args)


if __name__ == "__main__":
    raise SystemExit(main())
