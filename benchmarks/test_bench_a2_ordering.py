"""A2 (ablation) -- the involvement-count ordering heuristic (Sec. 6.3).

DART displays suggested updates ordered by how many ground constraints
the updated item is involved in, "useful in the case that the operator
chooses to re-start the repair computation after a small number of
validations".  This bench reproduces exactly that regime: the operator
reviews only ONE update per iteration (prefix validation), with the
heuristic on vs off (off = cell order).

Reproduction target (shape): with prefix validation, involvement
ordering needs no more -- and typically fewer -- iterations and
inspections than the unordered display; both converge to the truth.

The timed kernel is one ordered prefix-validation session.
"""

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table, sweep
from repro.repair import OracleOperator, RepairEngine, ValidationLoop

ERROR_COUNTS = [2, 3, 4]
SEEDS = range(25)


def run_once(n_errors: int, seed: int):
    workload = generate_cash_budget(n_years=2, seed=seed)
    corrupted, _ = inject_value_errors(
        workload.ground_truth, n_errors, seed=seed + 300
    )
    engine = RepairEngine(corrupted, workload.constraints)
    if engine.is_consistent():
        return {"skip": 1.0}
    results = {"skip": 0.0}
    for label, ordered in (("ordered", True), ("unordered", False)):
        operator = OracleOperator(workload.ground_truth, acquired=corrupted)
        session = ValidationLoop(
            engine, operator, reviews_per_iteration=1, order_updates=ordered
        ).run()
        assert session.converged
        assert session.repaired_database == workload.ground_truth
        results[f"{label}_iterations"] = float(session.iterations)
        results[f"{label}_inspected"] = float(session.values_inspected)
    return results


def test_bench_a2_ordering(benchmark):
    cells = sweep(ERROR_COUNTS, SEEDS, run_once)

    rows = []
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        mean = lambda key: sum(r[key] for r in active) / len(active)
        rows.append(
            [
                cell.parameter,
                len(active),
                f"{mean('ordered_iterations'):.2f}",
                f"{mean('unordered_iterations'):.2f}",
                f"{mean('ordered_inspected'):.2f}",
                f"{mean('unordered_inspected'):.2f}",
            ]
        )
    table = ascii_table(
        [
            "errors",
            "runs",
            "iterations (heuristic)",
            "iterations (unordered)",
            "inspected (heuristic)",
            "inspected (unordered)",
        ],
        rows,
        title=(
            "A2: involvement-ordering heuristic under prefix validation "
            "(1 review per iteration,\n"
            f"2-year cash budgets, {len(list(SEEDS))} seeds); "
            "paper 6.3: ordering aims at acceptance in fewer iterations"
        ),
    )
    report("a2_ordering", table)

    # Shape: the heuristic is no worse on average at every error count.
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        ordered = sum(r["ordered_inspected"] for r in active) / len(active)
        unordered = sum(r["unordered_inspected"] for r in active) / len(active)
        assert ordered <= unordered + 0.5

    def kernel():
        workload = generate_cash_budget(n_years=2, seed=5)
        corrupted, _ = inject_value_errors(workload.ground_truth, 3, seed=305)
        engine = RepairEngine(corrupted, workload.constraints)
        operator = OracleOperator(workload.ground_truth, acquired=corrupted)
        ValidationLoop(engine, operator, reviews_per_iteration=1).run()

    benchmark(kernel)
