"""A1 (ablation) -- the Big-M bound (Section 5, footnote 3).

The paper's correctness argument uses the Papadimitriou bound
M = n(ma)^(2m+1), whose *size in bits* is polynomial but whose value
is astronomically large -- for the 20-value running example it is
~1.4e219.  Any floating-point MILP solver needs a much smaller M, and
the link rows y_i <= M delta_i get numerically looser (and the LP
relaxation weaker) as M grows.

This bench quantifies the trade-off on a fixed 4-year workload:

- the theoretical M (reported exactly, in bits -- it cannot be solved
  with);
- the practical data-dependent M and inflations of it (x10^2..x10^6):
  solve time and branch-and-bound node counts for the from-scratch
  backend, plus correctness of the returned cardinality at every M.

Reproduction target (shape): at the practical M the from-scratch
solver returns the true optimum; as M is inflated the link rows go
numerically degenerate (a delta of 1e-8 is "integral" within solver
tolerance) and *optimality degrades* -- returned repairs stay valid
(they are verified against the constraints) but may touch more cells
than necessary.  This is the classical big-M pathology and exactly why
the engine uses the tightest safe data-dependent bound rather than
anything resembling the theoretical constant.

The timed kernel is the repair at the practical M.
"""

import time

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table
from repro.milp import solve
from repro.repair import (
    BigMStrategy,
    RepairEngine,
    practical_big_m,
    theoretical_big_m,
    translate,
)

INFLATIONS = [1.0, 1e2, 1e4, 1e6]


def build_case():
    workload = generate_cash_budget(n_years=4, seed=17)
    corrupted, _ = inject_value_errors(workload.ground_truth, 3, seed=17)
    return workload, corrupted


def test_bench_a1_bigm(benchmark):
    workload, corrupted = build_case()
    engine = RepairEngine(corrupted, workload.constraints)
    grounds = engine.ground_system
    base_translation = translate(
        corrupted, workload.constraints, grounds=grounds
    )
    base_m = base_translation.big_m

    n_cells = base_translation.n
    theoretical = theoretical_big_m(
        2 * n_cells + len(grounds),
        n_cells + len(grounds),
        int(max(abs(v) for v in base_translation.values)),
    )

    # The true optimum, from the verified production path.
    reference_cardinality = engine.find_card_minimal_repair().cardinality

    rows = [
        [
            "theoretical (paper)",
            f"~1e{len(str(theoretical)) - 1}",
            "-",
            "-",
            "unusable in float64",
        ]
    ]
    optimal_flags = {}
    for inflation in INFLATIONS:
        m_value = base_m * inflation
        translation = translate(
            corrupted,
            workload.constraints,
            strategy=BigMStrategy.FIXED,
            big_m=m_value,
            grounds=grounds,
        )
        started = time.perf_counter()
        solution = solve(translation.model, backend="bnb")
        elapsed = time.perf_counter() - started
        repair = translation.extract_repair(solution)
        # Whatever the numerics, a returned repair must BE a repair.
        assert engine.is_repair(repair)
        optimal = repair.cardinality == reference_cardinality
        optimal_flags[inflation] = optimal
        label = "practical" if inflation == 1.0 else f"practical x{inflation:g}"
        rows.append(
            [
                label,
                f"{m_value:.3g}",
                f"{elapsed * 1000:.1f}",
                f"{solution.stats.get('nodes', 0):.0f}",
                f"cardinality {repair.cardinality}"
                + ("" if optimal else f" (optimum {reference_cardinality} LOST)"),
            ]
        )
    table = ascii_table(
        ["Big-M regime", "M value", "solve (ms)", "B&B nodes", "outcome"],
        rows,
        title=(
            "A1: Big-M ablation (4-year cash budget, 3 errors, own B&B "
            "backend)\n"
            "tight M preserves the optimum; inflating M degenerates the link "
            "rows (the classical big-M pathology)"
        ),
    )
    report("a1_bigm", table)

    # The practical bound must be exact; results stay valid repairs at
    # every M (asserted above) even where optimality is lost.
    assert optimal_flags[1.0]

    benchmark(
        lambda: solve(
            translate(
                corrupted,
                workload.constraints,
                strategy=BigMStrategy.FIXED,
                big_m=base_m,
                grounds=grounds,
            ).model,
            backend="bnb",
        )
    )
