"""E2 -- the MILP instance S*(AC) (Figure 4, Examples 10-11).

Rebuilds the exact optimisation problem of Figure 4 from the Figure 3
database: N = 20 involved values, the eight ground equalities of
Example 10, the y/delta link rows, and the min-sum-of-deltas
objective.  Checks the paper's stated optimum: objective value 1,
y_4 = -30, every other y_i = 0; and the theoretical Big-M constant
M = 20 * (28 * 250)^57, which is also printed (its astronomical size
is exactly why the practical data-dependent bound is used for
solving).

The timed kernel is the translation step alone (grounding + MILP
construction, no solve).
"""

import pytest

from _common import report
from repro.datasets import cash_budget_constraints, paper_acquired_instance
from repro.milp import solve
from repro.repair import theoretical_big_m, translate


def build():
    return translate(paper_acquired_instance(), cash_budget_constraints())


def test_bench_e2_milp_instance(benchmark):
    translation = build()

    # --- Example 10/11 assertions ---------------------------------------
    assert translation.n == 20
    assert len(translation.grounds) == 8
    solution = solve(translation.model)
    assert solution.objective == pytest.approx(1.0)
    assert solution.values["y4"] == pytest.approx(-30.0)
    assert solution.values["d4"] == pytest.approx(1.0)
    for i in range(1, 21):
        if i != 4:
            assert solution.values[f"y{i}"] == pytest.approx(0.0)

    # --- the paper's theoretical M --------------------------------------
    # Example 11: "The value of the constant M is 20 * (28*250)^(2*28+1)".
    paper_m = theoretical_big_m(20, 28, 250)
    assert paper_m == 20 * (28 * 250) ** 57

    text = translation.format_like_figure4()
    text += (
        "\n\noptimum (Example 11): objective = "
        f"{solution.objective:.0f}, y4 = {solution.values['y4']:.0f}, "
        "all other y_i = 0"
    )
    text += (
        "\n\ntheoretical M of Example 11: 20 * (28 * 250)^57 = "
        f"{paper_m:.3e} ({paper_m.bit_length()} bits; unusable in floating "
        f"point -- the solving path uses the practical bound "
        f"M = {translation.big_m:g})"
    )
    report("e2_milp_instance", text)

    # --- timed kernel -----------------------------------------------------
    benchmark(build)
