"""Shared plumbing for the benchmark harness.

Every bench prints its paper-shaped table via :func:`report`, which
also persists the text under ``benchmarks/results/`` so the series
survive pytest's output capture.  Run with ``-s`` to see tables live::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print *text* and store it as ``benchmarks/results/<name>.txt``."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
