"""E4 -- human intervention saved (the paper's core motivation, Sec. 1).

The introduction argues that constraint-driven repairing reduces the
human effort of verifying acquired data.  This bench quantifies the
effort in values-inspected units for three workflows:

- **check everything**: the pre-constraint state of the art -- a human
  verifies every acquired value against the source document;
- **check violated**: constraints detect inconsistencies, a human
  inspects every value involved in a violated constraint (the
  "current approaches" of the introduction, without repairing);
- **DART**: the supervised repair loop -- the operator only reviews
  the suggested updates.

Reproduction target (shape): DART << check-violated << check-everything,
with the gap narrowing as the error count grows.

The timed kernel is one full DART session at k = 2.
"""

import pytest

from _common import report
from repro.acquisition.ocr import inject_value_errors
from repro.datasets import generate_cash_budget
from repro.evalkit import ascii_table, intervention_cost, sweep
from repro.repair import OracleOperator, RepairEngine, ValidationLoop

ERROR_COUNTS = [1, 2, 3, 4, 5]
SEEDS = range(30)


def run_once(n_errors: int, seed: int):
    workload = generate_cash_budget(n_years=2, seed=seed)
    corrupted, injected = inject_value_errors(
        workload.ground_truth, n_errors, seed=seed + 500
    )
    engine = RepairEngine(corrupted, workload.constraints)
    violations = engine.violations()
    if not violations:
        return {"skip": 1.0}
    operator = OracleOperator(workload.ground_truth, acquired=corrupted)
    session = ValidationLoop(engine, operator).run()
    cost = intervention_cost(session.values_inspected, corrupted, violations)
    return {
        "skip": 0.0,
        "dart": float(cost.dart_inspections),
        "violated": float(cost.check_violated),
        "everything": float(cost.check_everything),
        "saving_everything": cost.saving_vs_everything,
        "saving_violated": cost.saving_vs_violated,
    }


def test_bench_e4_intervention(benchmark):
    cells = sweep(ERROR_COUNTS, SEEDS, run_once)

    rows = []
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        mean = lambda key: sum(r[key] for r in active) / len(active)
        rows.append(
            [
                cell.parameter,
                f"{mean('dart'):.2f}",
                f"{mean('violated'):.1f}",
                f"{mean('everything'):.0f}",
                f"{mean('saving_everything'):.0%}",
                f"{mean('saving_violated'):.0%}",
            ]
        )
    table = ascii_table(
        [
            "errors",
            "DART inspections",
            "check-violated",
            "check-everything",
            "saved vs everything",
            "saved vs violated",
        ],
        rows,
        title=(
            "E4: operator effort (values inspected per document, 2-year cash "
            f"budgets, {len(list(SEEDS))} seeds)\n"
            "paper motivation: repairing reduces human intervention vs manual "
            "verification"
        ),
    )
    report("e4_intervention", table)

    # Shape: DART strictly cheaper than both baselines at every k.
    for cell in cells:
        active = [r for r in cell.runs if not r.get("skip")]
        mean_dart = sum(r["dart"] for r in active) / len(active)
        mean_violated = sum(r["violated"] for r in active) / len(active)
        assert mean_dart < mean_violated < 20.0 + 1e-9

    benchmark(lambda: run_once(2, 3))
